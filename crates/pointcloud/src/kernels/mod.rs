//! Runtime-dispatched kernel backends for the point-operation hot paths.
//!
//! # Why this module exists
//!
//! The paper's thesis is that point operations (FPS, KNN, ball query,
//! aggregation) are *memory-bound* and benefit from streaming one axis at a
//! time over blocked data. The scalar reference operations in
//! [`ops::reference`](crate::ops::reference) negate that on real CPUs: they
//! materialize a [`Point3`](crate::Point3) per candidate and bump
//! [`OpCounters`](crate::ops::OpCounters) fields inside every inner loop,
//! which defeats auto-vectorization and triples the instruction count of
//! the hot path. The kernels here restore the intended dataflow in
//! software: they operate directly on the structure-of-arrays `xs`/`ys`/`zs`
//! slices of a [`PointCloud`](crate::PointCloud), and leave *all* counter
//! accounting to the caller (accumulated per scan, analytically — the
//! counters model hardware work and are a pure function of the scan sizes).
//!
//! # Backends
//!
//! Every kernel exists in three interchangeable implementations, selected
//! once per process (and overridable per call via the `*_with` variants):
//!
//! * [`Backend::Scalar`] — straight per-point loops ([`scalar`]); the
//!   portable floor and the `FRACTALCLOUD_KERNEL=scalar` debugging target.
//! * [`Backend::Soa`] — chunked, auto-vectorizable loops ([`soa`]) built
//!   from select idioms the compiler lowers to vector min/max; the portable
//!   fast path and the fallback on non-x86 hosts.
//! * [`Backend::Avx2`] — explicit 8-lane `core::arch::x86_64` intrinsics
//!   ([`avx2`]), used when `is_x86_feature_detected!("avx2")` holds. All
//!   `unsafe` is confined to that one module behind safe wrappers.
//!
//! The active backend is chosen on first use: the `FRACTALCLOUD_KERNEL`
//! environment variable (`scalar` | `soa` | `avx2`) wins when it names an
//! available backend, otherwise the best available backend is used (AVX2 on
//! capable x86-64 hosts, SoA elsewhere). [`with_backend`] installs a
//! thread-local override for tests and benchmarks.
//!
//! # Exact equivalence
//!
//! All backends are bit-for-bit equivalent: the same `f32` operations in the
//! same order per candidate (no FMA contraction), ties resolve identically
//! (first extremum wins, insertion order preserved), and NaN coordinates
//! degrade the same way (vector `min`/`max` operand order matches the
//! reference's `if d < dist` select idiom). Property tests in
//! `tests/backend_equivalence.rs` assert equality of indices, distances,
//! *and* counters across all three backends and against the retained scalar
//! reference implementations.
//!
//! # The SoA chunking contract
//!
//! Every kernel follows the same structure:
//!
//! 1. the candidate set is presented as three equal-length coordinate
//!    slices (`xs`, `ys`, `zs`) — never as an array of structs;
//! 2. work proceeds in chunks of [`CHUNK`] lanes; within a chunk, distance
//!    evaluation is a straight-line loop over the slices with **no
//!    branches, no counter updates, and no per-point struct construction**;
//! 3. branchy selection logic (argmax, top-k insertion, radius tests)
//!    consumes the chunk's distance buffer *after* it is computed, keeping
//!    the rare-path branches out of the arithmetic loop.
//!
//! # Batched-query selection
//!
//! The KNN/ball-query selection scans are dominated by re-streaming the
//! candidate coordinates once per query. [`knn_select_batch`] and
//! [`ball_select_batch`] instead process a tile of [`QUERY_TILE`] queries
//! per pass: each [`CHUNK`]-sized candidate chunk is loaded once and scored
//! against every query of the tile while it is hot in L1 (the software
//! analogue of the RSPU's intra-block candidate reuse, §V-C). Selection per
//! query still consumes chunks in ascending scan order, so results are
//! identical to the one-query-at-a-time formulation.
//!
//! Callers that operate on an indexed subset (block-local operations) first
//! gather the subset into local SoA buffers with [`gather_coords`] — the
//! software analogue of loading a block into SRAM once and reusing it for
//! every query (§V-C intra-block reuse).
//!
//! # Caller-provided scratch (`*_into` variants)
//!
//! Every kernel that needs intermediate buffers has a form that writes into
//! caller-provided storage instead of allocating: [`distances_sq`] has
//! always taken its output slice, [`gather_coords`] reuses the caller's SoA
//! vectors, and the batched selection drivers come as
//! [`knn_select_batch_into`] / [`ball_select_batch_into`], which keep their
//! top-k heaps, distance tiles and hit lists inside a caller-owned
//! [`SelectScratch`]. A warmed scratch makes the drivers allocation-free;
//! the no-scratch entry points are thin wrappers that allocate a transient
//! [`SelectScratch`], so both paths run the same code and return bit-equal
//! results.

#[cfg(target_arch = "x86_64")]
mod avx2;
mod scalar;
mod soa;

use std::cell::Cell;
use std::sync::OnceLock;

/// Number of lanes processed per chunk.
///
/// 64 `f32` lanes = 256 bytes per coordinate stream — a full cache line per
/// axis on common 64-byte-line machines, and wide enough for 4–16-lane SIMD
/// units to unroll cleanly. Also the width of the fused ball-scan hit mask
/// (`u64`).
pub const CHUNK: usize = 64;

/// Queries scored per candidate pass by the batched selection kernels.
///
/// Eight queries share every [`CHUNK`]-sized coordinate load; the per-tile
/// distance scratch (8 × 64 lanes) stays within a few KiB of L1.
pub const QUERY_TILE: usize = 8;

/// A kernel implementation, selectable at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Straight per-point scalar loops (portable floor).
    Scalar,
    /// Chunked auto-vectorizable SoA loops (portable fast path).
    Soa,
    /// Explicit AVX2 intrinsics (x86-64 with runtime feature detection).
    Avx2,
}

impl Backend {
    /// All backends, in increasing order of specialization.
    pub const ALL: [Backend; 3] = [Backend::Scalar, Backend::Soa, Backend::Avx2];

    /// The backend's `FRACTALCLOUD_KERNEL` name.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Soa => "soa",
            Backend::Avx2 => "avx2",
        }
    }

    /// Parses a `FRACTALCLOUD_KERNEL` value (case-insensitive).
    pub fn from_name(name: &str) -> Option<Backend> {
        match name.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(Backend::Scalar),
            "soa" => Some(Backend::Soa),
            "avx2" => Some(Backend::Avx2),
            _ => None,
        }
    }

    /// Whether this backend can run on the current host.
    ///
    /// `Scalar` and `Soa` are always available; `Avx2` requires an x86-64
    /// host whose CPU reports AVX2 support at runtime.
    pub fn is_available(self) -> bool {
        match self {
            Backend::Scalar | Backend::Soa => true,
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => is_x86_feature_detected!("avx2"),
            #[cfg(not(target_arch = "x86_64"))]
            Backend::Avx2 => false,
        }
    }
}

/// Replaces an unavailable backend with the portable SoA path.
fn resolve(backend: Backend) -> Backend {
    if backend.is_available() {
        backend
    } else {
        Backend::Soa
    }
}

/// The fastest backend available on this host.
fn best_available() -> Backend {
    if Backend::Avx2.is_available() {
        Backend::Avx2
    } else {
        Backend::Soa
    }
}

/// One-time startup selection: `FRACTALCLOUD_KERNEL` when it names an
/// available backend, otherwise the best available backend.
fn detect() -> Backend {
    if let Ok(v) = std::env::var("FRACTALCLOUD_KERNEL") {
        if let Some(b) = Backend::from_name(&v) {
            return resolve(b);
        }
    }
    best_available()
}

thread_local! {
    static OVERRIDE: Cell<Option<Backend>> = const { Cell::new(None) };
}

/// The backend all dispatched kernels run on.
///
/// Selected once per process (see [module docs](self)); a thread-local
/// [`with_backend`] override takes precedence. The returned backend is
/// always available on this host.
pub fn active_backend() -> Backend {
    if let Some(b) = OVERRIDE.with(|o| o.get()) {
        return resolve(b);
    }
    static ACTIVE: OnceLock<Backend> = OnceLock::new();
    *ACTIVE.get_or_init(detect)
}

/// Runs `f` with `backend` as the active backend on this thread.
///
/// The override is thread-local: work dispatched to other threads (e.g.
/// parallel block scheduling) keeps the process-wide selection. Unavailable
/// backends fall back to [`Backend::Soa`], so equivalence tests stay
/// portable. The previous override is restored even if `f` panics.
pub fn with_backend<T>(backend: Backend, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<Backend>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _restore = Restore(OVERRIDE.with(|o| o.replace(Some(backend))));
    f()
}

/// Dispatches `$name(args…)` to the resolved backend module.
macro_rules! dispatch {
    ($backend:expr, $name:ident($($arg:expr),* $(,)?)) => {
        match resolve($backend) {
            Backend::Scalar => scalar::$name($($arg),*),
            Backend::Soa => soa::$name($($arg),*),
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => avx2::$name($($arg),*),
            #[cfg(not(target_arch = "x86_64"))]
            Backend::Avx2 => unreachable!("AVX2 backend never resolves on non-x86-64 hosts"),
        }
    };
}

fn assert_soa(xs: &[f32], ys: &[f32], zs: &[f32]) {
    assert_eq!(ys.len(), xs.len(), "ys length mismatch");
    assert_eq!(zs.len(), xs.len(), "zs length mismatch");
}

/// Writes the squared Euclidean distance from `q` to every point of the SoA
/// slices into `out`, on the active backend.
///
/// This is the core shared by KNN, ball query and interpolation: one pass,
/// no branches, no struct materialization.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn distances_sq(xs: &[f32], ys: &[f32], zs: &[f32], q: [f32; 3], out: &mut [f32]) {
    distances_sq_with(active_backend(), xs, ys, zs, q, out);
}

/// [`distances_sq`] on an explicit backend (unavailable backends fall back
/// to [`Backend::Soa`]).
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn distances_sq_with(
    backend: Backend,
    xs: &[f32],
    ys: &[f32],
    zs: &[f32],
    q: [f32; 3],
    out: &mut [f32],
) {
    assert_soa(xs, ys, zs);
    assert_eq!(out.len(), xs.len(), "out length mismatch");
    dispatch!(backend, distances_sq(xs, ys, zs, q, out));
}

/// One FPS iteration, fused: relaxes the running nearest-sample distances
/// `dist` against the newest sample `q` and returns the index of the new
/// farthest point (first maximum wins on ties), on the active backend.
///
/// Per candidate this computes the squared distance branch-free, lowers
/// `dist` with the `min` select idiom (equivalent to the reference's
/// `if d < dist[i]` update, including for NaN distances, which leave `dist`
/// unchanged), then reduces to the running argmax. Entries already selected
/// can be pinned to `f32::NEG_INFINITY` by the caller; the strict `>`
/// comparison then keeps them from ever winning again.
///
/// # Panics
///
/// Panics if the slice lengths differ, `dist.len() != xs.len()`, or the
/// candidate set is empty (an empty set has no argmax).
pub fn fps_relax_argmax(
    xs: &[f32],
    ys: &[f32],
    zs: &[f32],
    q: [f32; 3],
    dist: &mut [f32],
) -> usize {
    fps_relax_argmax_with(active_backend(), xs, ys, zs, q, dist)
}

/// [`fps_relax_argmax`] on an explicit backend (unavailable backends fall
/// back to [`Backend::Soa`]).
///
/// # Panics
///
/// Panics if the slice lengths differ, `dist.len() != xs.len()`, or the
/// candidate set is empty (an empty set has no argmax).
pub fn fps_relax_argmax_with(
    backend: Backend,
    xs: &[f32],
    ys: &[f32],
    zs: &[f32],
    q: [f32; 3],
    dist: &mut [f32],
) -> usize {
    assert_soa(xs, ys, zs);
    assert_eq!(dist.len(), xs.len(), "dist length mismatch");
    // Checked here so every backend fails identically instead of the
    // scalar path returning 0 while the chunked paths index out of bounds.
    assert!(!xs.is_empty(), "fps_relax_argmax needs at least one candidate");
    dispatch!(backend, fps_relax_argmax(xs, ys, zs, q, dist))
}

/// One *ball-pinned* FPS iteration, fused: like [`fps_relax_argmax`], but
/// every candidate whose distance to the newest sample `q` is `<= r_sq` is
/// *pinned* — its running distance is set to `f32::NEG_INFINITY` in the
/// same pass, so it can never be selected again. One fused scan replaces
/// the distance-then-mask two-pass formulation, on the active backend.
///
/// Pinning is monotone: an already-pinned entry stays pinned (`min` against
/// `-∞` keeps `-∞`, and a fresh in-radius hit re-pins it). NaN distances
/// neither relax nor pin, exactly as in [`fps_relax_argmax`]. The returned
/// index is the first maximum of the post-pin distances; when *every*
/// candidate is pinned the maximum is `-∞` and index 0 is returned — the
/// caller detects exhaustion by checking `dist[best].is_finite()` (or
/// `== f32::NEG_INFINITY`), which all backends report identically.
///
/// # Panics
///
/// Panics if the slice lengths differ, `dist.len() != xs.len()`, or the
/// candidate set is empty.
pub fn fps_relax_argmax_pin(
    xs: &[f32],
    ys: &[f32],
    zs: &[f32],
    q: [f32; 3],
    r_sq: f32,
    dist: &mut [f32],
) -> usize {
    fps_relax_argmax_pin_with(active_backend(), xs, ys, zs, q, r_sq, dist)
}

/// [`fps_relax_argmax_pin`] on an explicit backend (unavailable backends
/// fall back to [`Backend::Soa`]).
///
/// # Panics
///
/// Panics if the slice lengths differ, `dist.len() != xs.len()`, or the
/// candidate set is empty.
pub fn fps_relax_argmax_pin_with(
    backend: Backend,
    xs: &[f32],
    ys: &[f32],
    zs: &[f32],
    q: [f32; 3],
    r_sq: f32,
    dist: &mut [f32],
) -> usize {
    assert_soa(xs, ys, zs);
    assert_eq!(dist.len(), xs.len(), "dist length mismatch");
    assert!(!xs.is_empty(), "fps_relax_argmax_pin needs at least one candidate");
    dispatch!(backend, fps_relax_argmax_pin(xs, ys, zs, q, r_sq, dist))
}

/// Fused distance + radius-compare + acceptance-prefilter pass over one
/// chunk (`len ≤ 64`): distances are written to `out`, the returned `u64`
/// has bit `j` set when `out[j] <= r_sq` **and** `out[j] < thr` (NaN
/// distances never hit), and the returned pair is the chunk minimum over
/// *all* lanes with the lane of its first occurrence (`(f32::INFINITY,
/// u32::MAX)` when no distance is strictly below `+∞`, matching the
/// reference's strict `d < nearest` update — the nearest tracking ignores
/// the threshold so the empty-ball fallback is unchanged).
///
/// `thr` is the selection buffer's acceptance threshold at chunk start:
/// NaN while the buffer is filling (`!(d >= NaN)` keeps every in-radius
/// lane, `+∞` distances included), the current worst kept distance once it
/// is full. The threshold only
/// tightens as survivors insert, so lanes it drops could never be
/// accepted — the surviving set reaching the branchy insertion is exactly
/// the set the unfiltered scan would have accepted, one fused vector
/// compare earlier.
#[cfg_attr(not(test), allow(dead_code))] // the driver runs the tiled form; tests pin this one
#[allow(clippy::too_many_arguments)]
fn ball_chunk_with(
    backend: Backend,
    xs: &[f32],
    ys: &[f32],
    zs: &[f32],
    q: [f32; 3],
    r_sq: f32,
    thr: f32,
    out: &mut [f32],
) -> (u64, f32, u32) {
    debug_assert!(xs.len() <= 64, "ball_chunk mask is 64 lanes wide");
    dispatch!(backend, ball_chunk(xs, ys, zs, q, r_sq, thr, out))
}

/// Segmented max-aggregation over neighbor index lists, on the active
/// backend — the delayed-aggregation (Mesorasi) primitive: instead of
/// materializing a duplicated `segments × num × channels` grouped feature
/// matrix and pooling it, each output row is the channel-wise maximum of
/// the *unique* feature rows its index list names.
///
/// `features` holds `n` unique rows of `channels` values (row-major);
/// `indices` holds one `num`-slot row per segment (row `c` spans
/// `c * num .. c * num + num`), of which the first `counts[c]` entries are
/// aggregated; `out` receives `counts.len()` rows of `channels` values. A
/// segment with `counts[c] == 0` yields a row of `f32::NEG_INFINITY` — the
/// pooling identity, matching an eager max-pool over zero rows.
///
/// All backends use the same strict-`>` select idiom, so results are
/// bit-identical: NaN feature values never overwrite the accumulator, and
/// `±0.0` ties keep the accumulator. Aggregation is a pure reduction —
/// duplicate indices (ball-query padding, `k ≥ n` repeats) cannot change
/// the maximum, so the result equals an eager max-pool over the padded
/// grouped matrix whenever every padded slot repeats a listed neighbor.
///
/// Counter accounting is the caller's job, like every kernel here:
/// `counts[c]` feature-row reads and one row write per segment.
///
/// # Panics
///
/// Panics if `features.len()` is not a multiple of `channels` (when
/// `channels > 0`), some `counts[c] > num`, `indices` is shorter than
/// `counts.len() * num`, `out.len() != counts.len() * channels`, or an
/// index names a row outside `features`.
pub fn segmented_max_into(
    features: &[f32],
    channels: usize,
    indices: &[usize],
    counts: &[usize],
    num: usize,
    out: &mut [f32],
) {
    segmented_max_into_with(active_backend(), features, channels, indices, counts, num, out);
}

/// [`segmented_max_into`] on an explicit backend (unavailable backends fall
/// back to [`Backend::Soa`]).
///
/// # Panics
///
/// As [`segmented_max_into`].
pub fn segmented_max_into_with(
    backend: Backend,
    features: &[f32],
    channels: usize,
    indices: &[usize],
    counts: &[usize],
    num: usize,
    out: &mut [f32],
) {
    if channels > 0 {
        assert_eq!(features.len() % channels, 0, "features is not whole rows");
    }
    assert!(counts.iter().all(|&c| c <= num), "a segment count exceeds the row stride");
    assert!(indices.len() >= counts.len() * num, "indices shorter than counts.len() * num");
    assert_eq!(out.len(), counts.len() * channels, "out length mismatch");
    dispatch!(backend, segmented_max(features, channels, indices, counts, num, out));
}

/// Allocating convenience form of [`segmented_max_into`].
///
/// # Panics
///
/// As [`segmented_max_into`].
pub fn segmented_max(
    features: &[f32],
    channels: usize,
    indices: &[usize],
    counts: &[usize],
    num: usize,
) -> Vec<f32> {
    let mut out = vec![0.0; counts.len() * channels];
    segmented_max_into(features, channels, indices, counts, num, &mut out);
    out
}

/// Gathers the coordinates at `indices` into local SoA buffers (cleared
/// first) — loading a block into on-chip memory, in software.
///
/// # Panics
///
/// Panics if any index is out of bounds.
pub fn gather_coords(
    xs: &[f32],
    ys: &[f32],
    zs: &[f32],
    indices: &[usize],
    out_xs: &mut Vec<f32>,
    out_ys: &mut Vec<f32>,
    out_zs: &mut Vec<f32>,
) {
    out_xs.clear();
    out_ys.clear();
    out_zs.clear();
    out_xs.reserve(indices.len());
    out_ys.reserve(indices.len());
    out_zs.reserve(indices.len());
    for &i in indices {
        out_xs.push(xs[i]);
        out_ys.push(ys[i]);
        out_zs.push(zs[i]);
    }
}

/// Ascending top-`k` insertion buffer over a precomputed distance stream —
/// the software form of the RSPU's merge-sort top-k unit.
///
/// `select` scans `(distance, payload)` pairs in order, maintaining the `k`
/// smallest in ascending order with the reference's exact semantics:
/// candidates tying the current worst are rejected (`>=`), equal distances
/// keep scan order, and `on_insert(len_before)` is invoked for every
/// accepted candidate so callers can replicate the reference's
/// insertion-cost accounting.
///
/// Internally the scan is two-phase: once the buffer holds `k` entries, a
/// branch-reduced prefilter compacts the lanes that can still be accepted
/// (`!(d >= worst)`, a single vectorizable compare per lane) and only the
/// survivors reach the branchy sorted insertion. The threshold only
/// tightens as survivors insert, and every survivor is re-checked against
/// the current worst, so the accepted set — and therefore the `on_insert`
/// sequence — is identical to the one-candidate-at-a-time formulation.
#[derive(Debug, Clone)]
pub struct TopK {
    buf: Vec<(f32, usize)>,
    k: usize,
}

/// Prefilter sub-chunk width of [`TopK::select_offset`]'s second phase.
const PREFILTER: usize = 64;

/// Sorted-insertion position for `d` in an ascending buffer: the first
/// index after every entry `<= d`. A backward linear scan, used by the
/// ball driver's hit insertion where it measures faster than
/// `partition_point`'s mispredicting halving (small buffers, dense
/// accepted-hit streams); `TopK` keeps the binary search, which measures
/// better on its sparser insert pattern. The `!(bd <= d)` form (not
/// `bd > d`) makes a NaN `d` walk to position 0, exactly where
/// `partition_point(bd <= d)` puts it.
#[inline]
fn sorted_insert_pos(buf: &[(f32, usize)], d: f32) -> usize {
    let mut pos = buf.len();
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    while pos > 0 && !(buf[pos - 1].0 <= d) {
        pos -= 1;
    }
    pos
}

impl TopK {
    /// A buffer selecting the `k` smallest distances.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn new(k: usize) -> TopK {
        assert!(k > 0, "k must be at least 1");
        TopK { buf: Vec::with_capacity(k + 1), k }
    }

    /// Clears the buffer for reuse with the next query.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Clears the buffer *and* retargets it to select `k` smallest — the
    /// reuse form of [`TopK::new`] for pooled scratch, reallocating only
    /// when `k` grows past the retained capacity.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn reset(&mut self, k: usize) {
        assert!(k > 0, "k must be at least 1");
        self.buf.clear();
        // `reserve` is relative to the (now zero) length, so this asks for
        // the full k + 1 slots, not the shortfall past the old capacity.
        self.buf.reserve(k + 1);
        self.k = k;
    }

    /// Scans `distances`, keeping the `k` nearest `(distance, index)` pairs;
    /// indices are the scan positions. Calls `on_insert(len_before)` per
    /// accepted candidate.
    pub fn select(&mut self, distances: &[f32], on_insert: impl FnMut(usize)) {
        self.select_offset(distances, 0, on_insert);
    }

    /// [`select`](TopK::select) over one chunk of a larger scan: stored
    /// payload indices are offset by `base`, and repeated calls with
    /// ascending `base` are equivalent to one `select` over the
    /// concatenated stream. This is the portable incremental form; the
    /// batched drivers instead prefilter each chunk with the fused
    /// distance + compare kernels and feed the surviving mask lanes to the
    /// buffer directly.
    pub fn select_offset(
        &mut self,
        distances: &[f32],
        base: usize,
        mut on_insert: impl FnMut(usize),
    ) {
        // Phase 1: unconditional sorted insertion until the buffer holds k.
        let mut i = 0;
        while self.buf.len() < self.k && i < distances.len() {
            let d = distances[i];
            let pos = self.buf.partition_point(|&(bd, _)| bd <= d);
            on_insert(self.buf.len());
            self.buf.insert(pos, (d, base + i));
            i += 1;
        }
        // Phase 2: branch-reduced threshold prefilter, then insert only the
        // survivors. `!(d >= worst)` (not `d < worst`) keeps NaN candidates
        // on the insert path exactly like the reference's `>=`-skip.
        let mut lanes = [0u8; PREFILTER];
        while i < distances.len() {
            let len = PREFILTER.min(distances.len() - i);
            let sub = &distances[i..i + len];
            let worst = self.buf[self.k - 1].0;
            // Whole-chunk reject test first: a branch-free 0/1 sum the
            // compiler vectorizes. Once the buffer has converged, almost
            // every chunk is fully rejected here and never reaches the
            // serial compaction. `d >= worst` is false for NaN, so a NaN
            // lane keeps the chunk alive exactly like the reference's
            // `>=`-skip.
            let mut rejects = 0usize;
            for &d in sub {
                rejects += usize::from(d >= worst);
            }
            if rejects == len {
                i += len;
                continue;
            }
            let mut m = 0usize;
            for (j, &d) in sub.iter().enumerate() {
                lanes[m] = j as u8;
                // `!(d >= worst)` deliberately differs from `d < worst`:
                // NaN must survive the prefilter to reach the insert path.
                #[allow(clippy::neg_cmp_op_on_partial_ord)]
                {
                    m += usize::from(!(d >= worst));
                }
            }
            for &l in &lanes[..m] {
                let d = sub[l as usize];
                // Re-check against the *current* worst: it only tightens, so
                // lanes dropped by the prefilter could never be accepted.
                if d >= self.buf[self.k - 1].0 {
                    continue;
                }
                let pos = self.buf.partition_point(|&(bd, _)| bd <= d);
                on_insert(self.buf.len());
                self.buf.insert(pos, (d, base + i + l as usize));
                if self.buf.len() > self.k {
                    self.buf.pop();
                }
            }
            i += len;
        }
    }

    /// The selected `(distance, index)` pairs, ascending.
    pub fn as_slice(&self) -> &[(f32, usize)] {
        &self.buf
    }

    /// The fused-prefilter threshold: the current worst distance when the
    /// buffer is full, else NaN. `!(d >= NaN)` is true for every `d`, so a
    /// NaN threshold makes the prefilter keep all lanes — exactly the
    /// reference's behavior while the buffer is still filling.
    fn prefilter_threshold(&self) -> f32 {
        if self.buf.len() == self.k {
            self.buf[self.k - 1].0
        } else {
            f32::NAN
        }
    }

    /// Inserts the lanes of `mask` (ascending scan order) from a distance
    /// row whose prefilter used [`prefilter_threshold`](Self::prefilter_threshold):
    /// every masked lane runs the full reference acceptance check, so the
    /// result is identical to scanning the whole row — lanes the prefilter
    /// dropped had `d >= worst` at chunk start, and the worst only tightens.
    fn insert_masked(
        &mut self,
        distances: &[f32],
        mask: u64,
        base: usize,
        mut on_insert: impl FnMut(usize),
    ) {
        let mut m = mask;
        while m != 0 {
            let l = m.trailing_zeros() as usize;
            m &= m - 1;
            let d = distances[l];
            if self.buf.len() == self.k && d >= self.buf[self.k - 1].0 {
                continue;
            }
            let pos = self.buf.partition_point(|&(bd, _)| bd <= d);
            on_insert(self.buf.len());
            self.buf.insert(pos, (d, base + l));
            if self.buf.len() > self.k {
                self.buf.pop();
            }
        }
    }
}

/// Reusable scratch for the batched selection drivers: per-tile top-k
/// heaps, the tile's distance rows, and the ball drivers' hit lists.
///
/// One warmed `SelectScratch` makes [`knn_select_batch_into`] and
/// [`ball_select_batch_into`] allocation-free in steady state (buffers only
/// grow when `k`/`num`/the tile width grow past anything seen before). A
/// scratch carries no results between calls — every driver fully resets the
/// portions it uses — so reusing a "dirty" scratch is bit-identical to a
/// fresh one, and the same scratch can serve KNN and ball queries
/// interchangeably.
#[derive(Debug, Default)]
pub struct SelectScratch {
    topks: Vec<TopK>,
    dbuf: Vec<f32>,
    bests: Vec<Vec<(f32, usize)>>,
    nearests: Vec<(f32, usize)>,
}

impl SelectScratch {
    /// An empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> SelectScratch {
        SelectScratch::default()
    }
}

/// Batched KNN selection on the active backend; see
/// [`knn_select_batch_with`].
pub fn knn_select_batch(
    xs: &[f32],
    ys: &[f32],
    zs: &[f32],
    queries: &[[f32; 3]],
    k: usize,
    emit: impl FnMut(usize, &[(f32, usize)]),
    on_insert: impl FnMut(usize),
) {
    knn_select_batch_with(active_backend(), xs, ys, zs, queries, k, emit, on_insert);
}

/// Batched KNN selection: the `k` nearest candidates for every query, with
/// tiles of [`QUERY_TILE`] queries sharing each pass over the candidate
/// chunks.
///
/// `emit(query, pairs)` is called once per query, in query order, with the
/// ascending `(distance_sq, candidate_index)` pairs (fewer than `k` when
/// `k` exceeds the candidate count). `on_insert(len_before)` is forwarded
/// from the per-query [`TopK`] buffers for insertion-cost accounting; the
/// per-query call sequences are identical to unbatched scans (tiling only
/// interleaves them between queries).
///
/// # Panics
///
/// Panics if the slice lengths differ or `k` is zero.
#[allow(clippy::too_many_arguments)]
pub fn knn_select_batch_with(
    backend: Backend,
    xs: &[f32],
    ys: &[f32],
    zs: &[f32],
    queries: &[[f32; 3]],
    k: usize,
    emit: impl FnMut(usize, &[(f32, usize)]),
    on_insert: impl FnMut(usize),
) {
    let mut scratch = SelectScratch::new();
    knn_select_batch_into(backend, xs, ys, zs, queries, k, &mut scratch, emit, on_insert);
}

/// [`knn_select_batch_with`] running entirely inside a caller-owned
/// [`SelectScratch`]: the per-tile [`TopK`] heaps and the tile distance
/// rows live in `scratch` and are reused across calls (and across queries
/// of any batch size), so a warmed scratch performs no heap allocation.
/// Results are bit-identical to the allocating wrappers — they call this
/// function with a transient scratch.
///
/// # Panics
///
/// Panics if the slice lengths differ or `k` is zero.
#[allow(clippy::too_many_arguments)]
pub fn knn_select_batch_into(
    backend: Backend,
    xs: &[f32],
    ys: &[f32],
    zs: &[f32],
    queries: &[[f32; 3]],
    k: usize,
    scratch: &mut SelectScratch,
    mut emit: impl FnMut(usize, &[(f32, usize)]),
    mut on_insert: impl FnMut(usize),
) {
    assert_soa(xs, ys, zs);
    let n = xs.len();
    let tile_cap = QUERY_TILE.min(queries.len().max(1));
    while scratch.topks.len() < tile_cap {
        scratch.topks.push(TopK::new(k));
    }
    let topks = &mut scratch.topks[..tile_cap];
    for t in topks.iter_mut() {
        t.reset(k);
    }
    if scratch.dbuf.len() < tile_cap * CHUNK {
        scratch.dbuf.resize(tile_cap * CHUNK, 0.0);
    }
    let dbuf = &mut scratch.dbuf[..];
    for (tile_idx, tile) in queries.chunks(QUERY_TILE).enumerate() {
        for t in topks[..tile.len()].iter_mut() {
            t.clear();
        }
        let mut thresholds = [0.0f32; QUERY_TILE];
        let mut masks = [0u64; QUERY_TILE];
        let mut base = 0;
        while base < n {
            let len = CHUNK.min(n - base);
            let (xc, yc, zc) =
                (&xs[base..base + len], &ys[base..base + len], &zs[base..base + len]);
            for (qi, topk) in topks[..tile.len()].iter().enumerate() {
                thresholds[qi] = topk.prefilter_threshold();
            }
            // One fused dispatched call scores the whole tile against this
            // chunk and prefilters each row against its query's threshold
            // (the AVX2 path keeps the coordinate vectors in registers
            // across all tile queries); selection then touches only the
            // surviving mask lanes.
            dispatch!(
                backend,
                knn_prefilter_tile(
                    xc,
                    yc,
                    zc,
                    tile,
                    &thresholds[..tile.len()],
                    &mut *dbuf,
                    &mut masks,
                )
            );
            for (qi, topk) in topks[..tile.len()].iter_mut().enumerate() {
                topk.insert_masked(
                    &dbuf[qi * CHUNK..qi * CHUNK + len],
                    masks[qi],
                    base,
                    &mut on_insert,
                );
            }
            base += len;
        }
        for (qi, topk) in topks[..tile.len()].iter().enumerate() {
            emit(tile_idx * QUERY_TILE + qi, topk.as_slice());
        }
    }
}

/// Batched ball-query selection on the active backend; see
/// [`ball_select_batch_with`].
pub fn ball_select_batch(
    xs: &[f32],
    ys: &[f32],
    zs: &[f32],
    queries: &[[f32; 3]],
    r_sq: f32,
    num: usize,
    emit: impl FnMut(usize, &[(f32, usize)], (f32, usize)),
) {
    ball_select_batch_with(active_backend(), xs, ys, zs, queries, r_sq, num, emit);
}

/// Batched ball-query selection: the `num` nearest candidates within
/// `sqrt(r_sq)` for every query, with tiles of [`QUERY_TILE`] queries
/// sharing each pass over the candidate chunks.
///
/// Per chunk the fused distance + compare kernel produces a hit bitmask
/// (`d <= r_sq`) and the chunk's first minimum; only hit lanes reach the
/// branchy sorted insertion (`best.len() < num || d < worst`, the canonical
/// nearest-`num`-within-radius semantics). `emit(query, pairs, nearest)` is
/// called once per query, in query order, with the ascending
/// `(distance_sq, candidate_index)` hits and the overall-nearest candidate
/// (`(f32::INFINITY, usize::MAX)` when no distance was strictly below `+∞`,
/// e.g. for an empty candidate set) for the empty-ball fallback.
///
/// # Panics
///
/// Panics if the slice lengths differ.
#[allow(clippy::too_many_arguments)]
pub fn ball_select_batch_with(
    backend: Backend,
    xs: &[f32],
    ys: &[f32],
    zs: &[f32],
    queries: &[[f32; 3]],
    r_sq: f32,
    num: usize,
    emit: impl FnMut(usize, &[(f32, usize)], (f32, usize)),
) {
    let mut scratch = SelectScratch::new();
    ball_select_batch_into(backend, xs, ys, zs, queries, r_sq, num, &mut scratch, emit);
}

/// [`ball_select_batch_with`] running entirely inside a caller-owned
/// [`SelectScratch`]: the per-tile hit lists and nearest-candidate trackers
/// live in `scratch` and are reused across calls, so a warmed scratch
/// performs no heap allocation. Results are bit-identical to the
/// allocating wrappers — they call this function with a transient scratch.
///
/// # Panics
///
/// Panics if the slice lengths differ.
#[allow(clippy::too_many_arguments)]
pub fn ball_select_batch_into(
    backend: Backend,
    xs: &[f32],
    ys: &[f32],
    zs: &[f32],
    queries: &[[f32; 3]],
    r_sq: f32,
    num: usize,
    scratch: &mut SelectScratch,
    mut emit: impl FnMut(usize, &[(f32, usize)], (f32, usize)),
) {
    assert_soa(xs, ys, zs);
    let n = xs.len();
    let tile_cap = QUERY_TILE.min(queries.len().max(1));
    while scratch.bests.len() < tile_cap {
        scratch.bests.push(Vec::new());
    }
    if scratch.nearests.len() < tile_cap {
        scratch.nearests.resize(tile_cap, (f32::INFINITY, usize::MAX));
    }
    let bests = &mut scratch.bests[..tile_cap];
    let nearests = &mut scratch.nearests[..tile_cap];
    for b in bests.iter_mut() {
        b.clear();
        b.reserve(num + 1);
    }
    if scratch.dbuf.len() < tile_cap * CHUNK {
        scratch.dbuf.resize(tile_cap * CHUNK, 0.0);
    }
    let dbuf = &mut scratch.dbuf[..];
    for (tile_idx, tile) in queries.chunks(QUERY_TILE).enumerate() {
        for b in &mut bests[..tile.len()] {
            b.clear();
        }
        for nearest in &mut nearests[..tile.len()] {
            *nearest = (f32::INFINITY, usize::MAX);
        }
        let mut thresholds = [0.0f32; QUERY_TILE];
        let mut masks = [0u64; QUERY_TILE];
        let mut mins = [f32::INFINITY; QUERY_TILE];
        let mut base = 0;
        while base < n {
            let len = CHUNK.min(n - base);
            let (xc, yc, zc) =
                (&xs[base..base + len], &ys[base..base + len], &zs[base..base + len]);
            // Acceptance prefilter thresholds: once a query's buffer is
            // full, only hits strictly below its current worst can be
            // accepted — the fused tile kernel drops the rest before the
            // branchy insertion ever sees them (bit-identical results; the
            // threshold only tightens within the chunk).
            for (qi, best) in bests[..tile.len()].iter().enumerate() {
                // NaN while the buffer fills: `!(d >= NaN)` keeps every
                // in-radius lane (+inf distances included), exactly like
                // the knn prefilter's filling sentinel.
                thresholds[qi] = if best.len() == num { best[best.len() - 1].0 } else { f32::NAN };
            }
            // One fused dispatched call scores the whole tile against this
            // chunk (the AVX2 path keeps the coordinate vectors in
            // registers across all tile queries), producing per-query hit
            // masks and chunk minima.
            dispatch!(
                backend,
                ball_prefilter_tile(
                    xc,
                    yc,
                    zc,
                    tile,
                    r_sq,
                    &thresholds[..tile.len()],
                    &mut *dbuf,
                    &mut masks,
                    &mut mins,
                )
            );
            for (qi, best) in bests[..tile.len()].iter_mut().enumerate() {
                let row = &dbuf[qi * CHUNK..qi * CHUNK + len];
                let cmin = mins[qi];
                if cmin < nearests[qi].0 {
                    // Lazy first-occurrence rescan: only chunks that improve
                    // the running nearest pay it (the first chunk or two of
                    // a scan), and the stored row makes it backend-neutral —
                    // the same (value, earliest-lane) pair every backend's
                    // eager tracking produced.
                    let mut l = 0;
                    while row[l] != cmin {
                        l += 1;
                    }
                    nearests[qi] = (cmin, base + l);
                }
                let mut m = masks[qi];
                while m != 0 {
                    let l = m.trailing_zeros() as usize;
                    m &= m - 1;
                    let d = row[l];
                    if best.len() < num || d < best[best.len() - 1].0 {
                        let pos = sorted_insert_pos(best, d);
                        best.insert(pos, (d, base + l));
                        if best.len() > num {
                            best.pop();
                        }
                    }
                }
            }
            base += len;
        }
        for (qi, best) in bests[..tile.len()].iter().enumerate() {
            emit(tile_idx * QUERY_TILE + qi, best, nearests[qi]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn soa_of(points: &[[f32; 3]]) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        (
            points.iter().map(|p| p[0]).collect(),
            points.iter().map(|p| p[1]).collect(),
            points.iter().map(|p| p[2]).collect(),
        )
    }

    fn available() -> Vec<Backend> {
        Backend::ALL.into_iter().filter(|b| b.is_available()).collect()
    }

    #[test]
    fn backend_names_round_trip() {
        for b in Backend::ALL {
            assert_eq!(Backend::from_name(b.name()), Some(b));
        }
        assert_eq!(Backend::from_name(" AVX2 "), Some(Backend::Avx2));
        assert_eq!(Backend::from_name("neon"), None);
    }

    #[test]
    fn active_backend_is_available() {
        assert!(active_backend().is_available());
    }

    #[test]
    fn with_backend_overrides_and_restores() {
        let outer = active_backend();
        with_backend(Backend::Scalar, || {
            assert_eq!(active_backend(), Backend::Scalar);
            with_backend(Backend::Soa, || assert_eq!(active_backend(), Backend::Soa));
            assert_eq!(active_backend(), Backend::Scalar);
        });
        assert_eq!(active_backend(), outer);
    }

    #[test]
    fn distances_match_scalar_formula_on_every_backend() {
        let pts: Vec<[f32; 3]> =
            (0..200).map(|i| [i as f32 * 0.1, (i % 7) as f32, -(i as f32)]).collect();
        let (xs, ys, zs) = soa_of(&pts);
        let q = [1.5f32, 2.0, -3.0];
        for b in available() {
            let mut out = vec![0.0; pts.len()];
            distances_sq_with(b, &xs, &ys, &zs, q, &mut out);
            for (i, p) in pts.iter().enumerate() {
                let expect = (p[0] - q[0]).powi(2) + (p[1] - q[1]).powi(2) + (p[2] - q[2]).powi(2);
                assert_eq!(out[i], expect, "lane {i} on {}", b.name());
            }
        }
    }

    #[test]
    fn relax_argmax_first_max_wins_on_ties() {
        // Two equidistant candidates: the lower index must win, matching the
        // reference's strict `>` scan.
        let (xs, ys, zs) = soa_of(&[[0.0, 0.0, 0.0], [2.0, 0.0, 0.0], [-2.0, 0.0, 0.0]]);
        for b in available() {
            let mut dist = vec![f32::INFINITY; 3];
            let best = fps_relax_argmax_with(b, &xs, &ys, &zs, [0.0, 0.0, 0.0], &mut dist);
            assert_eq!(best, 1, "index 1 ties index 2 and precedes it ({})", b.name());
            assert_eq!(dist, vec![0.0, 4.0, 4.0]);
        }
    }

    #[test]
    fn relax_argmax_skips_pinned_entries() {
        let (xs, ys, zs) = soa_of(&[[0.0, 0.0, 0.0], [5.0, 0.0, 0.0], [1.0, 0.0, 0.0]]);
        for b in available() {
            let mut dist = vec![f32::INFINITY; 3];
            dist[1] = f32::NEG_INFINITY; // already sampled
            let best = fps_relax_argmax_with(b, &xs, &ys, &zs, [0.0, 0.0, 0.0], &mut dist);
            assert_eq!(best, 2, "pinned entry 1 cannot win ({})", b.name());
            assert_eq!(dist[1], f32::NEG_INFINITY, "pinned stays pinned");
        }
    }

    #[test]
    fn relax_argmax_spans_chunk_boundaries() {
        let n = CHUNK * 3 + 17;
        let pts: Vec<[f32; 3]> = (0..n).map(|i| [i as f32, 0.0, 0.0]).collect();
        let (xs, ys, zs) = soa_of(&pts);
        for b in available() {
            let mut dist = vec![f32::INFINITY; n];
            let best = fps_relax_argmax_with(b, &xs, &ys, &zs, [0.0, 0.0, 0.0], &mut dist);
            assert_eq!(best, n - 1, "farthest point is in the final partial chunk ({})", b.name());
        }
    }

    #[test]
    fn relax_argmax_rejects_empty_input_on_every_backend() {
        for b in available() {
            let caught = std::panic::catch_unwind(|| {
                let mut dist: Vec<f32> = Vec::new();
                fps_relax_argmax_with(b, &[], &[], &[], [0.0; 3], &mut dist)
            });
            assert!(caught.is_err(), "empty input must panic identically ({})", b.name());
        }
    }

    #[test]
    fn nan_distances_leave_dist_unchanged() {
        let (xs, ys, zs) = soa_of(&[[f32::NAN, 0.0, 0.0], [1.0, 0.0, 0.0]]);
        for b in available() {
            let mut dist = vec![7.0f32, f32::INFINITY];
            fps_relax_argmax_with(b, &xs, &ys, &zs, [0.0, 0.0, 0.0], &mut dist);
            assert_eq!(dist[0], 7.0, "NaN candidate must not lower dist ({})", b.name());
            assert_eq!(dist[1], 1.0);
        }
    }

    #[test]
    fn pinned_relax_excludes_in_radius_candidates() {
        // Points at x = 0, 0.5, 2, 5; query at origin, pin radius 1 (r² = 1):
        // 0 and 0.5 pin; the argmax over {4, 25} is index 3.
        let (xs, ys, zs) =
            soa_of(&[[0.0, 0.0, 0.0], [0.5, 0.0, 0.0], [2.0, 0.0, 0.0], [5.0, 0.0, 0.0]]);
        for b in available() {
            let mut dist = vec![f32::INFINITY; 4];
            let best = fps_relax_argmax_pin_with(b, &xs, &ys, &zs, [0.0; 3], 1.0, &mut dist);
            assert_eq!(best, 3, "farthest unpinned wins ({})", b.name());
            assert_eq!(dist[0], f32::NEG_INFINITY, "in-radius candidate pinned ({})", b.name());
            assert_eq!(dist[1], f32::NEG_INFINITY);
            assert_eq!(dist[2], 4.0);
            // Pinning is monotone: a later scan from far away never unpins.
            let best = fps_relax_argmax_pin_with(b, &xs, &ys, &zs, [5.0, 0.0, 0.0], 1.0, &mut dist);
            assert_eq!(dist[0], f32::NEG_INFINITY, "pinned stays pinned ({})", b.name());
            assert_eq!(best, 2, "index 2 is the only live candidate left");
        }
    }

    #[test]
    fn pinned_relax_all_pinned_returns_index_zero() {
        let (xs, ys, zs) = soa_of(&[[0.1, 0.0, 0.0], [0.2, 0.0, 0.0], [0.3, 0.0, 0.0]]);
        for b in available() {
            let mut dist = vec![f32::INFINITY; 3];
            let best = fps_relax_argmax_pin_with(b, &xs, &ys, &zs, [0.0; 3], 100.0, &mut dist);
            assert_eq!(best, 0, "exhausted block reports index 0 ({})", b.name());
            assert!(dist.iter().all(|&d| d == f32::NEG_INFINITY));
        }
    }

    #[test]
    fn pinned_relax_with_negative_radius_matches_unpinned() {
        // r² < 0 never pins (distances are non-negative), so the fused
        // kernel must agree with plain fps_relax_argmax bit-for-bit.
        let pts: Vec<[f32; 3]> = (0..CHUNK * 2 + 9)
            .map(|i| [(i as f32 * 0.37).sin() * 4.0, (i % 5) as f32, -(i as f32) * 0.1])
            .collect();
        let (xs, ys, zs) = soa_of(&pts);
        for b in available() {
            let mut plain = vec![f32::INFINITY; pts.len()];
            let mut pinned = plain.clone();
            let bp = fps_relax_argmax_with(b, &xs, &ys, &zs, [0.2, 0.3, 0.4], &mut plain);
            let bq =
                fps_relax_argmax_pin_with(b, &xs, &ys, &zs, [0.2, 0.3, 0.4], -1.0, &mut pinned);
            assert_eq!(bp, bq, "never-pinning radius must not change the argmax ({})", b.name());
            assert_eq!(plain, pinned);
        }
    }

    #[test]
    fn pinned_relax_nan_candidates_neither_relax_nor_pin() {
        let (xs, ys, zs) = soa_of(&[[f32::NAN, 0.0, 0.0], [3.0, 0.0, 0.0]]);
        for b in available() {
            let mut dist = vec![7.0f32, f32::INFINITY];
            let best = fps_relax_argmax_pin_with(b, &xs, &ys, &zs, [0.0; 3], 1e30, &mut dist);
            assert_eq!(dist[0], 7.0, "NaN distance must not pin or relax ({})", b.name());
            assert_eq!(dist[1], f32::NEG_INFINITY, "finite in-radius candidate pins");
            assert_eq!(best, 0);
        }
    }

    #[test]
    fn pinned_relax_is_bit_identical_across_backends() {
        let pts: Vec<[f32; 3]> = (0..CHUNK * 3 + 17)
            .map(|i| [((i * 31) % 23) as f32 * 0.21, ((i * 7) % 13) as f32 * 0.33, (i % 4) as f32])
            .collect();
        let (xs, ys, zs) = soa_of(&pts);
        let backends = available();
        for r_sq in [0.0f32, 0.05, 0.5, 4.0] {
            let mut reference: Option<(usize, Vec<f32>)> = None;
            for &b in &backends {
                let mut dist = vec![f32::INFINITY; pts.len()];
                let best =
                    fps_relax_argmax_pin_with(b, &xs, &ys, &zs, [1.0, 1.0, 1.0], r_sq, &mut dist);
                match &reference {
                    None => reference = Some((best, dist)),
                    Some((rb, rd)) => {
                        assert_eq!(best, *rb, "argmax diverged at r²={r_sq} on {}", b.name());
                        assert_eq!(&dist, rd, "dist diverged at r²={r_sq} on {}", b.name());
                    }
                }
            }
        }
    }

    #[test]
    fn select_batches_reuse_a_dirty_scratch_bit_identically() {
        let pts: Vec<[f32; 3]> =
            (0..157).map(|i| [(i as f32 * 0.73).sin() * 10.0, (i % 13) as f32, i as f32]).collect();
        let (xs, ys, zs) = soa_of(&pts);
        let queries: Vec<[f32; 3]> = (0..11).map(|i| pts[i * 14]).collect();
        for b in available() {
            let mut dirty = SelectScratch::new();
            // Dirty the scratch with a different shape (k=9, then ball num=2).
            knn_select_batch_into(
                b,
                &xs,
                &ys,
                &zs,
                &queries[..3],
                9,
                &mut dirty,
                |_, _| {},
                |_| {},
            );
            ball_select_batch_into(b, &xs, &ys, &zs, &queries, 0.9, 2, &mut dirty, |_, _, _| {});
            // Reused dirty scratch vs the allocating wrapper: identical.
            let mut via_scratch: Vec<Vec<(f32, usize)>> = Vec::new();
            knn_select_batch_into(
                b,
                &xs,
                &ys,
                &zs,
                &queries,
                5,
                &mut dirty,
                |_, pairs| via_scratch.push(pairs.to_vec()),
                |_| {},
            );
            let mut fresh: Vec<Vec<(f32, usize)>> = Vec::new();
            knn_select_batch_with(
                b,
                &xs,
                &ys,
                &zs,
                &queries,
                5,
                |_, p| fresh.push(p.to_vec()),
                |_| {},
            );
            assert_eq!(via_scratch, fresh, "dirty scratch diverged on {}", b.name());

            type BallRow = (Vec<(f32, usize)>, (f32, usize));
            let mut ball_scratch: Vec<BallRow> = Vec::new();
            ball_select_batch_into(b, &xs, &ys, &zs, &queries, 0.5, 4, &mut dirty, |_, best, n| {
                ball_scratch.push((best.to_vec(), n));
            });
            let mut ball_fresh: Vec<BallRow> = Vec::new();
            ball_select_batch_with(b, &xs, &ys, &zs, &queries, 0.5, 4, |_, best, n| {
                ball_fresh.push((best.to_vec(), n));
            });
            assert_eq!(ball_scratch, ball_fresh, "dirty ball scratch diverged on {}", b.name());
        }
    }

    #[test]
    fn gather_builds_local_soa() {
        let (xs, ys, zs) = soa_of(&[[0.0, 10.0, 20.0], [1.0, 11.0, 21.0], [2.0, 12.0, 22.0]]);
        let (mut gx, mut gy, mut gz) = (Vec::new(), Vec::new(), Vec::new());
        gather_coords(&xs, &ys, &zs, &[2, 0], &mut gx, &mut gy, &mut gz);
        assert_eq!(gx, vec![2.0, 0.0]);
        assert_eq!(gy, vec![12.0, 10.0]);
        assert_eq!(gz, vec![22.0, 20.0]);
    }

    #[test]
    fn topk_keeps_k_smallest_in_order() {
        let mut topk = TopK::new(3);
        let mut inserts = 0;
        topk.select(&[5.0, 1.0, 4.0, 0.5, 9.0, 0.7], |_| inserts += 1);
        let got: Vec<(f32, usize)> = topk.as_slice().to_vec();
        assert_eq!(got, vec![(0.5, 3), (0.7, 5), (1.0, 1)]);
        assert_eq!(inserts, 5, "9.0 is rejected by the full-buffer threshold");
    }

    #[test]
    fn topk_equal_distances_keep_scan_order() {
        let mut topk = TopK::new(2);
        topk.select(&[1.0, 1.0, 1.0], |_| {});
        assert_eq!(topk.as_slice(), &[(1.0, 0), (1.0, 1)]);
    }

    #[test]
    fn topk_select_offset_matches_single_select() {
        let distances: Vec<f32> = (0..300).map(|i| ((i * 37) % 101) as f32).collect();
        let mut whole = TopK::new(7);
        let mut whole_inserts = Vec::new();
        whole.select(&distances, |l| whole_inserts.push(l));
        let mut chunked = TopK::new(7);
        let mut chunked_inserts = Vec::new();
        let mut base = 0;
        for chunk in distances.chunks(CHUNK) {
            chunked.select_offset(chunk, base, |l| chunked_inserts.push(l));
            base += chunk.len();
        }
        assert_eq!(whole.as_slice(), chunked.as_slice());
        assert_eq!(whole_inserts, chunked_inserts);
    }

    #[test]
    fn ball_chunk_masks_hits_and_finds_first_min() {
        let pts: Vec<[f32; 3]> = vec![
            [3.0, 0.0, 0.0],
            [1.0, 0.0, 0.0],
            [1.0, 0.0, 0.0], // ties lane 1: first min must stay lane 1
            [0.5, 0.0, 0.0],
            [9.0, 0.0, 0.0],
        ];
        let (xs, ys, zs) = soa_of(&pts);
        for b in available() {
            let mut out = [0.0f32; 5];
            let (mask, cmin, clane) =
                ball_chunk_with(b, &xs, &ys, &zs, [0.0; 3], 1.0, f32::INFINITY, &mut out[..5]);
            assert_eq!(mask, 0b01110, "hits are d² <= 1 ({})", b.name());
            assert_eq!(cmin, 0.25);
            assert_eq!(clane, 3);
            // A finite acceptance threshold additionally drops hits at or
            // above it (strict <), without touching the nearest tracking.
            let (mask, cmin, clane) =
                ball_chunk_with(b, &xs, &ys, &zs, [0.0; 3], 1.0, 1.0, &mut out[..5]);
            assert_eq!(mask, 0b01000, "only d² < 1 survives thr = 1 ({})", b.name());
            assert_eq!(cmin, 0.25);
            assert_eq!(clane, 3);
        }
    }

    #[test]
    fn ball_chunk_empty_and_nan_lanes_never_hit() {
        let (xs, ys, zs) = soa_of(&[[f32::NAN, 0.0, 0.0], [f32::INFINITY, 0.0, 0.0]]);
        for b in available() {
            let mut out = [0.0f32; 2];
            let (mask, cmin, clane) =
                ball_chunk_with(b, &xs, &ys, &zs, [0.0; 3], 1e30, f32::INFINITY, &mut out[..2]);
            assert_eq!(mask, 0, "NaN and +inf distances are not hits ({})", b.name());
            assert_eq!(cmin, f32::INFINITY);
            assert_eq!(clane, u32::MAX, "no lane is strictly below +inf");
        }
    }

    #[test]
    fn knn_batch_matches_per_query_topk() {
        let pts: Vec<[f32; 3]> =
            (0..157).map(|i| [(i as f32 * 0.73).sin() * 10.0, (i % 13) as f32, i as f32]).collect();
        let (xs, ys, zs) = soa_of(&pts);
        // 11 queries: not a multiple of QUERY_TILE.
        let queries: Vec<[f32; 3]> = (0..11).map(|i| pts[i * 14]).collect();
        let k = 5;
        for b in available() {
            let mut batched: Vec<Vec<(f32, usize)>> = Vec::new();
            let mut batched_inserts = 0u64;
            knn_select_batch_with(
                b,
                &xs,
                &ys,
                &zs,
                &queries,
                k,
                |qi, pairs| {
                    assert_eq!(qi, batched.len(), "emit must be in query order");
                    batched.push(pairs.to_vec());
                },
                |_| batched_inserts += 1,
            );
            let mut single_inserts = 0u64;
            for (qi, q) in queries.iter().enumerate() {
                let mut dbuf = vec![0.0f32; pts.len()];
                distances_sq_with(b, &xs, &ys, &zs, *q, &mut dbuf);
                let mut topk = TopK::new(k);
                topk.select(&dbuf, |_| single_inserts += 1);
                assert_eq!(batched[qi], topk.as_slice(), "query {qi} on {}", b.name());
            }
            assert_eq!(batched_inserts, single_inserts, "insert accounting ({})", b.name());
        }
    }

    #[test]
    fn knn_batch_k_larger_than_candidates_emits_all() {
        let (xs, ys, zs) = soa_of(&[[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]]);
        knn_select_batch(
            &xs,
            &ys,
            &zs,
            &[[0.0; 3]],
            5,
            |_, pairs| assert_eq!(pairs.len(), 2),
            |_| {},
        );
    }

    #[test]
    fn ball_batch_matches_sequential_reference_semantics() {
        let pts: Vec<[f32; 3]> = (0..200)
            .map(|i| [((i * 31) % 17) as f32 * 0.3, ((i * 7) % 11) as f32 * 0.3, 0.0])
            .collect();
        let (xs, ys, zs) = soa_of(&pts);
        let queries: Vec<[f32; 3]> = (0..9).map(|i| pts[i * 21]).collect();
        let (r_sq, num) = (0.5f32, 4usize);
        for b in available() {
            type BallResult = (Vec<(f32, usize)>, (f32, usize));
            let mut got: Vec<BallResult> = Vec::new();
            ball_select_batch_with(b, &xs, &ys, &zs, &queries, r_sq, num, |_, best, nearest| {
                got.push((best.to_vec(), nearest));
            });
            for (qi, q) in queries.iter().enumerate() {
                // Scalar reference formulation.
                let mut best: Vec<(f32, usize)> = Vec::new();
                let mut nearest = (f32::INFINITY, usize::MAX);
                for (i, p) in pts.iter().enumerate() {
                    let d = (p[0] - q[0]).powi(2) + (p[1] - q[1]).powi(2) + (p[2] - q[2]).powi(2);
                    if d < nearest.0 {
                        nearest = (d, i);
                    }
                    if d <= r_sq && (best.len() < num || d < best[best.len() - 1].0) {
                        let pos = best.partition_point(|&(bd, _)| bd <= d);
                        best.insert(pos, (d, i));
                        if best.len() > num {
                            best.pop();
                        }
                    }
                }
                assert_eq!(got[qi].0, best, "query {qi} on {}", b.name());
                assert_eq!(got[qi].1, nearest, "nearest for query {qi} on {}", b.name());
            }
        }
    }

    #[test]
    fn ball_batch_keeps_infinite_distance_hits_while_filling() {
        // Squared distances can overflow to +inf for far-apart finite
        // points; with an (overflowed) infinite radius the reference
        // accepts them as hits. The acceptance prefilter's filling
        // sentinel (NaN, `!(d >= NaN)` keeps all) must not drop them.
        let (xs, ys, zs) = soa_of(&[[1.9e19, 0.0, 0.0], [1.0, 0.0, 0.0]]);
        for b in available() {
            let mut got: Vec<Vec<(f32, usize)>> = Vec::new();
            ball_select_batch_with(
                b,
                &xs,
                &ys,
                &zs,
                &[[-1.9e19, 0.0, 0.0]],
                f32::INFINITY,
                4,
                |_, best, _| got.push(best.to_vec()),
            );
            // Both squared distances overflow to +inf; both are hits under
            // the (overflowed) infinite radius, kept in scan order.
            assert_eq!(
                got[0],
                vec![(f32::INFINITY, 0), (f32::INFINITY, 1)],
                "+inf-distance hits must survive the filling prefilter ({})",
                b.name()
            );
        }
    }

    #[test]
    fn segmented_max_matches_reference_reduction_on_every_backend() {
        let channels = 11; // not a multiple of the SIMD width: exercises tails
        let n = 37;
        let features: Vec<f32> =
            (0..n * channels).map(|i| ((i * 73) % 101) as f32 - 50.0).collect();
        let num = 5;
        let counts = [5usize, 3, 0, 1, 5];
        let indices: Vec<usize> = (0..counts.len() * num).map(|i| (i * 17) % n).collect();
        let mut expect = vec![f32::NEG_INFINITY; counts.len() * channels];
        for (c, &count) in counts.iter().enumerate() {
            for &i in &indices[c * num..c * num + count] {
                for ch in 0..channels {
                    let v = features[i * channels + ch];
                    if v > expect[c * channels + ch] {
                        expect[c * channels + ch] = v;
                    }
                }
            }
        }
        for b in available() {
            let got =
                with_backend(b, || segmented_max(&features, channels, &indices, &counts, num));
            assert_eq!(got, expect, "backend {}", b.name());
            let mut out = vec![f32::NAN; counts.len() * channels];
            segmented_max_into_with(b, &features, channels, &indices, &counts, num, &mut out);
            assert_eq!(out, expect, "into form on {}", b.name());
        }
    }

    #[test]
    fn segmented_max_empty_segment_is_neg_infinity() {
        let features = [1.0f32, 2.0];
        let out = segmented_max(&features, 2, &[0, 0], &[0], 2);
        assert_eq!(out, vec![f32::NEG_INFINITY; 2]);
    }

    #[test]
    fn segmented_max_duplicate_indices_do_not_change_the_maximum() {
        // Ball-query padding repeats real neighbors; a reduction over the
        // padded row must equal one over the distinct entries.
        let features: Vec<f32> = (0..4 * 8).map(|i| (i % 13) as f32).collect();
        for b in available() {
            let padded = segmented_max_with_backend(b, &features, 8, &[1, 3, 1, 1, 1, 1], &[6], 6);
            let distinct = segmented_max_with_backend(b, &features, 8, &[1, 3], &[2], 2);
            assert_eq!(padded, distinct, "padding changed the maximum on {}", b.name());
        }
    }

    fn segmented_max_with_backend(
        b: Backend,
        features: &[f32],
        channels: usize,
        indices: &[usize],
        counts: &[usize],
        num: usize,
    ) -> Vec<f32> {
        let mut out = vec![0.0; counts.len() * channels];
        segmented_max_into_with(b, features, channels, indices, counts, num, &mut out);
        out
    }

    #[test]
    fn segmented_max_nan_features_never_overwrite() {
        let features = [f32::NAN, 5.0, 1.0, f32::NAN];
        for b in available() {
            let out = segmented_max_with_backend(b, &features, 2, &[0, 1], &[2], 2);
            assert_eq!(out[0], 1.0, "NaN lane must not win on {}", b.name());
            assert_eq!(out[1], 5.0, "NaN in row 1 must not erase 5.0 on {}", b.name());
        }
    }

    #[test]
    fn ball_batch_empty_candidates_reports_sentinel() {
        let empty: [f32; 0] = [];
        ball_select_batch(&empty, &empty, &empty, &[[0.0; 3]], 1.0, 3, |_, best, nearest| {
            assert!(best.is_empty());
            assert_eq!(nearest, (f32::INFINITY, usize::MAX));
        });
    }
}

//! AVX2 kernel backend: explicit 8-lane `core::arch::x86_64` intrinsics.
//!
//! # Safety argument
//!
//! This is the **only** module in the workspace containing `unsafe` SIMD
//! code, and every `unsafe` block is confined to it behind safe wrappers:
//!
//! * Every public function first asserts `is_x86_feature_detected!("avx2")`
//!   (a cached atomic load), so the `#[target_feature(enable = "avx2")]`
//!   inner functions are only ever entered on CPUs that implement the
//!   instructions — the sole soundness requirement of `target_feature`.
//!   The dispatcher in [`kernels`](super) additionally never resolves
//!   [`Backend::Avx2`](super::Backend::Avx2) without runtime detection, so
//!   the assert is belt-and-braces and never fires in practice.
//! * All memory access is through `loadu`/`storeu` on `ptr.add(i)` with
//!   `i + 8 <= len` (unaligned full-vector access within the slice), or
//!   through `maskload`/`maskstore` for the tail, which architecturally
//!   never touch memory of masked-off lanes. No pointer ever leaves its
//!   slice's bounds.
//!
//! # Exactness argument
//!
//! Results are bit-identical to the scalar/SoA backends:
//!
//! * distances use `sub`/`mul`/`add` in the same association as
//!   `dx*dx + dy*dy + dz*dz` — intrinsics are never contracted to FMA;
//! * `_mm256_min_ps(nd, cur)` implements `if nd < cur { nd } else { cur }`
//!   per lane (returns the second operand on NaN), exactly the reference's
//!   relax idiom; `_mm256_max_ps(v, acc)` likewise never lets NaN overwrite
//!   the accumulator;
//! * compares use `_CMP_LE_OQ` (ordered, non-signaling), so NaN distances
//!   never count as radius hits — same as the scalar `d <= r_sq`;
//! * argmax/argmin reductions record the first chunk that *strictly*
//!   improves the running extremum and then rescan that chunk for the first
//!   occurrence of the extremal value, which is exact because distances are
//!   never `-0.0` (they are sums of non-negative products).

#![allow(unsafe_code)]

use core::arch::x86_64::{
    __m256, __m256i, _mm256_add_ps, _mm256_and_ps, _mm256_blendv_ps, _mm256_castsi256_ps,
    _mm256_cmp_ps, _mm256_cmpgt_epi32, _mm256_loadu_ps, _mm256_maskload_ps, _mm256_maskstore_ps,
    _mm256_max_ps, _mm256_min_ps, _mm256_movemask_ps, _mm256_mul_ps, _mm256_set1_epi32,
    _mm256_set1_ps, _mm256_setr_epi32, _mm256_storeu_ps, _mm256_sub_ps, _CMP_LE_OQ, _CMP_NGE_UQ,
};

use super::CHUNK;

/// SIMD width: 8 `f32` lanes per 256-bit vector.
const LANES: usize = 8;

#[inline]
fn assert_avx2() {
    assert!(is_x86_feature_detected!("avx2"), "AVX2 kernel backend invoked on a CPU without AVX2");
}

/// Lane-enable mask for a partial group: lanes `0..rem` active.
///
/// # Safety
///
/// Caller must ensure AVX2 is available.
#[target_feature(enable = "avx2")]
unsafe fn tail_mask(rem: usize) -> __m256i {
    debug_assert!(rem < LANES);
    let idx = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
    _mm256_cmpgt_epi32(_mm256_set1_epi32(rem as i32), idx)
}

/// Eight squared distances from the vectors loaded at lane group `(x, y, z)`
/// to the splatted query `(qx, qy, qz)` — same association as the scalar
/// `dx*dx + dy*dy + dz*dz`.
///
/// # Safety
///
/// Caller must ensure AVX2 is available.
#[target_feature(enable = "avx2")]
unsafe fn dist8(x: __m256, y: __m256, z: __m256, qx: __m256, qy: __m256, qz: __m256) -> __m256 {
    let dx = _mm256_sub_ps(x, qx);
    let dy = _mm256_sub_ps(y, qy);
    let dz = _mm256_sub_ps(z, qz);
    _mm256_add_ps(
        _mm256_add_ps(_mm256_mul_ps(dx, dx), _mm256_mul_ps(dy, dy)),
        _mm256_mul_ps(dz, dz),
    )
}

/// AVX2 squared distances; see [`kernels::distances_sq`](super::distances_sq).
pub fn distances_sq(xs: &[f32], ys: &[f32], zs: &[f32], q: [f32; 3], out: &mut [f32]) {
    assert_avx2();
    // SAFETY: AVX2 availability asserted above; all accesses stay in bounds
    // (full groups require `i + 8 <= n`, the tail uses masked load/store).
    unsafe { distances_sq_impl(xs, ys, zs, q, out) }
}

#[target_feature(enable = "avx2")]
unsafe fn distances_sq_impl(xs: &[f32], ys: &[f32], zs: &[f32], q: [f32; 3], out: &mut [f32]) {
    let n = xs.len();
    let qx = _mm256_set1_ps(q[0]);
    let qy = _mm256_set1_ps(q[1]);
    let qz = _mm256_set1_ps(q[2]);
    let mut i = 0;
    while i + LANES <= n {
        let x = _mm256_loadu_ps(xs.as_ptr().add(i));
        let y = _mm256_loadu_ps(ys.as_ptr().add(i));
        let z = _mm256_loadu_ps(zs.as_ptr().add(i));
        let nd = dist8(x, y, z, qx, qy, qz);
        _mm256_storeu_ps(out.as_mut_ptr().add(i), nd);
        i += LANES;
    }
    let rem = n - i;
    if rem > 0 {
        let m = tail_mask(rem);
        let x = _mm256_maskload_ps(xs.as_ptr().add(i), m);
        let y = _mm256_maskload_ps(ys.as_ptr().add(i), m);
        let z = _mm256_maskload_ps(zs.as_ptr().add(i), m);
        let nd = dist8(x, y, z, qx, qy, qz);
        _mm256_maskstore_ps(out.as_mut_ptr().add(i), m, nd);
    }
}

/// Fused tile of per-query distance rows + threshold prefilter masks over
/// one chunk; see the dispatching `knn_prefilter_tile` call site in
/// [`kernels`](super) for the contract (`out` rows strided by [`CHUNK`];
/// mask bit `j` set iff `!(row[j] >= threshold)`, so a NaN threshold keeps
/// every lane).
///
/// This is where query batching pays at the register level: each 8-lane
/// coordinate group is loaded once and both scored *and* prefiltered
/// against every query of the tile before the next group is touched
/// (`_CMP_NGE_UQ` is unordered-true, matching the scalar `!(d >= thr)`).
pub fn knn_prefilter_tile(
    xs: &[f32],
    ys: &[f32],
    zs: &[f32],
    queries: &[[f32; 3]],
    thresholds: &[f32],
    out: &mut [f32],
    masks: &mut [u64],
) {
    assert_avx2();
    // SAFETY: AVX2 availability asserted above; all accesses stay in bounds
    // (row `qi` spans `qi * CHUNK .. qi * CHUNK + len` with `len <= CHUNK`
    // and `out.len() >= queries.len() * CHUNK`, checked below).
    unsafe { knn_prefilter_tile_impl(xs, ys, zs, queries, thresholds, out, masks) }
}

#[target_feature(enable = "avx2")]
unsafe fn knn_prefilter_tile_impl(
    xs: &[f32],
    ys: &[f32],
    zs: &[f32],
    queries: &[[f32; 3]],
    thresholds: &[f32],
    out: &mut [f32],
    masks: &mut [u64],
) {
    let len = xs.len();
    assert!(len <= CHUNK, "tile rows are strided by CHUNK");
    assert!(queries.is_empty() || out.len() >= queries.len() * CHUNK, "out too small");
    assert!(thresholds.len() >= queries.len() && masks.len() >= queries.len());
    masks[..queries.len()].fill(0);
    let mut i = 0;
    while i + LANES <= len {
        let x = _mm256_loadu_ps(xs.as_ptr().add(i));
        let y = _mm256_loadu_ps(ys.as_ptr().add(i));
        let z = _mm256_loadu_ps(zs.as_ptr().add(i));
        for (qi, q) in queries.iter().enumerate() {
            let nd =
                dist8(x, y, z, _mm256_set1_ps(q[0]), _mm256_set1_ps(q[1]), _mm256_set1_ps(q[2]));
            _mm256_storeu_ps(out.as_mut_ptr().add(qi * CHUNK + i), nd);
            let keep = _mm256_cmp_ps::<_CMP_NGE_UQ>(nd, _mm256_set1_ps(thresholds[qi]));
            masks[qi] |= u64::from(_mm256_movemask_ps(keep) as u8) << i;
        }
        i += LANES;
    }
    let rem = len - i;
    if rem > 0 {
        let m = tail_mask(rem);
        let x = _mm256_maskload_ps(xs.as_ptr().add(i), m);
        let y = _mm256_maskload_ps(ys.as_ptr().add(i), m);
        let z = _mm256_maskload_ps(zs.as_ptr().add(i), m);
        for (qi, q) in queries.iter().enumerate() {
            let nd =
                dist8(x, y, z, _mm256_set1_ps(q[0]), _mm256_set1_ps(q[1]), _mm256_set1_ps(q[2]));
            _mm256_maskstore_ps(out.as_mut_ptr().add(qi * CHUNK + i), m, nd);
            let keep = _mm256_cmp_ps::<_CMP_NGE_UQ>(nd, _mm256_set1_ps(thresholds[qi]));
            // Inactive tail lanes hold distances of zeroed loads: strip them.
            let bits = (_mm256_movemask_ps(keep) as u32) & ((1u32 << rem) - 1);
            masks[qi] |= u64::from(bits) << i;
        }
    }
}

/// AVX2 fused relax + argmax; see
/// [`kernels::fps_relax_argmax`](super::fps_relax_argmax).
pub fn fps_relax_argmax(
    xs: &[f32],
    ys: &[f32],
    zs: &[f32],
    q: [f32; 3],
    dist: &mut [f32],
) -> usize {
    assert_avx2();
    // SAFETY: AVX2 availability asserted above; all accesses stay in bounds.
    unsafe { fps_relax_argmax_impl(xs, ys, zs, q, dist) }
}

/// Mirrors the SoA backend's chunk structure exactly: 8 independent lane
/// maxima per chunk (the vector accumulator), a scalar tail, the same
/// NaN-safe horizontal fold, and the same first-improving-chunk + rescan
/// argmax selection — so the returned index is bit-identical.
#[target_feature(enable = "avx2")]
unsafe fn fps_relax_argmax_impl(
    xs: &[f32],
    ys: &[f32],
    zs: &[f32],
    q: [f32; 3],
    dist: &mut [f32],
) -> usize {
    let n = xs.len();
    let qx = _mm256_set1_ps(q[0]);
    let qy = _mm256_set1_ps(q[1]);
    let qz = _mm256_set1_ps(q[2]);
    let mut cmax = f32::NEG_INFINITY;
    let mut cmax_chunk_base = 0usize;
    let mut base = 0usize;
    while base < n {
        let end = (base + CHUNK).min(n);
        let mut acc = _mm256_set1_ps(f32::NEG_INFINITY);
        let mut i = base;
        while i + LANES <= end {
            let x = _mm256_loadu_ps(xs.as_ptr().add(i));
            let y = _mm256_loadu_ps(ys.as_ptr().add(i));
            let z = _mm256_loadu_ps(zs.as_ptr().add(i));
            let nd = dist8(x, y, z, qx, qy, qz);
            let cur = _mm256_loadu_ps(dist.as_ptr().add(i));
            // min(nd, cur): keeps `cur` when `nd` is NaN — the relax idiom.
            let v = _mm256_min_ps(nd, cur);
            _mm256_storeu_ps(dist.as_mut_ptr().add(i), v);
            // max(v, acc): NaN `v` never overwrites the accumulator.
            acc = _mm256_max_ps(v, acc);
            i += LANES;
        }
        // Scalar tail (same code as the SoA backend's remainder loop).
        let mut cm = f32::NEG_INFINITY;
        for j in i..end {
            let dx = xs[j] - q[0];
            let dy = ys[j] - q[1];
            let dz = zs[j] - q[2];
            let nd = dx * dx + dy * dy + dz * dz;
            let cur = dist[j];
            let v = if nd < cur { nd } else { cur };
            dist[j] = v;
            cm = if v > cm { v } else { cm };
        }
        // Horizontal fold of the lane maxima (never NaN, see above).
        let mut lanes = [0.0f32; LANES];
        _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
        for &m in &lanes {
            cm = if m > cm { m } else { cm };
        }
        if cm > cmax {
            cmax = cm;
            cmax_chunk_base = base;
        }
        base = end;
    }
    let mut best = cmax_chunk_base;
    while dist[best] != cmax {
        best += 1;
    }
    best
}

/// AVX2 fused relax + pin + argmax; see
/// [`kernels::fps_relax_argmax_pin`](super::fps_relax_argmax_pin).
pub fn fps_relax_argmax_pin(
    xs: &[f32],
    ys: &[f32],
    zs: &[f32],
    q: [f32; 3],
    r_sq: f32,
    dist: &mut [f32],
) -> usize {
    assert_avx2();
    // SAFETY: AVX2 availability asserted above; all accesses stay in bounds.
    unsafe { fps_relax_argmax_pin_impl(xs, ys, zs, q, r_sq, dist) }
}

/// [`fps_relax_argmax_impl`] widened with the fused pin mask: one
/// `_CMP_LE_OQ` compare of the fresh distances against `r_sq` selects the
/// lanes to pin, and a blend forces those lanes of the relaxed vector to
/// `-∞` before the store and the argmax accumulation — one pass instead of
/// distance-then-mask. `_CMP_LE_OQ` is ordered, so NaN distances neither
/// relax (the `min` keeps `cur`) nor pin, exactly like the scalar backend's
/// `nd <= r_sq`. The argmax selection is unchanged; an all-pinned input
/// reduces to a `-∞` maximum whose first-chunk rescan lands on index 0,
/// matching the scalar strict-`>` scan.
#[target_feature(enable = "avx2")]
unsafe fn fps_relax_argmax_pin_impl(
    xs: &[f32],
    ys: &[f32],
    zs: &[f32],
    q: [f32; 3],
    r_sq: f32,
    dist: &mut [f32],
) -> usize {
    let n = xs.len();
    let qx = _mm256_set1_ps(q[0]);
    let qy = _mm256_set1_ps(q[1]);
    let qz = _mm256_set1_ps(q[2]);
    let rv = _mm256_set1_ps(r_sq);
    let neg_inf = _mm256_set1_ps(f32::NEG_INFINITY);
    let mut cmax = f32::NEG_INFINITY;
    let mut cmax_chunk_base = 0usize;
    let mut base = 0usize;
    while base < n {
        let end = (base + CHUNK).min(n);
        let mut acc = _mm256_set1_ps(f32::NEG_INFINITY);
        let mut i = base;
        while i + LANES <= end {
            let x = _mm256_loadu_ps(xs.as_ptr().add(i));
            let y = _mm256_loadu_ps(ys.as_ptr().add(i));
            let z = _mm256_loadu_ps(zs.as_ptr().add(i));
            let nd = dist8(x, y, z, qx, qy, qz);
            let cur = _mm256_loadu_ps(dist.as_ptr().add(i));
            // min(nd, cur): keeps `cur` when `nd` is NaN — the relax idiom.
            let v = _mm256_min_ps(nd, cur);
            // Pin in the same pass: lanes with nd <= r² go to -∞ (ordered
            // compare, so NaN lanes never pin).
            let le = _mm256_cmp_ps::<_CMP_LE_OQ>(nd, rv);
            let v = _mm256_blendv_ps(v, neg_inf, le);
            _mm256_storeu_ps(dist.as_mut_ptr().add(i), v);
            // max(v, acc): NaN `v` never overwrites the accumulator.
            acc = _mm256_max_ps(v, acc);
            i += LANES;
        }
        // Scalar tail (same code as the SoA backend's remainder loop).
        let mut cm = f32::NEG_INFINITY;
        for j in i..end {
            let dx = xs[j] - q[0];
            let dy = ys[j] - q[1];
            let dz = zs[j] - q[2];
            let nd = dx * dx + dy * dy + dz * dz;
            let cur = dist[j];
            let v = if nd < cur { nd } else { cur };
            let v = if nd <= r_sq { f32::NEG_INFINITY } else { v };
            dist[j] = v;
            cm = if v > cm { v } else { cm };
        }
        // Horizontal fold of the lane maxima (never NaN, see above).
        let mut lanes = [0.0f32; LANES];
        _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
        for &m in &lanes {
            cm = if m > cm { m } else { cm };
        }
        if cm > cmax {
            cmax = cm;
            cmax_chunk_base = base;
        }
        base = end;
    }
    let mut best = cmax_chunk_base;
    while dist[best] != cmax {
        best += 1;
    }
    best
}

/// AVX2 segmented max-aggregation over neighbor index lists; see
/// [`kernels::segmented_max_into`](super::segmented_max_into) for the
/// contract. Per segment, each 8-channel group's accumulator stays in a
/// register while the neighbors' feature rows stream through
/// `_mm256_max_ps(v, acc)` — which returns `acc` when `v` is NaN and on
/// `±0.0` ties, exactly the scalar backend's strict-`>` update.
pub fn segmented_max(
    features: &[f32],
    channels: usize,
    indices: &[usize],
    counts: &[usize],
    num: usize,
    out: &mut [f32],
) {
    assert_avx2();
    // SAFETY: AVX2 availability asserted above; every feature row is
    // re-sliced through bounds-checked safe indexing before any load, and
    // the masked tail never touches memory of inactive lanes.
    unsafe { segmented_max_impl(features, channels, indices, counts, num, out) }
}

#[target_feature(enable = "avx2")]
unsafe fn segmented_max_impl(
    features: &[f32],
    channels: usize,
    indices: &[usize],
    counts: &[usize],
    num: usize,
    out: &mut [f32],
) {
    let neg_inf = _mm256_set1_ps(f32::NEG_INFINITY);
    for (c, &count) in counts.iter().enumerate() {
        let seg = &indices[c * num..c * num + count];
        let orow = &mut out[c * channels..c * channels + channels];
        let mut ch = 0;
        while ch + LANES <= channels {
            let mut acc = neg_inf;
            for &i in seg {
                let frow = &features[i * channels..i * channels + channels];
                let v = _mm256_loadu_ps(frow.as_ptr().add(ch));
                // max(v, acc): NaN `v` never overwrites the accumulator,
                // and ±0.0 ties keep the accumulator — the select idiom.
                acc = _mm256_max_ps(v, acc);
            }
            _mm256_storeu_ps(orow.as_mut_ptr().add(ch), acc);
            ch += LANES;
        }
        let rem = channels - ch;
        if rem > 0 {
            let m = tail_mask(rem);
            let mut acc = neg_inf;
            for &i in seg {
                let frow = &features[i * channels..i * channels + channels];
                // Inactive lanes load 0.0 and pollute only accumulator
                // lanes the masked store below never writes back.
                let v = _mm256_maskload_ps(frow.as_ptr().add(ch), m);
                acc = _mm256_max_ps(v, acc);
            }
            _mm256_maskstore_ps(orow.as_mut_ptr().add(ch), m, acc);
        }
    }
}

/// AVX2 tiled ball scan: each 8-lane coordinate group is loaded once and
/// scored against every query of the tile while it sits in registers —
/// the same batching that makes `knn_prefilter_tile` pay — with the fused
/// `<= r²` hit compare, the `< thr` acceptance prefilter, and the
/// per-query chunk-minimum tracking all in the same pass. See the
/// dispatching `ball_prefilter_tile` call site in [`kernels`](super) for
/// the contract.
#[allow(clippy::too_many_arguments)]
pub fn ball_prefilter_tile(
    xs: &[f32],
    ys: &[f32],
    zs: &[f32],
    queries: &[[f32; 3]],
    r_sq: f32,
    thresholds: &[f32],
    out: &mut [f32],
    masks: &mut [u64],
    mins: &mut [f32],
) {
    assert_avx2();
    // SAFETY: AVX2 availability asserted above; all accesses stay in bounds
    // (row `qi` spans `qi * CHUNK .. qi * CHUNK + len`, checked below).
    unsafe { ball_prefilter_tile_impl(xs, ys, zs, queries, r_sq, thresholds, out, masks, mins) }
}

/// Per query this computes exactly what [`ball_chunk_impl`] computes — the
/// same distance expression, the same ordered compares, the same NaN-free
/// vector minimum fold and first-occurrence rescan — so results are
/// bit-identical to the one-query-at-a-time formulation; only the loop
/// nest differs (coordinates loaded once per 8-lane group for the whole
/// tile).
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn ball_prefilter_tile_impl(
    xs: &[f32],
    ys: &[f32],
    zs: &[f32],
    queries: &[[f32; 3]],
    r_sq: f32,
    thresholds: &[f32],
    out: &mut [f32],
    masks: &mut [u64],
    mins: &mut [f32],
) {
    let len = xs.len();
    assert!(len <= CHUNK, "tile rows are strided by CHUNK");
    assert!(queries.is_empty() || out.len() >= (queries.len() - 1) * CHUNK + len, "out too small");
    assert!(thresholds.len() >= queries.len());
    assert!(masks.len() >= queries.len() && mins.len() >= queries.len());
    assert!(queries.len() <= super::QUERY_TILE, "tile wider than QUERY_TILE");
    let rv = _mm256_set1_ps(r_sq);
    let inf = _mm256_set1_ps(f32::INFINITY);
    masks[..queries.len()].fill(0);
    let mut vmins = [inf; super::QUERY_TILE];
    let mut i = 0;
    while i + LANES <= len {
        let x = _mm256_loadu_ps(xs.as_ptr().add(i));
        let y = _mm256_loadu_ps(ys.as_ptr().add(i));
        let z = _mm256_loadu_ps(zs.as_ptr().add(i));
        for (qi, q) in queries.iter().enumerate() {
            let nd =
                dist8(x, y, z, _mm256_set1_ps(q[0]), _mm256_set1_ps(q[1]), _mm256_set1_ps(q[2]));
            _mm256_storeu_ps(out.as_mut_ptr().add(qi * CHUNK + i), nd);
            // Ordered, non-signaling compares: NaN lanes never hit.
            let le = _mm256_cmp_ps::<_CMP_LE_OQ>(nd, rv);
            // Unordered-true `!(d >= thr)`: the NaN filling sentinel keeps
            // every in-radius lane (+inf distances included), matching the
            // scalar backend bit for bit.
            let lt = _mm256_cmp_ps::<_CMP_NGE_UQ>(nd, _mm256_set1_ps(thresholds[qi]));
            let keep = _mm256_and_ps(le, lt);
            masks[qi] |= u64::from(_mm256_movemask_ps(keep) as u8) << i;
            vmins[qi] = _mm256_min_ps(nd, vmins[qi]);
        }
        i += LANES;
    }
    let rem = len - i;
    if rem > 0 {
        let m = tail_mask(rem);
        let x = _mm256_maskload_ps(xs.as_ptr().add(i), m);
        let y = _mm256_maskload_ps(ys.as_ptr().add(i), m);
        let z = _mm256_maskload_ps(zs.as_ptr().add(i), m);
        for (qi, q) in queries.iter().enumerate() {
            let nd =
                dist8(x, y, z, _mm256_set1_ps(q[0]), _mm256_set1_ps(q[1]), _mm256_set1_ps(q[2]));
            _mm256_maskstore_ps(out.as_mut_ptr().add(qi * CHUNK + i), m, nd);
            let le = _mm256_cmp_ps::<_CMP_LE_OQ>(nd, rv);
            let lt = _mm256_cmp_ps::<_CMP_NGE_UQ>(nd, _mm256_set1_ps(thresholds[qi]));
            let keep = _mm256_and_ps(le, lt);
            let bits = (_mm256_movemask_ps(keep) as u32) & ((1u32 << rem) - 1);
            masks[qi] |= u64::from(bits) << i;
            // Inactive lanes hold distances of zeroed loads; blend them to
            // +inf so they cannot influence the minimum.
            let ndm = _mm256_blendv_ps(inf, nd, _mm256_castsi256_ps(m));
            vmins[qi] = _mm256_min_ps(ndm, vmins[qi]);
        }
    }
    // NaN-free horizontal min per query (NaN lanes never entered `vmins`);
    // the first-occurrence lane is located lazily by the caller, and only
    // when the chunk actually improves the running nearest.
    for (qi, _) in queries.iter().enumerate() {
        let mut lanes = [0.0f32; LANES];
        _mm256_storeu_ps(lanes.as_mut_ptr(), vmins[qi]);
        let mut min = f32::INFINITY;
        for &v in &lanes {
            if v < min {
                min = v;
            }
        }
        mins[qi] = min;
    }
}

/// AVX2 fused distance + radius-compare + acceptance-prefilter chunk; the
/// contract is documented on the dispatching wrapper in [`kernels`](super)
/// (`ball_chunk_with`). The extra `_CMP_LT_OQ` against the acceptance
/// threshold folds the selection buffer's reject test into the same
/// vector pass, so converged queries discard whole chunks without a
/// single branchy-insertion iteration.
pub fn ball_chunk(
    xs: &[f32],
    ys: &[f32],
    zs: &[f32],
    q: [f32; 3],
    r_sq: f32,
    thr: f32,
    out: &mut [f32],
) -> (u64, f32, u32) {
    assert_avx2();
    // SAFETY: AVX2 availability asserted above; all accesses stay in bounds.
    unsafe { ball_chunk_impl(xs, ys, zs, q, r_sq, thr, out) }
}

#[target_feature(enable = "avx2")]
unsafe fn ball_chunk_impl(
    xs: &[f32],
    ys: &[f32],
    zs: &[f32],
    q: [f32; 3],
    r_sq: f32,
    thr: f32,
    out: &mut [f32],
) -> (u64, f32, u32) {
    let len = xs.len();
    debug_assert!(len <= 64, "ball_chunk mask is 64 lanes wide");
    let qx = _mm256_set1_ps(q[0]);
    let qy = _mm256_set1_ps(q[1]);
    let qz = _mm256_set1_ps(q[2]);
    let rv = _mm256_set1_ps(r_sq);
    let tv = _mm256_set1_ps(thr);
    let inf = _mm256_set1_ps(f32::INFINITY);
    let mut mask = 0u64;
    let mut vmin = inf;
    let mut i = 0;
    while i + LANES <= len {
        let x = _mm256_loadu_ps(xs.as_ptr().add(i));
        let y = _mm256_loadu_ps(ys.as_ptr().add(i));
        let z = _mm256_loadu_ps(zs.as_ptr().add(i));
        let nd = dist8(x, y, z, qx, qy, qz);
        _mm256_storeu_ps(out.as_mut_ptr().add(i), nd);
        // Ordered, non-signaling compares: NaN lanes never hit either test.
        let le = _mm256_cmp_ps::<_CMP_LE_OQ>(nd, rv);
        let lt = _mm256_cmp_ps::<_CMP_NGE_UQ>(nd, tv);
        let keep = _mm256_and_ps(le, lt);
        mask |= u64::from(_mm256_movemask_ps(keep) as u8) << i;
        vmin = _mm256_min_ps(nd, vmin);
        i += LANES;
    }
    let rem = len - i;
    if rem > 0 {
        let m = tail_mask(rem);
        let x = _mm256_maskload_ps(xs.as_ptr().add(i), m);
        let y = _mm256_maskload_ps(ys.as_ptr().add(i), m);
        let z = _mm256_maskload_ps(zs.as_ptr().add(i), m);
        let nd = dist8(x, y, z, qx, qy, qz);
        _mm256_maskstore_ps(out.as_mut_ptr().add(i), m, nd);
        let le = _mm256_cmp_ps::<_CMP_LE_OQ>(nd, rv);
        let lt = _mm256_cmp_ps::<_CMP_NGE_UQ>(nd, tv);
        let keep = _mm256_and_ps(le, lt);
        let bits = (_mm256_movemask_ps(keep) as u32) & ((1u32 << rem) - 1);
        mask |= u64::from(bits) << i;
        // Inactive lanes hold garbage distances of zeroed loads; blend them
        // to +inf so they cannot influence the minimum.
        let ndm = _mm256_blendv_ps(inf, nd, _mm256_castsi256_ps(m));
        vmin = _mm256_min_ps(ndm, vmin);
    }
    // NaN-free horizontal min (NaN lanes never entered `vmin`), then rescan
    // the stored distances for the first occurrence.
    let mut lanes = [0.0f32; LANES];
    _mm256_storeu_ps(lanes.as_mut_ptr(), vmin);
    let mut min = f32::INFINITY;
    for &v in &lanes {
        if v < min {
            min = v;
        }
    }
    let lane = if min < f32::INFINITY {
        let mut l = 0;
        while out[l] != min {
            l += 1;
        }
        l as u32
    } else {
        u32::MAX
    };
    (mask, min, lane)
}

//! SoA kernel backend: chunked, auto-vectorizable loops — the software
//! analogue of the RSPU distance units, and the portable fast path of the
//! dispatch layer (also the fallback wherever AVX2 is unavailable).
//!
//! Work proceeds in chunks of [`CHUNK`] lanes; within a chunk, distance
//! evaluation is a straight-line loop over the slices built from select
//! idioms (`if a < b { a } else { b }`) the compiler lowers to vector
//! min/max. Branchy selection consumes the chunk's results afterwards.

use super::CHUNK;

/// Chunked squared distances; see [`kernels::distances_sq`](super::distances_sq).
pub fn distances_sq(xs: &[f32], ys: &[f32], zs: &[f32], q: [f32; 3], out: &mut [f32]) {
    let n = xs.len();
    let mut base = 0;
    while base < n {
        let len = CHUNK.min(n - base);
        let (xs, ys, zs) = (&xs[base..base + len], &ys[base..base + len], &zs[base..base + len]);
        let out = &mut out[base..base + len];
        for j in 0..len {
            let dx = xs[j] - q[0];
            let dy = ys[j] - q[1];
            let dz = zs[j] - q[2];
            out[j] = dx * dx + dy * dy + dz * dz;
        }
        base += len;
    }
}

/// Fused tile of per-query distance rows + threshold prefilter masks over
/// one chunk; see the dispatching `knn_prefilter_tile` call site in
/// [`kernels`](super) for the contract (`out` rows strided by [`CHUNK`];
/// mask bit `j` set iff `!(row[j] >= threshold)`, so a NaN threshold keeps
/// every lane).
pub fn knn_prefilter_tile(
    xs: &[f32],
    ys: &[f32],
    zs: &[f32],
    queries: &[[f32; 3]],
    thresholds: &[f32],
    out: &mut [f32],
    masks: &mut [u64],
) {
    for (qi, q) in queries.iter().enumerate() {
        let thr = thresholds[qi];
        let row = &mut out[qi * CHUNK..qi * CHUNK + xs.len()];
        distances_sq(xs, ys, zs, *q, row);
        // Branch-free mask build over the precomputed row; the `!(d >= thr)`
        // form keeps NaN distances (and everything under a NaN threshold)
        // on the insert path, like the reference's `>=`-skip.
        let mut mask = 0u64;
        for (j, &d) in row.iter().enumerate() {
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            {
                mask |= u64::from(!(d >= thr)) << j;
            }
        }
        masks[qi] = mask;
    }
}

/// Fused chunked relax + argmax; see
/// [`kernels::fps_relax_argmax`](super::fps_relax_argmax).
///
/// Per chunk this computes squared distances branch-free, lowers `dist`
/// with `f32::min` (equivalent to the reference's `if d < dist[i]` update,
/// including for NaN distances, which leave `dist` unchanged), then scans
/// the chunk for the running argmax.
pub fn fps_relax_argmax(
    xs: &[f32],
    ys: &[f32],
    zs: &[f32],
    q: [f32; 3],
    dist: &mut [f32],
) -> usize {
    let n = xs.len();

    // Fused chunked pass (branch-free, vectorizable): distances, the
    // min-relaxation, and per-chunk maxima in one stream over the data.
    // The select idioms `if nd < cur { nd } else { cur }` / `if v > m { v }
    // else { m }` compile to vector min/max; the min keeps the old value
    // for NaN distances, matching the reference's `if d < dist[i]` update.
    // LANES independent running maxima break the floating-point dependency
    // chain a single running max would create, and the fixed-size lane
    // arrays (`chunks_exact` + `try_into`) eliminate bounds checks from
    // the inner loop.
    const LANES: usize = 8;
    let mut cmax = f32::NEG_INFINITY;
    let mut cmax_chunk_base = 0usize;
    let mut base = 0usize;
    while base < n {
        let end = (base + CHUNK).min(n);
        let (xb, yb, zb) = (&xs[base..end], &ys[base..end], &zs[base..end]);
        let db = &mut dist[base..end];
        let mut acc = [f32::NEG_INFINITY; LANES];
        let mut d_it = db.chunks_exact_mut(LANES);
        let mut x_it = xb.chunks_exact(LANES);
        let mut y_it = yb.chunks_exact(LANES);
        let mut z_it = zb.chunks_exact(LANES);
        for d8 in d_it.by_ref() {
            let d8: &mut [f32; LANES] = d8.try_into().expect("exact chunk");
            let x8: &[f32; LANES] = x_it.next().expect("same length").try_into().unwrap();
            let y8: &[f32; LANES] = y_it.next().expect("same length").try_into().unwrap();
            let z8: &[f32; LANES] = z_it.next().expect("same length").try_into().unwrap();
            for l in 0..LANES {
                let dx = x8[l] - q[0];
                let dy = y8[l] - q[1];
                let dz = z8[l] - q[2];
                let nd = dx * dx + dy * dy + dz * dz;
                let cur = d8[l];
                let v = if nd < cur { nd } else { cur };
                d8[l] = v;
                acc[l] = if v > acc[l] { v } else { acc[l] };
            }
        }
        let mut cm = f32::NEG_INFINITY;
        let tail = d_it.into_remainder();
        let (xt, yt, zt) = (x_it.remainder(), y_it.remainder(), z_it.remainder());
        for (l, cur) in tail.iter_mut().enumerate() {
            let dx = xt[l] - q[0];
            let dy = yt[l] - q[1];
            let dz = zt[l] - q[2];
            let nd = dx * dx + dy * dy + dz * dz;
            let v = if nd < *cur { nd } else { *cur };
            *cur = v;
            cm = if v > cm { v } else { cm };
        }
        for &m in &acc {
            cm = if m > cm { m } else { cm };
        }
        // Strict `>`: only a chunk that *improves* the global maximum is
        // recorded, so `cmax_chunk_base` ends on the first chunk attaining
        // it (later tying chunks don't displace it).
        if cm > cmax {
            cmax = cm;
            cmax_chunk_base = base;
        }
        base = end;
    }

    // Selection: the recorded chunk contains the first occurrence of the
    // global maximum (distances are never -0.0, so value equality is
    // exact); a short in-chunk scan finds it — the same winner as the
    // reference's strict `>` running argmax (first maximum wins on ties).
    let mut best = cmax_chunk_base;
    while dist[best] != cmax {
        best += 1;
    }
    best
}

/// Fused chunked relax + pin + argmax; see
/// [`kernels::fps_relax_argmax_pin`](super::fps_relax_argmax_pin).
///
/// The chunk structure is exactly [`fps_relax_argmax`]'s, with one extra
/// select per lane: `if nd <= r_sq { -∞ } else { v }` pins in-radius
/// candidates in the same branch-free stream (the compiler lowers it to a
/// vector compare + blend). The argmax machinery is unchanged; when every
/// candidate ends pinned the global maximum is `-∞` and the first-chunk
/// rescan lands on index 0, matching the scalar backend's strict-`>` scan.
pub fn fps_relax_argmax_pin(
    xs: &[f32],
    ys: &[f32],
    zs: &[f32],
    q: [f32; 3],
    r_sq: f32,
    dist: &mut [f32],
) -> usize {
    let n = xs.len();
    const LANES: usize = 8;
    let mut cmax = f32::NEG_INFINITY;
    let mut cmax_chunk_base = 0usize;
    let mut base = 0usize;
    while base < n {
        let end = (base + CHUNK).min(n);
        let (xb, yb, zb) = (&xs[base..end], &ys[base..end], &zs[base..end]);
        let db = &mut dist[base..end];
        let mut acc = [f32::NEG_INFINITY; LANES];
        let mut d_it = db.chunks_exact_mut(LANES);
        let mut x_it = xb.chunks_exact(LANES);
        let mut y_it = yb.chunks_exact(LANES);
        let mut z_it = zb.chunks_exact(LANES);
        for d8 in d_it.by_ref() {
            let d8: &mut [f32; LANES] = d8.try_into().expect("exact chunk");
            let x8: &[f32; LANES] = x_it.next().expect("same length").try_into().unwrap();
            let y8: &[f32; LANES] = y_it.next().expect("same length").try_into().unwrap();
            let z8: &[f32; LANES] = z_it.next().expect("same length").try_into().unwrap();
            for l in 0..LANES {
                let dx = x8[l] - q[0];
                let dy = y8[l] - q[1];
                let dz = z8[l] - q[2];
                let nd = dx * dx + dy * dy + dz * dz;
                let cur = d8[l];
                let v = if nd < cur { nd } else { cur };
                let v = if nd <= r_sq { f32::NEG_INFINITY } else { v };
                d8[l] = v;
                acc[l] = if v > acc[l] { v } else { acc[l] };
            }
        }
        let mut cm = f32::NEG_INFINITY;
        let tail = d_it.into_remainder();
        let (xt, yt, zt) = (x_it.remainder(), y_it.remainder(), z_it.remainder());
        for (l, cur) in tail.iter_mut().enumerate() {
            let dx = xt[l] - q[0];
            let dy = yt[l] - q[1];
            let dz = zt[l] - q[2];
            let nd = dx * dx + dy * dy + dz * dz;
            let v = if nd < *cur { nd } else { *cur };
            let v = if nd <= r_sq { f32::NEG_INFINITY } else { v };
            *cur = v;
            cm = if v > cm { v } else { cm };
        }
        for &m in &acc {
            cm = if m > cm { m } else { cm };
        }
        if cm > cmax {
            cmax = cm;
            cmax_chunk_base = base;
        }
        base = end;
    }
    let mut best = cmax_chunk_base;
    while dist[best] != cmax {
        best += 1;
    }
    best
}

/// Segmented max-aggregation over neighbor index lists; see
/// [`kernels::segmented_max_into`](super::segmented_max_into) for the
/// contract. The accumulator row stays hot while each neighbor's feature
/// row streams through the select idiom `if v > acc { v } else { acc }`,
/// which the compiler lowers to vector max (NaN feature values never
/// overwrite the accumulator, matching the scalar backend's strict-`>`
/// update bit for bit).
pub fn segmented_max(
    features: &[f32],
    channels: usize,
    indices: &[usize],
    counts: &[usize],
    num: usize,
    out: &mut [f32],
) {
    for (c, &count) in counts.iter().enumerate() {
        let orow = &mut out[c * channels..c * channels + channels];
        orow.fill(f32::NEG_INFINITY);
        for &i in &indices[c * num..c * num + count] {
            let frow = &features[i * channels..i * channels + channels];
            for (acc, &v) in orow.iter_mut().zip(frow) {
                *acc = if v > *acc { v } else { *acc };
            }
        }
    }
}

/// Tiled form of [`ball_chunk`]: one call scores every query of the tile
/// against the chunk (rows of `out` strided by [`CHUNK`]), writing
/// per-query hit masks and chunk minima. See the dispatching
/// `ball_prefilter_tile` call site in [`kernels`](super) for the contract.
/// Per-query `mins` hold the chunk's minimum distance only; the caller
/// locates the first-occurrence lane lazily (and only when the chunk
/// improves the running nearest) by rescanning the stored row.
#[allow(clippy::too_many_arguments)]
pub fn ball_prefilter_tile(
    xs: &[f32],
    ys: &[f32],
    zs: &[f32],
    queries: &[[f32; 3]],
    r_sq: f32,
    thresholds: &[f32],
    out: &mut [f32],
    masks: &mut [u64],
    mins: &mut [f32],
) {
    for (qi, q) in queries.iter().enumerate() {
        let row = &mut out[qi * CHUNK..qi * CHUNK + xs.len()];
        let (mask, min, _lane) = ball_chunk(xs, ys, zs, *q, r_sq, thresholds[qi], row);
        masks[qi] = mask;
        mins[qi] = min;
    }
}

/// Fused distance + radius-compare + acceptance-prefilter chunk; the
/// contract is documented on the dispatching wrapper in [`kernels`](super)
/// (`ball_chunk_with`).
///
/// Distances are computed in the branch-free chunked form, the hit mask —
/// in-radius *and* strictly under the acceptance threshold — is
/// accumulated with a branch-free shift-or, and only the first-minimum
/// tracking carries a (well-predicted) branch.
pub fn ball_chunk(
    xs: &[f32],
    ys: &[f32],
    zs: &[f32],
    q: [f32; 3],
    r_sq: f32,
    thr: f32,
    out: &mut [f32],
) -> (u64, f32, u32) {
    distances_sq(xs, ys, zs, q, out);
    let mut mask = 0u64;
    let mut min = f32::INFINITY;
    let mut lane = u32::MAX;
    for (j, &d) in out.iter().enumerate() {
        // `!(d >= thr)`: a NaN threshold (buffer still filling) keeps every
        // in-radius lane, +inf distances included.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        {
            mask |= u64::from(d <= r_sq && !(d >= thr)) << j;
        }
        if d < min {
            min = d;
            lane = j as u32;
        }
    }
    (mask, min, lane)
}

//! Basic 3D point and axis types used throughout the workspace.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Div, Index, Mul, Sub};

/// One of the three spatial axes of a point cloud.
///
/// Fractal partitioning cycles over the axes (`x → y → z → x → …`) between
/// iterations (Alg. 1, row 4 of the paper), so [`Axis::next`] implements the
/// `d mod 3` cycling rule.
///
/// # Examples
///
/// ```
/// use fractalcloud_pointcloud::Axis;
///
/// assert_eq!(Axis::X.next(), Axis::Y);
/// assert_eq!(Axis::Z.next(), Axis::X);
/// assert_eq!(Axis::from_depth(4), Axis::Y);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Axis {
    /// The x axis (index 0).
    X,
    /// The y axis (index 1).
    Y,
    /// The z axis (index 2).
    Z,
}

impl Axis {
    /// All axes in canonical order.
    pub const ALL: [Axis; 3] = [Axis::X, Axis::Y, Axis::Z];

    /// Returns the axis following `self` in the x→y→z→x cycle.
    #[inline]
    pub fn next(self) -> Axis {
        match self {
            Axis::X => Axis::Y,
            Axis::Y => Axis::Z,
            Axis::Z => Axis::X,
        }
    }

    /// Returns the axis used at recursion depth `depth` when cycling from x.
    #[inline]
    pub fn from_depth(depth: usize) -> Axis {
        match depth % 3 {
            0 => Axis::X,
            1 => Axis::Y,
            _ => Axis::Z,
        }
    }

    /// Returns the 0-based index of the axis.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Axis::X => 0,
            Axis::Y => 1,
            Axis::Z => 2,
        }
    }
}

impl From<Axis> for usize {
    fn from(a: Axis) -> usize {
        a.index()
    }
}

impl TryFrom<usize> for Axis {
    type Error = InvalidAxisError;

    fn try_from(v: usize) -> Result<Axis, InvalidAxisError> {
        match v {
            0 => Ok(Axis::X),
            1 => Ok(Axis::Y),
            2 => Ok(Axis::Z),
            other => Err(InvalidAxisError(other)),
        }
    }
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Axis::X => write!(f, "x"),
            Axis::Y => write!(f, "y"),
            Axis::Z => write!(f, "z"),
        }
    }
}

/// Error returned when converting an out-of-range index into an [`Axis`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidAxisError(pub usize);

impl fmt::Display for InvalidAxisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid axis index {}, expected 0, 1 or 2", self.0)
    }
}

impl std::error::Error for InvalidAxisError {}

/// A 3D point with `f32` coordinates.
///
/// Point clouds in this workspace use 16-bit or 32-bit arithmetic in the
/// hardware model; the software reference uses `f32` throughout, matching the
/// precision the paper evaluates against (FP16 compute with FP32 reference).
///
/// # Examples
///
/// ```
/// use fractalcloud_pointcloud::Point3;
///
/// let a = Point3::new(0.0, 3.0, 4.0);
/// let b = Point3::ORIGIN;
/// assert_eq!(a.distance(b), 5.0);
/// assert_eq!(a.distance_sq(b), 25.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point3 {
    /// x coordinate.
    pub x: f32,
    /// y coordinate.
    pub y: f32,
    /// z coordinate.
    pub z: f32,
}

impl Point3 {
    /// The origin `(0, 0, 0)`.
    pub const ORIGIN: Point3 = Point3 { x: 0.0, y: 0.0, z: 0.0 };

    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f32, y: f32, z: f32) -> Point3 {
        Point3 { x, y, z }
    }

    /// Creates a point with all coordinates equal to `v`.
    #[inline]
    pub const fn splat(v: f32) -> Point3 {
        Point3 { x: v, y: v, z: v }
    }

    /// Returns the coordinate along `axis`.
    #[inline]
    pub fn coord(&self, axis: Axis) -> f32 {
        match axis {
            Axis::X => self.x,
            Axis::Y => self.y,
            Axis::Z => self.z,
        }
    }

    /// Sets the coordinate along `axis`.
    #[inline]
    pub fn set_coord(&mut self, axis: Axis, v: f32) {
        match axis {
            Axis::X => self.x = v,
            Axis::Y => self.y = v,
            Axis::Z => self.z = v,
        }
    }

    /// Squared Euclidean distance to `other`.
    ///
    /// This is the quantity the RSPU distance-compute unit evaluates; the
    /// square root is never needed for FPS / BQ / KNN comparisons.
    #[inline]
    pub fn distance_sq(&self, other: Point3) -> f32 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        let dz = self.z - other.z;
        dx * dx + dy * dy + dz * dz
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(&self, other: Point3) -> f32 {
        self.distance_sq(other).sqrt()
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(&self, other: Point3) -> Point3 {
        Point3::new(self.x.min(other.x), self.y.min(other.y), self.z.min(other.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(&self, other: Point3) -> Point3 {
        Point3::new(self.x.max(other.x), self.y.max(other.y), self.z.max(other.z))
    }

    /// Squared length of the vector from the origin.
    #[inline]
    pub fn norm_sq(&self) -> f32 {
        self.x * self.x + self.y * self.y + self.z * self.z
    }

    /// Length of the vector from the origin.
    #[inline]
    pub fn norm(&self) -> f32 {
        self.norm_sq().sqrt()
    }

    /// Returns the coordinates as an array `[x, y, z]`.
    #[inline]
    pub fn to_array(self) -> [f32; 3] {
        [self.x, self.y, self.z]
    }

    /// True if every coordinate is finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

impl From<[f32; 3]> for Point3 {
    fn from(a: [f32; 3]) -> Point3 {
        Point3::new(a[0], a[1], a[2])
    }
}

impl From<Point3> for [f32; 3] {
    fn from(p: Point3) -> [f32; 3] {
        p.to_array()
    }
}

impl Index<Axis> for Point3 {
    type Output = f32;

    fn index(&self, axis: Axis) -> &f32 {
        match axis {
            Axis::X => &self.x,
            Axis::Y => &self.y,
            Axis::Z => &self.z,
        }
    }
}

impl Add for Point3 {
    type Output = Point3;

    fn add(self, rhs: Point3) -> Point3 {
        Point3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl Sub for Point3 {
    type Output = Point3;

    fn sub(self, rhs: Point3) -> Point3 {
        Point3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl Mul<f32> for Point3 {
    type Output = Point3;

    fn mul(self, s: f32) -> Point3 {
        Point3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Div<f32> for Point3 {
    type Output = Point3;

    fn div(self, s: f32) -> Point3 {
        Point3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl fmt::Display for Point3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_cycles_in_xyz_order() {
        assert_eq!(Axis::X.next(), Axis::Y);
        assert_eq!(Axis::Y.next(), Axis::Z);
        assert_eq!(Axis::Z.next(), Axis::X);
    }

    #[test]
    fn axis_from_depth_matches_mod3_rule() {
        // Alg. 1 row 4: dim <- d mod 3.
        for d in 0..12 {
            let expected = [Axis::X, Axis::Y, Axis::Z][d % 3];
            assert_eq!(Axis::from_depth(d), expected);
        }
    }

    #[test]
    fn axis_round_trips_through_usize() {
        for a in Axis::ALL {
            assert_eq!(Axis::try_from(a.index()).unwrap(), a);
        }
        assert!(Axis::try_from(3).is_err());
    }

    #[test]
    fn invalid_axis_error_displays_index() {
        let e = Axis::try_from(7).unwrap_err();
        assert!(e.to_string().contains('7'));
    }

    #[test]
    fn distance_is_euclidean() {
        let a = Point3::new(1.0, 2.0, 3.0);
        let b = Point3::new(4.0, 6.0, 3.0);
        assert_eq!(a.distance_sq(b), 25.0);
        assert_eq!(a.distance(b), 5.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Point3::new(-1.5, 0.25, 9.0);
        let b = Point3::new(2.0, -3.0, 4.5);
        assert_eq!(a.distance_sq(b), b.distance_sq(a));
    }

    #[test]
    fn coord_and_index_agree() {
        let p = Point3::new(10.0, 20.0, 30.0);
        for a in Axis::ALL {
            assert_eq!(p.coord(a), p[a]);
        }
        assert_eq!(p[Axis::Y], 20.0);
    }

    #[test]
    fn set_coord_updates_only_one_axis() {
        let mut p = Point3::splat(1.0);
        p.set_coord(Axis::Z, 5.0);
        assert_eq!(p, Point3::new(1.0, 1.0, 5.0));
    }

    #[test]
    fn component_wise_min_max() {
        let a = Point3::new(1.0, 5.0, -2.0);
        let b = Point3::new(3.0, 2.0, -1.0);
        assert_eq!(a.min(b), Point3::new(1.0, 2.0, -2.0));
        assert_eq!(a.max(b), Point3::new(3.0, 5.0, -1.0));
    }

    #[test]
    fn arithmetic_operators() {
        let a = Point3::new(1.0, 2.0, 3.0);
        let b = Point3::new(0.5, 0.5, 0.5);
        assert_eq!(a + b, Point3::new(1.5, 2.5, 3.5));
        assert_eq!(a - b, Point3::new(0.5, 1.5, 2.5));
        assert_eq!(a * 2.0, Point3::new(2.0, 4.0, 6.0));
        assert_eq!(a / 2.0, Point3::new(0.5, 1.0, 1.5));
    }

    #[test]
    fn array_round_trip() {
        let p = Point3::new(1.0, 2.0, 3.0);
        let arr: [f32; 3] = p.into();
        assert_eq!(Point3::from(arr), p);
    }

    #[test]
    fn is_finite_rejects_nan_and_inf() {
        assert!(Point3::new(1.0, 2.0, 3.0).is_finite());
        assert!(!Point3::new(f32::NAN, 0.0, 0.0).is_finite());
        assert!(!Point3::new(0.0, f32::INFINITY, 0.0).is_finite());
    }
}

//! `OpCounters` accuracy: the kernel path's per-chunk/analytic counter
//! accumulation must equal the scalar references' per-element counts
//! *exactly* — the accel cost models consume these numbers.
//!
//! Sizes straddle the kernel chunk boundaries ([`kernels::CHUNK`] and the
//! 8-lane stride) so partial chunks, exact chunks, and tails are all
//! exercised.

use fractalcloud_pointcloud::generate::{scene_cloud, uniform_cube, SceneConfig};
use fractalcloud_pointcloud::kernels;
use fractalcloud_pointcloud::ops::{
    ball_query, farthest_point_sample, interpolate_features, k_nearest_neighbors, reference,
};
use fractalcloud_pointcloud::{Point3, PointCloud};

/// Cloud sizes around every boundary the kernels care about.
fn boundary_sizes() -> Vec<usize> {
    let c = kernels::CHUNK;
    vec![1, 2, 7, 8, 9, c - 1, c, c + 1, 2 * c + 3, 3 * c, 200, 1000]
}

fn featured(cloud: PointCloud, channels: usize) -> PointCloud {
    let n = cloud.len();
    let feats: Vec<f32> = (0..n * channels).map(|i| (i % 13) as f32).collect();
    let pts: Vec<Point3> = cloud.iter().collect();
    PointCloud::from_points_features(pts, feats, channels).unwrap()
}

#[test]
fn fps_counters_match_reference_exactly() {
    for n in boundary_sizes() {
        let cloud = uniform_cube(n, 7);
        for m in [1, (n / 3).max(1), n] {
            let kernel = farthest_point_sample(&cloud, m, 0).unwrap();
            let scalar = reference::farthest_point_sample(&cloud, m, 0).unwrap();
            assert_eq!(kernel.counters, scalar.counters, "fps n={n} m={m}");
            assert_eq!(kernel.indices, scalar.indices, "fps n={n} m={m}");
        }
    }
}

#[test]
fn knn_counters_match_reference_exactly() {
    for n in boundary_sizes() {
        let cloud = uniform_cube(n, 11);
        let centers: Vec<Point3> = cloud.iter().step_by(3).take(6).collect();
        for k in [1, (n / 2).max(1), n] {
            let kernel = k_nearest_neighbors(&cloud, &centers, k).unwrap();
            let scalar = reference::k_nearest_neighbors(&cloud, &centers, k).unwrap();
            assert_eq!(kernel.counters, scalar.counters, "knn n={n} k={k}");
        }
    }
}

#[test]
fn ball_query_counters_match_reference_exactly() {
    for n in boundary_sizes() {
        let cloud = uniform_cube(n, 23);
        let centers: Vec<Point3> = cloud.iter().step_by(2).take(8).collect();
        for (radius, num) in [(0.05, 4), (0.4, 8), (2.0, 16)] {
            let kernel = ball_query(&cloud, &centers, radius, num).unwrap();
            let scalar = reference::ball_query(&cloud, &centers, radius, num).unwrap();
            assert_eq!(kernel.counters, scalar.counters, "bq n={n} r={radius} num={num}");
            assert_eq!(kernel.found, scalar.found, "bq n={n} r={radius} num={num}");
        }
    }
}

#[test]
fn interpolation_counters_match_reference_exactly() {
    for n in boundary_sizes() {
        let cloud = featured(uniform_cube(n, 31), 3);
        let targets: Vec<Point3> = cloud.iter().take(5).map(|p| p + Point3::splat(0.003)).collect();
        let k = 3.min(n);
        let kernel = interpolate_features(&cloud, &targets, k).unwrap();
        let scalar = reference::interpolate_features(&cloud, &targets, k).unwrap();
        assert_eq!(kernel.counters, scalar.counters, "interp n={n}");
        assert_eq!(kernel.features, scalar.features, "interp n={n}");
    }
}

#[test]
fn counters_match_on_realistic_scene_scales() {
    // A denser end-to-end spot check on scene-statistics data.
    let cloud = scene_cloud(&SceneConfig::default(), 2048, 5);
    let kernel = farthest_point_sample(&cloud, 512, 0).unwrap();
    let scalar = reference::farthest_point_sample(&cloud, 512, 0).unwrap();
    assert_eq!(kernel.counters, scalar.counters);

    let centers: Vec<Point3> = kernel.indices.iter().take(64).map(|&i| cloud.point(i)).collect();
    let kq = ball_query(&cloud, &centers, 0.4, 16).unwrap();
    let sq = reference::ball_query(&cloud, &centers, 0.4, 16).unwrap();
    assert_eq!(kq.counters, sq.counters);
    assert_eq!(kq.indices, sq.indices);

    let kk = k_nearest_neighbors(&cloud, &centers, 9).unwrap();
    let sk = reference::k_nearest_neighbors(&cloud, &centers, 9).unwrap();
    assert_eq!(kk.counters, sk.counters);
    assert_eq!(kk.indices, sk.indices);
}

//! Cross-backend equivalence: every kernel backend (`Scalar`, `Soa`,
//! `Avx2`) must produce bit-identical indices, distances, features, and
//! `OpCounters` for fps/knn/ball-query/interpolate — including the
//! batched-query tiling edge cases (query counts not divisible by the
//! tile, `k` exceeding the candidate count, empty balls, empty clouds).
//!
//! Backends unavailable on the host resolve to `Soa`, so the suite stays
//! portable (the comparisons degenerate to Soa-vs-Soa there).

use fractalcloud_pointcloud::kernels::{self, Backend, QUERY_TILE};
use fractalcloud_pointcloud::ops::{
    ball_query, farthest_point_sample, interpolate_features, k_nearest_neighbors, reference,
};
use fractalcloud_pointcloud::{Point3, PointCloud};
use proptest::prelude::*;

fn arb_points(max_n: usize) -> impl Strategy<Value = Vec<Point3>> {
    proptest::collection::vec((-50.0f32..50.0, -50.0f32..50.0, -20.0f32..20.0), 2..max_n)
        .prop_map(|v| v.into_iter().map(|(x, y, z)| Point3::new(x, y, z)).collect())
}

/// Runs `f` once per backend and asserts every result equals the first
/// (scalar) run's.
fn assert_all_backends_equal<T: PartialEq + std::fmt::Debug>(f: impl Fn() -> T) {
    let baseline = kernels::with_backend(Backend::Scalar, &f);
    for b in [Backend::Soa, Backend::Avx2] {
        let got = kernels::with_backend(b, &f);
        assert_eq!(got, baseline, "backend {} diverged from scalar", b.name());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// FPS: identical indices and counters on every backend.
    #[test]
    fn fps_identical_across_backends(pts in arb_points(150), m_frac in 0.05f64..0.95) {
        let cloud = PointCloud::from_points(pts);
        let m = (((cloud.len() as f64) * m_frac) as usize).max(1);
        assert_all_backends_equal(|| {
            let r = farthest_point_sample(&cloud, m, 0).unwrap();
            (r.indices, r.counters)
        });
    }

    /// KNN: identical rows, distances, and counters (insertion costs
    /// included) on every backend, and equal to the scalar reference. The
    /// center count ranges over values straddling QUERY_TILE so partial
    /// tiles are exercised.
    #[test]
    fn knn_identical_across_backends(
        pts in arb_points(150),
        k in 1usize..12,
        centers_n in 1usize..(2 * QUERY_TILE + 3),
    ) {
        let cloud = PointCloud::from_points(pts);
        let k = k.min(cloud.len());
        let centers: Vec<Point3> =
            (0..centers_n).map(|i| cloud.point((i * 3) % cloud.len())).collect();
        assert_all_backends_equal(|| {
            let r = k_nearest_neighbors(&cloud, &centers, k).unwrap();
            (r.indices, r.distances_sq, r.counters)
        });
        let scalar = reference::k_nearest_neighbors(&cloud, &centers, k).unwrap();
        let kernel = k_nearest_neighbors(&cloud, &centers, k).unwrap();
        prop_assert_eq!(kernel.indices, scalar.indices);
        prop_assert_eq!(kernel.distances_sq, scalar.distances_sq);
        prop_assert_eq!(kernel.counters, scalar.counters);
    }

    /// Ball query: identical rows (padding and nearest-fallback included),
    /// found counts, and counters on every backend and vs the reference.
    /// Small radii produce empty balls; the query count straddles the tile.
    #[test]
    fn ball_query_identical_across_backends(
        pts in arb_points(150),
        radius in 0.01f32..30.0,
        num in 1usize..10,
        centers_n in 1usize..(2 * QUERY_TILE + 3),
    ) {
        let cloud = PointCloud::from_points(pts);
        let centers: Vec<Point3> = (0..centers_n)
            .map(|i| cloud.point((i * 5) % cloud.len()) + Point3::splat(40.0)) // far out: empty balls
            .collect();
        assert_all_backends_equal(|| {
            let r = ball_query(&cloud, &centers, radius, num).unwrap();
            (r.indices, r.found, r.counters)
        });
        let scalar = reference::ball_query(&cloud, &centers, radius, num).unwrap();
        let kernel = ball_query(&cloud, &centers, radius, num).unwrap();
        prop_assert_eq!(kernel.indices, scalar.indices);
        prop_assert_eq!(kernel.found, scalar.found);
        prop_assert_eq!(kernel.counters, scalar.counters);
    }

    /// Interpolation: identical features and counters on every backend and
    /// vs the reference.
    #[test]
    fn interpolation_identical_across_backends(pts in arb_points(120), k in 1usize..6) {
        let n = pts.len();
        let k = k.min(n);
        let feats: Vec<f32> = (0..n * 2).map(|i| (i % 11) as f32).collect();
        let targets: Vec<Point3> =
            pts.iter().take(9).map(|p| *p + Point3::splat(0.01)).collect();
        let cloud = PointCloud::from_points_features(pts, feats, 2).unwrap();
        assert_all_backends_equal(|| {
            let r = interpolate_features(&cloud, &targets, k).unwrap();
            (r.features, r.counters)
        });
        let scalar = reference::interpolate_features(&cloud, &targets, k).unwrap();
        let kernel = interpolate_features(&cloud, &targets, k).unwrap();
        prop_assert_eq!(kernel.features, scalar.features);
        prop_assert_eq!(kernel.counters, scalar.counters);
    }

    /// Raw kernel layer: distances and the fused relax+argmax agree lane
    /// for lane across backends.
    #[test]
    fn kernel_primitives_identical_across_backends(pts in arb_points(200)) {
        let cloud = PointCloud::from_points(pts);
        let q = [0.3f32, -0.7, 1.1];
        assert_all_backends_equal(|| {
            let mut out = vec![0.0f32; cloud.len()];
            kernels::distances_sq(cloud.xs(), cloud.ys(), cloud.zs(), q, &mut out);
            out
        });
        assert_all_backends_equal(|| {
            let mut dist = vec![f32::INFINITY; cloud.len()];
            dist[0] = f32::NEG_INFINITY; // a pinned entry, as FPS produces
            let best =
                kernels::fps_relax_argmax(cloud.xs(), cloud.ys(), cloud.zs(), q, &mut dist);
            (best, dist)
        });
    }
}

#[test]
fn knn_query_count_not_divisible_by_tile() {
    // 2 * QUERY_TILE + 1 queries: two full tiles plus a ragged one.
    let cloud = fractalcloud_pointcloud::generate::uniform_cube(97, 11);
    let centers: Vec<Point3> = (0..2 * QUERY_TILE + 1).map(|i| cloud.point(i * 4)).collect();
    let reference = reference::k_nearest_neighbors(&cloud, &centers, 5).unwrap();
    for b in Backend::ALL {
        let got = kernels::with_backend(b, || k_nearest_neighbors(&cloud, &centers, 5).unwrap());
        assert_eq!(got.indices, reference.indices, "backend {}", b.name());
        assert_eq!(got.counters, reference.counters, "backend {}", b.name());
    }
}

#[test]
fn ball_query_empty_cloud_reports_sentinel_rows() {
    let empty = PointCloud::new();
    let centers = [Point3::ORIGIN, Point3::splat(1.0)];
    for b in Backend::ALL {
        let got = kernels::with_backend(b, || ball_query(&empty, &centers, 1.0, 3).unwrap());
        assert_eq!(got.indices, vec![usize::MAX; 6], "backend {}", b.name());
        assert_eq!(got.found, vec![0, 0]);
    }
}

#[test]
fn knn_k_equals_candidate_count() {
    // k == n: the top-k buffer never leaves phase 1.
    let cloud = fractalcloud_pointcloud::generate::uniform_cube(9, 3);
    let centers = [cloud.point(0)];
    let reference = reference::k_nearest_neighbors(&cloud, &centers, 9).unwrap();
    for b in Backend::ALL {
        let got = kernels::with_backend(b, || k_nearest_neighbors(&cloud, &centers, 9).unwrap());
        assert_eq!(got.indices, reference.indices, "backend {}", b.name());
        assert_eq!(got.distances_sq, reference.distances_sq, "backend {}", b.name());
    }
}

#[test]
fn env_override_names_resolve() {
    // The env var itself is read once per process (and may already be
    // cached), so only validate the parsing layer here.
    assert_eq!(Backend::from_name("scalar"), Some(Backend::Scalar));
    assert_eq!(Backend::from_name("SoA"), Some(Backend::Soa));
    assert_eq!(Backend::from_name("avx2"), Some(Backend::Avx2));
    assert_eq!(Backend::from_name("avx512"), None);
}

// --- Segmented max-aggregation (the Mesorasi delayed-aggregation core) ---

/// A feature value derived from `salt` and the flat position, with the
/// values that stress the max reduction's select idiom sprinkled in: NaN
/// must never overwrite the accumulator, signed-zero ties keep the
/// accumulator, and infinities must flow through untouched.
fn salted_feature(salt: usize, i: usize) -> f32 {
    match (salt + i) % 19 {
        0 => f32::NAN,
        1 => f32::NEG_INFINITY,
        2 => f32::INFINITY,
        3 => -0.0,
        4 => 0.0,
        k => ((salt * 73 + i * 37 + k) % 401) as f32 - 200.0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every backend reduces ragged random segments — empty balls
    /// (`count == 0`), duplicated indices, and strides past the row count
    /// (`num >= n`, the k ≥ n shape) included — bit-identically to a
    /// straight scalar reference reduction.
    #[test]
    fn segmented_max_bit_identical_across_backends(
        n in 1usize..40,
        channels in 1usize..14,
        num in 1usize..48,
        salt in 0usize..100_000,
    ) {
        let features: Vec<f32> =
            (0..n * channels).map(|i| salted_feature(salt, i)).collect();
        let counts: Vec<usize> =
            (0..salt % 8).map(|c| (salt * 7 + c * 13) % (num + 1)).collect();
        let indices: Vec<usize> =
            (0..counts.len() * num).map(|i| (i * 31 + salt) % n).collect();

        // Straight reference reduction with the branchy `if v > acc`
        // update — the contract every backend must hit bit-for-bit.
        let mut expect = vec![f32::NEG_INFINITY; counts.len() * channels];
        for (c, &count) in counts.iter().enumerate() {
            for &i in &indices[c * num..c * num + count] {
                for ch in 0..channels {
                    let v = features[i * channels + ch];
                    if v > expect[c * channels + ch] {
                        expect[c * channels + ch] = v;
                    }
                }
            }
        }
        let expect_bits: Vec<u32> = expect.iter().map(|x| x.to_bits()).collect();

        for b in Backend::ALL {
            let mut out = vec![f32::NAN; counts.len() * channels];
            kernels::segmented_max_into_with(b, &features, channels, &indices, &counts, num, &mut out);
            let got_bits: Vec<u32> = out.iter().map(|x| x.to_bits()).collect();
            prop_assert_eq!(&got_bits, &expect_bits);
        }
    }

    /// An empty segment (empty ball) comes back as a `-inf` row on every
    /// backend — never stale output or zeros.
    #[test]
    fn segmented_max_empty_segments_are_neg_infinity(
        channels in 1usize..10,
        num in 1usize..16,
        segments in 1usize..6,
    ) {
        let features = vec![1.0f32; 8 * channels];
        let counts = vec![0usize; segments];
        let indices = vec![0usize; segments * num];
        for b in Backend::ALL {
            let mut out = vec![0.0f32; segments * channels];
            kernels::segmented_max_into_with(b, &features, channels, &indices, &counts, num, &mut out);
            prop_assert!(
                out.iter().all(|&v| v == f32::NEG_INFINITY),
                "backend {} left non -inf rows for empty segments", b.name()
            );
        }
    }
}

//! Cross-backend equivalence: every kernel backend (`Scalar`, `Soa`,
//! `Avx2`) must produce bit-identical indices, distances, features, and
//! `OpCounters` for fps/knn/ball-query/interpolate — including the
//! batched-query tiling edge cases (query counts not divisible by the
//! tile, `k` exceeding the candidate count, empty balls, empty clouds).
//!
//! Backends unavailable on the host resolve to `Soa`, so the suite stays
//! portable (the comparisons degenerate to Soa-vs-Soa there).

use fractalcloud_pointcloud::kernels::{self, Backend, QUERY_TILE};
use fractalcloud_pointcloud::ops::{
    ball_query, farthest_point_sample, interpolate_features, k_nearest_neighbors, reference,
};
use fractalcloud_pointcloud::{Point3, PointCloud};
use proptest::prelude::*;

fn arb_points(max_n: usize) -> impl Strategy<Value = Vec<Point3>> {
    proptest::collection::vec((-50.0f32..50.0, -50.0f32..50.0, -20.0f32..20.0), 2..max_n)
        .prop_map(|v| v.into_iter().map(|(x, y, z)| Point3::new(x, y, z)).collect())
}

/// Runs `f` once per backend and asserts every result equals the first
/// (scalar) run's.
fn assert_all_backends_equal<T: PartialEq + std::fmt::Debug>(f: impl Fn() -> T) {
    let baseline = kernels::with_backend(Backend::Scalar, &f);
    for b in [Backend::Soa, Backend::Avx2] {
        let got = kernels::with_backend(b, &f);
        assert_eq!(got, baseline, "backend {} diverged from scalar", b.name());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// FPS: identical indices and counters on every backend.
    #[test]
    fn fps_identical_across_backends(pts in arb_points(150), m_frac in 0.05f64..0.95) {
        let cloud = PointCloud::from_points(pts);
        let m = (((cloud.len() as f64) * m_frac) as usize).max(1);
        assert_all_backends_equal(|| {
            let r = farthest_point_sample(&cloud, m, 0).unwrap();
            (r.indices, r.counters)
        });
    }

    /// KNN: identical rows, distances, and counters (insertion costs
    /// included) on every backend, and equal to the scalar reference. The
    /// center count ranges over values straddling QUERY_TILE so partial
    /// tiles are exercised.
    #[test]
    fn knn_identical_across_backends(
        pts in arb_points(150),
        k in 1usize..12,
        centers_n in 1usize..(2 * QUERY_TILE + 3),
    ) {
        let cloud = PointCloud::from_points(pts);
        let k = k.min(cloud.len());
        let centers: Vec<Point3> =
            (0..centers_n).map(|i| cloud.point((i * 3) % cloud.len())).collect();
        assert_all_backends_equal(|| {
            let r = k_nearest_neighbors(&cloud, &centers, k).unwrap();
            (r.indices, r.distances_sq, r.counters)
        });
        let scalar = reference::k_nearest_neighbors(&cloud, &centers, k).unwrap();
        let kernel = k_nearest_neighbors(&cloud, &centers, k).unwrap();
        prop_assert_eq!(kernel.indices, scalar.indices);
        prop_assert_eq!(kernel.distances_sq, scalar.distances_sq);
        prop_assert_eq!(kernel.counters, scalar.counters);
    }

    /// Ball query: identical rows (padding and nearest-fallback included),
    /// found counts, and counters on every backend and vs the reference.
    /// Small radii produce empty balls; the query count straddles the tile.
    #[test]
    fn ball_query_identical_across_backends(
        pts in arb_points(150),
        radius in 0.01f32..30.0,
        num in 1usize..10,
        centers_n in 1usize..(2 * QUERY_TILE + 3),
    ) {
        let cloud = PointCloud::from_points(pts);
        let centers: Vec<Point3> = (0..centers_n)
            .map(|i| cloud.point((i * 5) % cloud.len()) + Point3::splat(40.0)) // far out: empty balls
            .collect();
        assert_all_backends_equal(|| {
            let r = ball_query(&cloud, &centers, radius, num).unwrap();
            (r.indices, r.found, r.counters)
        });
        let scalar = reference::ball_query(&cloud, &centers, radius, num).unwrap();
        let kernel = ball_query(&cloud, &centers, radius, num).unwrap();
        prop_assert_eq!(kernel.indices, scalar.indices);
        prop_assert_eq!(kernel.found, scalar.found);
        prop_assert_eq!(kernel.counters, scalar.counters);
    }

    /// Interpolation: identical features and counters on every backend and
    /// vs the reference.
    #[test]
    fn interpolation_identical_across_backends(pts in arb_points(120), k in 1usize..6) {
        let n = pts.len();
        let k = k.min(n);
        let feats: Vec<f32> = (0..n * 2).map(|i| (i % 11) as f32).collect();
        let targets: Vec<Point3> =
            pts.iter().take(9).map(|p| *p + Point3::splat(0.01)).collect();
        let cloud = PointCloud::from_points_features(pts, feats, 2).unwrap();
        assert_all_backends_equal(|| {
            let r = interpolate_features(&cloud, &targets, k).unwrap();
            (r.features, r.counters)
        });
        let scalar = reference::interpolate_features(&cloud, &targets, k).unwrap();
        let kernel = interpolate_features(&cloud, &targets, k).unwrap();
        prop_assert_eq!(kernel.features, scalar.features);
        prop_assert_eq!(kernel.counters, scalar.counters);
    }

    /// Raw kernel layer: distances and the fused relax+argmax agree lane
    /// for lane across backends.
    #[test]
    fn kernel_primitives_identical_across_backends(pts in arb_points(200)) {
        let cloud = PointCloud::from_points(pts);
        let q = [0.3f32, -0.7, 1.1];
        assert_all_backends_equal(|| {
            let mut out = vec![0.0f32; cloud.len()];
            kernels::distances_sq(cloud.xs(), cloud.ys(), cloud.zs(), q, &mut out);
            out
        });
        assert_all_backends_equal(|| {
            let mut dist = vec![f32::INFINITY; cloud.len()];
            dist[0] = f32::NEG_INFINITY; // a pinned entry, as FPS produces
            let best =
                kernels::fps_relax_argmax(cloud.xs(), cloud.ys(), cloud.zs(), q, &mut dist);
            (best, dist)
        });
    }
}

#[test]
fn knn_query_count_not_divisible_by_tile() {
    // 2 * QUERY_TILE + 1 queries: two full tiles plus a ragged one.
    let cloud = fractalcloud_pointcloud::generate::uniform_cube(97, 11);
    let centers: Vec<Point3> = (0..2 * QUERY_TILE + 1).map(|i| cloud.point(i * 4)).collect();
    let reference = reference::k_nearest_neighbors(&cloud, &centers, 5).unwrap();
    for b in Backend::ALL {
        let got = kernels::with_backend(b, || k_nearest_neighbors(&cloud, &centers, 5).unwrap());
        assert_eq!(got.indices, reference.indices, "backend {}", b.name());
        assert_eq!(got.counters, reference.counters, "backend {}", b.name());
    }
}

#[test]
fn ball_query_empty_cloud_reports_sentinel_rows() {
    let empty = PointCloud::new();
    let centers = [Point3::ORIGIN, Point3::splat(1.0)];
    for b in Backend::ALL {
        let got = kernels::with_backend(b, || ball_query(&empty, &centers, 1.0, 3).unwrap());
        assert_eq!(got.indices, vec![usize::MAX; 6], "backend {}", b.name());
        assert_eq!(got.found, vec![0, 0]);
    }
}

#[test]
fn knn_k_equals_candidate_count() {
    // k == n: the top-k buffer never leaves phase 1.
    let cloud = fractalcloud_pointcloud::generate::uniform_cube(9, 3);
    let centers = [cloud.point(0)];
    let reference = reference::k_nearest_neighbors(&cloud, &centers, 9).unwrap();
    for b in Backend::ALL {
        let got = kernels::with_backend(b, || k_nearest_neighbors(&cloud, &centers, 9).unwrap());
        assert_eq!(got.indices, reference.indices, "backend {}", b.name());
        assert_eq!(got.distances_sq, reference.distances_sq, "backend {}", b.name());
    }
}

#[test]
fn env_override_names_resolve() {
    // The env var itself is read once per process (and may already be
    // cached), so only validate the parsing layer here.
    assert_eq!(Backend::from_name("scalar"), Some(Backend::Scalar));
    assert_eq!(Backend::from_name("SoA"), Some(Backend::Soa));
    assert_eq!(Backend::from_name("avx2"), Some(Backend::Avx2));
    assert_eq!(Backend::from_name("avx512"), None);
}

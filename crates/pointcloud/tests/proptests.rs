//! Property-based tests for the point-cloud substrate.

use fractalcloud_pointcloud::metrics::{covering_radius, feature_rmse, neighbor_recall};
use fractalcloud_pointcloud::ops::{
    ball_query, farthest_point_sample, gather_features, interpolate_features, k_nearest_neighbors,
    reference,
};
use fractalcloud_pointcloud::partition::{
    KdTreePartitioner, OctreePartitioner, Partitioner, UniformPartitioner,
};
use fractalcloud_pointcloud::{Aabb, Point3, PointCloud};
use proptest::prelude::*;

fn arb_points(max_n: usize) -> impl Strategy<Value = Vec<Point3>> {
    proptest::collection::vec((-50.0f32..50.0, -50.0f32..50.0, -20.0f32..20.0), 2..max_n)
        .prop_map(|v| v.into_iter().map(|(x, y, z)| Point3::new(x, y, z)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// AABB from points contains every input and has the minimal corners.
    #[test]
    fn aabb_is_tight(pts in arb_points(100)) {
        let b = Aabb::from_points(pts.iter().copied()).unwrap();
        for p in &pts {
            prop_assert!(b.contains(*p));
        }
        let min_x = pts.iter().map(|p| p.x).fold(f32::INFINITY, f32::min);
        prop_assert_eq!(b.min().x, min_x);
    }

    /// FPS returns unique indices and greedily maximizes the min distance.
    #[test]
    fn fps_unique_and_greedy(pts in arb_points(80), m_frac in 0.1f64..0.9) {
        let cloud = PointCloud::from_points(pts);
        let m = ((cloud.len() as f64 * m_frac) as usize).max(1);
        let fps = farthest_point_sample(&cloud, m, 0).unwrap();
        let mut sorted = fps.indices.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), m);
    }

    /// Covering radius never increases as more FPS samples are taken.
    #[test]
    fn fps_coverage_monotone(pts in arb_points(80)) {
        let cloud = PointCloud::from_points(pts);
        let n = cloud.len();
        let small = farthest_point_sample(&cloud, (n / 4).max(1), 0).unwrap();
        let large = farthest_point_sample(&cloud, (n / 2).max(1), 0).unwrap();
        prop_assert!(
            covering_radius(&cloud, &large.indices)
                <= covering_radius(&cloud, &small.indices) + 1e-6
        );
    }

    /// KNN with k = n returns every candidate exactly once per center.
    #[test]
    fn knn_full_k_is_a_permutation(pts in arb_points(40)) {
        let cloud = PointCloud::from_points(pts);
        let center = [cloud.point(0)];
        let knn = k_nearest_neighbors(&cloud, &center, cloud.len()).unwrap();
        let mut row = knn.row(0).to_vec();
        row.sort_unstable();
        prop_assert_eq!(row, (0..cloud.len()).collect::<Vec<_>>());
    }

    /// Ball query with an enormous radius equals KNN on the same k.
    #[test]
    fn ball_query_large_radius_matches_knn(pts in arb_points(60)) {
        let cloud = PointCloud::from_points(pts);
        let centers = [cloud.point(0), cloud.point(cloud.len() - 1)];
        let k = 4.min(cloud.len());
        let bq = ball_query(&cloud, &centers, 1e4, k).unwrap();
        let knn = k_nearest_neighbors(&cloud, &centers, k).unwrap();
        // Same neighbor sets (order may differ on exact ties).
        prop_assert_eq!(neighbor_recall(&knn.indices, &bq.indices, k), 1.0);
    }

    /// Gathering with identity indices reproduces the feature matrix.
    #[test]
    fn gather_identity_round_trip(pts in arb_points(50), c in 1usize..6) {
        let n = pts.len();
        let feats: Vec<f32> = (0..n * c).map(|i| i as f32).collect();
        let cloud = PointCloud::from_points_features(pts, feats.clone(), c).unwrap();
        let idx: Vec<usize> = (0..n).collect();
        let g = gather_features(&cloud, &idx, 1).unwrap();
        prop_assert_eq!(feature_rmse(&g.data, &feats), 0.0);
    }

    /// Interpolation output is a convex combination of source features.
    #[test]
    fn interpolation_is_convex(pts in arb_points(60)) {
        let n = pts.len();
        let feats: Vec<f32> = (0..n).map(|i| (i % 7) as f32).collect();
        let targets: Vec<Point3> = pts.iter().take(10).map(|p| *p + Point3::splat(0.01)).collect();
        let cloud = PointCloud::from_points_features(pts, feats, 1).unwrap();
        let out = interpolate_features(&cloud, &targets, 3.min(n)).unwrap();
        for v in &out.features {
            prop_assert!((-1e-4..=6.0001).contains(v), "value {v} out of hull");
        }
    }

    /// Every baseline partitioner's layout permutation is a permutation.
    #[test]
    fn layout_permutations_are_valid(pts in arb_points(120), th in 2usize..40) {
        let cloud = PointCloud::from_points(pts);
        for p in [
            UniformPartitioner::with_target_block_size(th).partition(&cloud).unwrap(),
            KdTreePartitioner::new(th).partition(&cloud).unwrap(),
            OctreePartitioner::new(th).partition(&cloud).unwrap(),
        ] {
            let mut perm = p.layout_permutation();
            prop_assert_eq!(perm.len(), cloud.len());
            perm.sort_unstable();
            prop_assert_eq!(perm, (0..cloud.len()).collect::<Vec<_>>());
            // Applying it must succeed.
            let mut c2 = cloud.clone();
            c2.apply_permutation(&p.layout_permutation()).unwrap();
        }
    }

    /// KD-tree leaves differ in size by at most one at every level for
    /// power-of-two inputs (strict balance).
    #[test]
    fn kdtree_strict_balance(exp in 5u32..9, th_exp in 2u32..4) {
        let n = 1usize << exp;
        let th = 1usize << th_exp;
        let cloud = fractalcloud_pointcloud::generate::uniform_cube(n, 7);
        let p = KdTreePartitioner::new(th).partition(&cloud).unwrap();
        let sizes: Vec<usize> = p.blocks.iter().map(|b| b.len()).collect();
        let min = sizes.iter().min().unwrap();
        let max = sizes.iter().max().unwrap();
        prop_assert!(max - min <= 1, "sizes {sizes:?}");
    }
}

// Equivalence of the chunked SoA kernel path against the retained scalar
// references: identical indices, distances, features, and counters.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Kernel FPS returns the reference's exact indices and counters.
    #[test]
    fn kernel_fps_equals_reference(pts in arb_points(150), m_frac in 0.05f64..0.95) {
        let cloud = PointCloud::from_points(pts);
        let m = (((cloud.len() as f64) * m_frac) as usize).max(1);
        let kernel = farthest_point_sample(&cloud, m, 0).unwrap();
        let scalar = reference::farthest_point_sample(&cloud, m, 0).unwrap();
        prop_assert_eq!(kernel.indices, scalar.indices);
        prop_assert_eq!(kernel.counters, scalar.counters);
    }

    /// Kernel KNN returns the reference's exact rows, distances, and
    /// counters (insertion costs included).
    #[test]
    fn kernel_knn_equals_reference(pts in arb_points(150), k in 1usize..12) {
        let cloud = PointCloud::from_points(pts);
        let k = k.min(cloud.len());
        let centers: Vec<Point3> = cloud.iter().step_by(7).take(12).collect();
        let kernel = k_nearest_neighbors(&cloud, &centers, k).unwrap();
        let scalar = reference::k_nearest_neighbors(&cloud, &centers, k).unwrap();
        prop_assert_eq!(kernel.indices, scalar.indices);
        prop_assert_eq!(kernel.distances_sq, scalar.distances_sq);
        prop_assert_eq!(kernel.counters, scalar.counters);
    }

    /// Kernel ball query returns the reference's exact rows (padding and
    /// nearest-fallback included) and counters.
    #[test]
    fn kernel_ball_query_equals_reference(
        pts in arb_points(150),
        radius in 0.1f32..30.0,
        num in 1usize..10,
    ) {
        let cloud = PointCloud::from_points(pts);
        let centers: Vec<Point3> = cloud.iter().step_by(5).take(10).collect();
        let kernel = ball_query(&cloud, &centers, radius, num).unwrap();
        let scalar = reference::ball_query(&cloud, &centers, radius, num).unwrap();
        prop_assert_eq!(kernel.indices, scalar.indices);
        prop_assert_eq!(kernel.found, scalar.found);
        prop_assert_eq!(kernel.counters, scalar.counters);
    }

    /// Kernel interpolation returns the reference's exact features and
    /// counters.
    #[test]
    fn kernel_interpolation_equals_reference(pts in arb_points(120), k in 1usize..6) {
        let n = pts.len();
        let k = k.min(n);
        let feats: Vec<f32> = (0..n * 2).map(|i| (i % 11) as f32).collect();
        let targets: Vec<Point3> =
            pts.iter().take(9).map(|p| *p + Point3::splat(0.01)).collect();
        let cloud = PointCloud::from_points_features(pts, feats, 2).unwrap();
        let kernel = interpolate_features(&cloud, &targets, k).unwrap();
        let scalar = reference::interpolate_features(&cloud, &targets, k).unwrap();
        prop_assert_eq!(kernel.features, scalar.features);
        prop_assert_eq!(kernel.counters, scalar.counters);
    }
}

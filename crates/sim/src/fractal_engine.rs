//! Fractal engine cycle model (Fig. 9): pipelined partition + midpoint
//! units, with uniform and KD-tree modes sharing the datapath.

use crate::energy::EnergyTable;
use crate::sorter::{Sorter, SorterConfig};
use fractalcloud_pointcloud::partition::PartitionCost;
use serde::{Deserialize, Serialize};

/// Fractal engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FractalEngineConfig {
    /// Parallel comparator lanes in the partition unit (points per cycle).
    pub partition_lanes: usize,
    /// Pipeline flush cycles between iterations (mask write-back + block
    /// pointer update, Fig. 9(c)).
    pub iteration_overhead: u64,
}

impl FractalEngineConfig {
    /// The FractalCloud configuration: 16 lanes, 8-cycle iteration turnover.
    pub fn fractalcloud() -> FractalEngineConfig {
        FractalEngineConfig { partition_lanes: 16, iteration_overhead: 8 }
    }
}

/// Cost of building a partition on the engine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PartitionEngineCost {
    /// Total cycles.
    pub cycles: u64,
    /// Datapath energy in pJ.
    pub energy_pj: f64,
}

/// The fractal engine: costs partitioning work measured by the software
/// partitioners ([`PartitionCost`]) on the hardware datapath.
///
/// * **Fractal / uniform / octree** — traversal work flows through the
///   pipelined partition + midpoint-comparator lanes; iterations serialize
///   (level `i+1` needs level `i`'s midpoints) but all blocks within an
///   iteration stream back-to-back.
/// * **KD-tree** — sorting work is delegated to the merge-sort unit; sorts
///   serialize (§III-C, the exclusive sorter).
///
/// # Examples
///
/// ```
/// use fractalcloud_sim::{EnergyTable, FractalEngine, FractalEngineConfig};
/// use fractalcloud_pointcloud::partition::PartitionCost;
///
/// let engine = FractalEngine::new(
///     FractalEngineConfig::fractalcloud(), EnergyTable::tsmc28());
/// let cost = PartitionCost {
///     traversal_elements: 11 * 289_000,
///     traversal_passes: 11,
///     ..Default::default()
/// };
/// let fractal = engine.traversal_partition(&cost);
/// let kd = engine.kd_tree_partition(289_000, 256);
/// assert!(kd.cycles > 50 * fractal.cycles); // Fig. 16: ≈133× faster
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FractalEngine {
    config: FractalEngineConfig,
    energy: EnergyTable,
    sorter: Sorter,
}

impl FractalEngine {
    /// Creates an engine model with a 16-lane internal sorter (for KD mode).
    pub fn new(config: FractalEngineConfig, energy: EnergyTable) -> FractalEngine {
        let sorter = Sorter::new(SorterConfig::lanes16(), energy.clone());
        FractalEngine { config, energy, sorter }
    }

    /// The configuration.
    pub fn config(&self) -> &FractalEngineConfig {
        &self.config
    }

    /// Costs a traversal-based partition (fractal, uniform grid, octree)
    /// from its measured cost record.
    pub fn traversal_partition(&self, cost: &PartitionCost) -> PartitionEngineCost {
        let lanes = self.config.partition_lanes as u64;
        let stream_cycles = cost.traversal_elements.div_ceil(lanes);
        let overhead = cost.traversal_passes * self.config.iteration_overhead;
        // Each element passes one comparator (partition) and one min/max
        // update pair (midpoint comp) — both per Fig. 9(a).
        let energy = cost.traversal_elements as f64 * 3.0 * self.energy.alu_fp16_pj
            + cost.compare_ops as f64 * self.energy.alu_fp16_pj;
        PartitionEngineCost { cycles: stream_cycles + overhead, energy_pj: energy }
    }

    /// Costs a KD-tree partition of `n` points at leaf size `bs` on the
    /// sorter unit.
    pub fn kd_tree_partition(&self, n: u64, bs: u64) -> PartitionEngineCost {
        let sort = self.sorter.kd_tree_build(n, bs);
        // Post-sort scatter of each level is hidden behind the next sort.
        PartitionEngineCost { cycles: sort.cycles, energy_pj: sort.energy_pj }
    }

    /// Costs a KD-tree partition from a *measured* cost record (sorted
    /// element counts from the software KD partitioner).
    pub fn kd_tree_from_cost(&self, cost: &PartitionCost) -> PartitionEngineCost {
        // Serial sorts: each sorted_elements total streams through the
        // 16-lane merger once per merge pass; reuse measured compare count.
        let lanes = self.config.partition_lanes as u64;
        let cycles = cost.compare_ops.div_ceil(lanes)
            + cost.sort_invocations * self.config.iteration_overhead;
        PartitionEngineCost { cycles, energy_pj: cost.compare_ops as f64 * self.energy.alu_fp16_pj }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> FractalEngine {
        FractalEngine::new(FractalEngineConfig::fractalcloud(), EnergyTable::tsmc28())
    }

    #[test]
    fn fractal_cost_is_linear_in_elements() {
        let e = engine();
        let mk = |elems: u64, passes: u64| PartitionCost {
            traversal_elements: elems,
            traversal_passes: passes,
            ..Default::default()
        };
        let small = e.traversal_partition(&mk(10_000, 4));
        let big = e.traversal_partition(&mk(100_000, 7));
        assert!(big.cycles < 11 * small.cycles);
        assert!(big.cycles > 8 * small.cycles);
    }

    #[test]
    fn kd_tree_is_orders_of_magnitude_slower_at_scale() {
        let e = engine();
        // Fig. 16: Fractal partitions ~133× faster than KD-tree.
        let fractal = e.traversal_partition(&PartitionCost {
            traversal_elements: 11 * 289_000,
            traversal_passes: 11,
            compare_ops: 3 * 289_000,
            ..Default::default()
        });
        let kd = e.kd_tree_partition(289_000, 256);
        let ratio = kd.cycles as f64 / fractal.cycles as f64;
        assert!(ratio > 30.0, "kd/fractal ratio {ratio}");
    }

    #[test]
    fn kd_from_measured_cost_tracks_compares() {
        let e = engine();
        let cost = PartitionCost {
            sort_invocations: 15,
            sorted_elements: 4096,
            compare_ops: 40_960,
            ..Default::default()
        };
        let c = e.kd_tree_from_cost(&cost);
        assert_eq!(c.cycles, 40_960 / 16 + 15 * 8);
    }

    #[test]
    fn empty_cost_is_free_modulo_overhead() {
        let e = engine();
        let c = e.traversal_partition(&PartitionCost::default());
        assert_eq!(c.cycles, 0);
        assert_eq!(c.energy_pj, 0.0);
    }
}

//! Reuse-and-Skip-enabled Point Unit (RSPU) cycle model (Fig. 11).

use crate::energy::EnergyTable;
use fractalcloud_pointcloud::ops::OpCounters;
use serde::{Deserialize, Serialize};

/// RSPU array configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RspuConfig {
    /// Number of RSPU cores (inter-block parallelism width).
    pub cores: usize,
    /// Distance-compute lanes per core (points processed per cycle when the
    /// pipeline is full).
    pub lanes: usize,
}

impl RspuConfig {
    /// The FractalCloud configuration: 8 cores × 16 lanes.
    pub fn fractalcloud() -> RspuConfig {
        RspuConfig { cores: 8, lanes: 16 }
    }

    /// A single point-level-parallel unit (PointAcc-style baseline: all
    /// lanes serve one global operation, no block parallelism).
    pub fn single_unit() -> RspuConfig {
        RspuConfig { cores: 1, lanes: 128 }
    }
}

/// Cost of a point-operation kernel on the RSPU array.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RspuCost {
    /// Makespan cycles across the cores.
    pub cycles: u64,
    /// Datapath energy, pJ.
    pub energy_pj: f64,
    /// Distance evaluations performed.
    pub distance_evals: u64,
    /// Candidates skipped by window-check.
    pub skipped: u64,
}

/// RSPU array model: converts measured operation counters into cycles and
/// energy, with list-scheduling of per-block work across cores.
///
/// # Examples
///
/// ```
/// use fractalcloud_sim::{EnergyTable, Rspu, RspuConfig};
///
/// let rspu = Rspu::new(RspuConfig::fractalcloud(), EnergyTable::tsmc28());
/// // 8 equal blocks parallelize perfectly over 8 cores.
/// let makespan = rspu.schedule_blocks(&[1000; 8]);
/// assert_eq!(makespan, 1000);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Rspu {
    config: RspuConfig,
    energy: EnergyTable,
}

impl Rspu {
    /// Creates an RSPU array model.
    pub fn new(config: RspuConfig, energy: EnergyTable) -> Rspu {
        Rspu { config, energy }
    }

    /// The configuration.
    pub fn config(&self) -> &RspuConfig {
        &self.config
    }

    /// Cycles for one core to execute `distance_evals` pipelined distance
    /// computations (one per lane per cycle; compares/top-k overlap in the
    /// pipeline).
    pub fn core_cycles(&self, distance_evals: u64) -> u64 {
        distance_evals.div_ceil(self.config.lanes as u64)
    }

    /// Greedy LPT (longest-processing-time) makespan of per-block cycle
    /// costs over the core array — the latency of inter-block parallel
    /// execution (Alg. 2 rows 2–3).
    pub fn schedule_blocks(&self, block_cycles: &[u64]) -> u64 {
        let cores = self.config.cores.max(1);
        if block_cycles.is_empty() {
            return 0;
        }
        let mut sorted: Vec<u64> = block_cycles.to_vec();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let mut loads = vec![0u64; cores];
        for c in sorted {
            let min = loads.iter_mut().min().expect("cores >= 1");
            *min += c;
        }
        loads.into_iter().max().expect("cores >= 1")
    }

    /// Costs a *global* (single search space) point operation: all lanes of
    /// all cores gang up on one sequential dependency chain, so only
    /// `lanes` of one core apply per FPS iteration — the paper's
    /// point-level parallelism.
    pub fn global_op(&self, counters: &OpCounters) -> RspuCost {
        let lanes = (self.config.lanes * self.config.cores) as u64;
        let cycles = counters.distance_evals.div_ceil(lanes);
        RspuCost {
            cycles,
            energy_pj: self.datapath_pj(counters),
            distance_evals: counters.distance_evals,
            skipped: counters.skipped,
        }
    }

    /// Costs a block-parallel point operation from per-block counters:
    /// every block becomes one unit of work; makespan over cores.
    pub fn block_parallel_op(&self, per_block: &[OpCounters]) -> RspuCost {
        let block_cycles: Vec<u64> =
            per_block.iter().map(|c| self.core_cycles(c.distance_evals)).collect();
        let cycles = self.schedule_blocks(&block_cycles);
        let mut total = OpCounters::new();
        for c in per_block {
            total.merge(c);
        }
        RspuCost {
            cycles,
            energy_pj: self.datapath_pj(&total),
            distance_evals: total.distance_evals,
            skipped: total.skipped,
        }
    }

    /// Same as [`Rspu::block_parallel_op`] but from aggregate + critical
    /// path counters (when per-block detail was already reduced): makespan ≈
    /// max(total/cores, critical block).
    pub fn block_parallel_from_aggregate(
        &self,
        total: &OpCounters,
        critical: &OpCounters,
    ) -> RspuCost {
        let total_cycles = self.core_cycles(total.distance_evals);
        let spread = total_cycles.div_ceil(self.config.cores as u64);
        let critical_cycles = self.core_cycles(critical.distance_evals);
        RspuCost {
            cycles: spread.max(critical_cycles),
            energy_pj: self.datapath_pj(total),
            distance_evals: total.distance_evals,
            skipped: total.skipped,
        }
    }

    fn datapath_pj(&self, c: &OpCounters) -> f64 {
        // A distance eval = 3 subs + 3 MACs; compares on the ALU; skipped
        // candidates burn one mask-register read each (window check).
        c.distance_evals as f64 * (3.0 * self.energy.mac_fp16_pj + 3.0 * self.energy.alu_fp16_pj)
            + c.comparisons as f64 * self.energy.alu_fp16_pj
            + c.skipped as f64 * self.energy.regfile_pj_per_byte
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rspu() -> Rspu {
        Rspu::new(RspuConfig::fractalcloud(), EnergyTable::tsmc28())
    }

    #[test]
    fn lpt_balances_equal_blocks() {
        assert_eq!(rspu().schedule_blocks(&[100; 16]), 200);
        assert_eq!(rspu().schedule_blocks(&[100; 8]), 100);
    }

    #[test]
    fn lpt_is_dominated_by_giant_block() {
        let mut blocks = vec![10u64; 64];
        blocks.push(5000);
        assert_eq!(rspu().schedule_blocks(&blocks), 5000);
    }

    #[test]
    fn empty_schedule_is_zero() {
        assert_eq!(rspu().schedule_blocks(&[]), 0);
    }

    #[test]
    fn block_parallel_beats_global_for_same_work() {
        let r = rspu();
        let per_block: Vec<OpCounters> =
            (0..8).map(|_| OpCounters { distance_evals: 16_000, ..Default::default() }).collect();
        let mut total = OpCounters::new();
        for b in &per_block {
            total.merge(b);
        }
        let block = r.block_parallel_op(&per_block);
        // A single-unit design with the same total lanes (128).
        let single = Rspu::new(RspuConfig::single_unit(), EnergyTable::tsmc28());
        let glob = single.global_op(&total);
        // Same aggregate lane count → same cycles when perfectly balanced;
        // the advantage comes from the reduced work (block FPS does fewer
        // evals), checked elsewhere. Here: block-parallel must not be slower.
        assert!(block.cycles <= glob.cycles + 1);
    }

    #[test]
    fn aggregate_form_matches_per_block_for_balanced_work() {
        let r = rspu();
        let per_block: Vec<OpCounters> =
            (0..32).map(|_| OpCounters { distance_evals: 1600, ..Default::default() }).collect();
        let mut total = OpCounters::new();
        let mut critical = OpCounters::new();
        for b in &per_block {
            total.merge(b);
            critical = *b;
        }
        let a = r.block_parallel_op(&per_block);
        let b = r.block_parallel_from_aggregate(&total, &critical);
        let ratio = a.cycles as f64 / b.cycles as f64;
        assert!((0.8..=1.25).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn energy_includes_window_check_overhead() {
        let r = rspu();
        let with_skip = OpCounters { distance_evals: 100, skipped: 1000, ..Default::default() };
        let without = OpCounters { distance_evals: 100, ..Default::default() };
        assert!(r.global_op(&with_skip).energy_pj > r.global_op(&without).energy_pj);
    }

    #[test]
    fn core_cycles_round_up() {
        assert_eq!(rspu().core_cycles(17), 2);
        assert_eq!(rspu().core_cycles(0), 0);
    }
}

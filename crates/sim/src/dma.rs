//! DMA engine: DRAM ↔ global-buffer transfers in core-clock cycles.

use fractalcloud_dram::{AccessPattern, DramConfig, StreamEstimate, StreamModel};
use serde::{Deserialize, Serialize};

/// A DMA transfer cost in *core* cycles (the accelerators run at 1 GHz; the
/// DDR4-2133 memory clock is 1.0665 GHz, so cycles must be converted).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DmaCost {
    /// Core-clock cycles the transfer occupies.
    pub core_cycles: u64,
    /// DRAM energy in picojoules.
    pub dram_energy_pj: f64,
    /// Bytes moved.
    pub bytes: u64,
    /// Estimated DRAM row-buffer hit rate.
    pub hit_rate: f64,
}

impl DmaCost {
    /// A zero transfer.
    pub fn zero() -> DmaCost {
        DmaCost { core_cycles: 0, dram_energy_pj: 0.0, bytes: 0, hit_rate: 1.0 }
    }

    /// Sums two transfers executed back-to-back.
    pub fn merge(&self, other: &DmaCost) -> DmaCost {
        let bytes = self.bytes + other.bytes;
        DmaCost {
            core_cycles: self.core_cycles + other.core_cycles,
            dram_energy_pj: self.dram_energy_pj + other.dram_energy_pj,
            bytes,
            hit_rate: if bytes == 0 {
                1.0
            } else {
                (self.hit_rate * self.bytes as f64 + other.hit_rate * other.bytes as f64)
                    / bytes as f64
            },
        }
    }
}

/// The DMA engine: wraps the DRAM stream model and converts to core clock.
///
/// # Examples
///
/// ```
/// use fractalcloud_sim::Dma;
/// use fractalcloud_dram::AccessPattern;
///
/// let dma = Dma::at_1ghz();
/// let stream = dma.read(1 << 20, AccessPattern::Sequential);
/// let random = dma.read(1 << 20, AccessPattern::Random);
/// assert!(random.core_cycles > 2 * stream.core_cycles);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dma {
    model: StreamModel,
    core_period_ps: u64,
}

impl Dma {
    /// A DMA over DDR4-2133 with a 1 GHz core clock (every Table II design).
    pub fn at_1ghz() -> Dma {
        Dma::new(StreamModel::new(DramConfig::ddr4_2133()), 1000)
    }

    /// Creates a DMA engine with an explicit core period (picoseconds).
    pub fn new(model: StreamModel, core_period_ps: u64) -> Dma {
        Dma { model, core_period_ps }
    }

    /// The underlying DRAM model.
    pub fn dram(&self) -> &StreamModel {
        &self.model
    }

    /// Reads `bytes` with `pattern`.
    pub fn read(&self, bytes: u64, pattern: AccessPattern) -> DmaCost {
        self.convert(self.model.read(bytes, pattern), bytes)
    }

    /// Writes `bytes` with `pattern`.
    pub fn write(&self, bytes: u64, pattern: AccessPattern) -> DmaCost {
        self.convert(self.model.write(bytes, pattern), bytes)
    }

    fn convert(&self, e: StreamEstimate, bytes: u64) -> DmaCost {
        let ns = e.ns(self.model.config());
        let core_cycles = (ns * 1000.0 / self.core_period_ps as f64).ceil() as u64;
        DmaCost { core_cycles, dram_energy_pj: e.energy_pj, bytes, hit_rate: e.hit_rate }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_read_is_near_peak_bandwidth() {
        let dma = Dma::at_1ghz();
        let bytes = 17 << 20; // ~1 ms of traffic at peak
        let c = dma.read(bytes as u64, AccessPattern::Sequential);
        // 17 GB/s peak at 80% efficiency → ≥ 1.17 ms → ≥ 1.17 M core cycles.
        let gbps = bytes as f64 / (c.core_cycles as f64 * 1e-9) / 1e9;
        assert!((10.0..17.1).contains(&gbps), "achieved {gbps} GB/s");
    }

    #[test]
    fn conversion_accounts_for_clock_difference() {
        let dma = Dma::at_1ghz();
        let c = dma.read(1 << 20, AccessPattern::Sequential);
        // DRAM cycles are 937 ps; core cycles 1000 ps → fewer core cycles
        // than DRAM cycles for the same wall time.
        let dram_cycles = dma.dram().read(1 << 20, AccessPattern::Sequential).cycles;
        assert!(c.core_cycles < dram_cycles);
    }

    #[test]
    fn merge_weighted_hit_rate() {
        let a = DmaCost { core_cycles: 10, dram_energy_pj: 5.0, bytes: 100, hit_rate: 1.0 };
        let b = DmaCost { core_cycles: 10, dram_energy_pj: 5.0, bytes: 100, hit_rate: 0.0 };
        let m = a.merge(&b);
        assert!((m.hit_rate - 0.5).abs() < 1e-9);
        assert_eq!(m.core_cycles, 20);
    }

    #[test]
    fn zero_cost() {
        let z = DmaCost::zero();
        assert_eq!(z.merge(&DmaCost::zero()).bytes, 0);
    }
}

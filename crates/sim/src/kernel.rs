//! Phase/timeline accounting: composing unit costs into end-to-end runs.

use crate::energy::EnergyBreakdown;
use serde::{Deserialize, Serialize};

/// The latency-reporting category of a phase (Fig. 15(a) groups latency
/// into point operations, MLPs, and others).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PhaseClass {
    /// Partitioning (fractal / KD-tree / grid build).
    Partition,
    /// Sampling, neighbor search, gathering.
    PointOp,
    /// MLP / feature computation on the PE array.
    Mlp,
    /// Everything else (control, pooling, layout).
    Other,
}

/// One phase of an accelerator run: a compute component and a memory
/// component that may overlap (double buffering).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Human-readable name ("fractal", "fps", "mlp-sa1", …).
    pub name: String,
    /// Reporting class.
    pub class: PhaseClass,
    /// Cycles of on-chip compute (and SRAM, already folded by the caller).
    pub compute_cycles: u64,
    /// Cycles of DRAM traffic.
    pub dram_cycles: u64,
    /// True if the design double-buffers this phase (compute hides memory
    /// or vice versa); false forces compute + memory to serialize.
    pub overlapped: bool,
    /// Energy attributed to this phase.
    pub energy: EnergyBreakdown,
}

impl Phase {
    /// The phase's contribution to total latency.
    pub fn latency(&self) -> u64 {
        if self.overlapped {
            self.compute_cycles.max(self.dram_cycles)
        } else {
            self.compute_cycles + self.dram_cycles
        }
    }
}

/// An ordered sequence of phases = one inference run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Timeline {
    phases: Vec<Phase>,
}

impl Timeline {
    /// An empty timeline.
    pub fn new() -> Timeline {
        Timeline::default()
    }

    /// Appends a phase.
    pub fn push(&mut self, phase: Phase) {
        self.phases.push(phase);
    }

    /// All phases in execution order.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Total latency in cycles (phases execute serially; overlap is within
    /// a phase).
    pub fn total_cycles(&self) -> u64 {
        self.phases.iter().map(Phase::latency).sum()
    }

    /// Latency attributed to `class`.
    pub fn cycles_of(&self, class: PhaseClass) -> u64 {
        self.phases.iter().filter(|p| p.class == class).map(Phase::latency).sum()
    }

    /// Total energy across phases.
    pub fn total_energy(&self) -> EnergyBreakdown {
        let mut e = EnergyBreakdown::new();
        for p in &self.phases {
            e.merge(&p.energy);
        }
        e
    }

    /// Wall-clock milliseconds at `freq_ghz`.
    pub fn ms(&self, freq_ghz: f64) -> f64 {
        self.total_cycles() as f64 / (freq_ghz * 1e9) * 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::energy::EnergyCategory;

    fn phase(name: &str, class: PhaseClass, comp: u64, dram: u64, overlapped: bool) -> Phase {
        let mut energy = EnergyBreakdown::new();
        energy.add(EnergyCategory::Compute, comp as f64);
        energy.add(EnergyCategory::Dram, dram as f64);
        Phase {
            name: name.into(),
            class,
            compute_cycles: comp,
            dram_cycles: dram,
            overlapped,
            energy,
        }
    }

    #[test]
    fn overlapped_phase_takes_max() {
        let p = phase("x", PhaseClass::Mlp, 100, 70, true);
        assert_eq!(p.latency(), 100);
        let p = phase("y", PhaseClass::Mlp, 100, 70, false);
        assert_eq!(p.latency(), 170);
    }

    #[test]
    fn timeline_sums_phases_and_classes() {
        let mut t = Timeline::new();
        t.push(phase("fractal", PhaseClass::Partition, 10, 5, true));
        t.push(phase("fps", PhaseClass::PointOp, 100, 20, true));
        t.push(phase("mlp", PhaseClass::Mlp, 50, 80, true));
        assert_eq!(t.total_cycles(), 10 + 100 + 80);
        assert_eq!(t.cycles_of(PhaseClass::PointOp), 100);
        assert_eq!(t.cycles_of(PhaseClass::Partition), 10);
        assert_eq!(t.cycles_of(PhaseClass::Other), 0);
    }

    #[test]
    fn energy_accumulates() {
        let mut t = Timeline::new();
        t.push(phase("a", PhaseClass::Mlp, 10, 0, true));
        t.push(phase("b", PhaseClass::Mlp, 0, 20, true));
        let e = t.total_energy();
        assert_eq!(e.compute_pj, 10.0);
        assert_eq!(e.dram_pj, 20.0);
    }

    #[test]
    fn ms_conversion_at_1ghz() {
        let mut t = Timeline::new();
        t.push(phase("a", PhaseClass::Mlp, 1_000_000, 0, true));
        assert!((t.ms(1.0) - 1.0).abs() < 1e-12);
    }
}

//! Hardware merge-sort unit model (PointAcc-style, used for KD-tree
//! partitioning and top-k selection in the baselines).

use crate::energy::EnergyTable;
use serde::{Deserialize, Serialize};

/// Merge-sort unit configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SorterConfig {
    /// Elements the comparator network consumes per cycle.
    pub throughput: usize,
}

impl SorterConfig {
    /// A 16-lane merge sorter (matches the PointAcc sorting-engine scale).
    pub fn lanes16() -> SorterConfig {
        SorterConfig { throughput: 16 }
    }
}

/// Cost of one sort invocation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SortCost {
    /// Cycles for the full sort.
    pub cycles: u64,
    /// Comparator operations.
    pub compares: u64,
    /// Energy in picojoules.
    pub energy_pj: f64,
}

impl SortCost {
    /// Accumulates another sort (sequential invocations).
    pub fn merge(&mut self, other: &SortCost) {
        self.cycles += other.cycles;
        self.compares += other.compares;
        self.energy_pj += other.energy_pj;
    }
}

/// Model of a pipelined hardware merge sorter.
///
/// A merge sort of `n` elements makes `⌈log₂ n⌉` passes, each streaming all
/// `n` elements through the merge network at `throughput` elements/cycle —
/// the *exclusive, indivisible* operation of Fig. 5 whose latency the
/// KD-tree pays at every node.
///
/// # Examples
///
/// ```
/// use fractalcloud_sim::{EnergyTable, Sorter, SorterConfig};
///
/// let sorter = Sorter::new(SorterConfig::lanes16(), EnergyTable::tsmc28());
/// let small = sorter.sort(1_000);
/// let big = sorter.sort(289_000);
/// assert!(big.cycles > 200 * small.cycles / 2); // superlinear growth
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Sorter {
    config: SorterConfig,
    energy: EnergyTable,
}

impl Sorter {
    /// Creates a sorter model.
    pub fn new(config: SorterConfig, energy: EnergyTable) -> Sorter {
        Sorter { config, energy }
    }

    /// Costs one full sort of `n` elements.
    ///
    /// Merge pass `p` merges sorted runs of length `2^p`; the network's
    /// `throughput` lanes are independent two-way mergers, each consuming
    /// one element per cycle, so pass `p` can only use
    /// `min(lanes, runs/2) = min(lanes, n / 2^(p+1))` lanes. The final
    /// passes of a large sort are therefore nearly serial — the
    /// low-utilization regime §III-C blames for KD-tree inefficiency.
    pub fn sort(&self, n: u64) -> SortCost {
        if n <= 1 {
            return SortCost { cycles: 0, compares: 0, energy_pj: 0.0 };
        }
        let passes = 64 - (n - 1).leading_zeros() as u64; // ceil(log2 n)
        let mut cycles = 0u64;
        for p in 0..passes {
            let merges = (n >> (p + 1)).max(1);
            let lanes = (self.config.throughput as u64).min(merges);
            cycles += n.div_ceil(lanes);
        }
        let compares = passes * n;
        SortCost { cycles, compares, energy_pj: compares as f64 * self.energy.alu_fp16_pj }
    }

    /// Costs the full KD-tree construction of `n` points with leaf size
    /// `bs`: every level re-sorts all points, and levels run *serially*
    /// because each split depends on the previous sort — the
    /// non-decomposable dependency chain of §III-C.
    pub fn kd_tree_build(&self, n: u64, bs: u64) -> SortCost {
        let mut total = SortCost { cycles: 0, compares: 0, energy_pj: 0.0 };
        let mut nodes = 1u64;
        loop {
            // `nodes` sorts of `n / nodes` elements each at this level; the
            // sorter is one shared unit, so they serialize.
            let per_node = n / nodes;
            if per_node <= bs {
                break;
            }
            for _ in 0..nodes {
                let c = self.sort(per_node);
                total.merge(&c);
            }
            nodes *= 2;
        }
        total
    }

    /// Number of sort invocations [`Sorter::kd_tree_build`] performs
    /// (Fig. 5: 1K pts @ BS 64 → 15; 289K pts @ BS 256 → 2047-ish).
    pub fn kd_tree_sorts(n: u64, bs: u64) -> u64 {
        let mut nodes = 1u64;
        let mut sorts = 0u64;
        while n / nodes > bs {
            sorts += nodes;
            nodes *= 2;
        }
        sorts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorter() -> Sorter {
        Sorter::new(SorterConfig::lanes16(), EnergyTable::tsmc28())
    }

    #[test]
    fn sort_cycles_account_for_merge_utilization() {
        let s = sorter();
        let c = s.sort(1024);
        // Passes 0–5 run at full 16 lanes (64 cycles each); passes 6–9 have
        // only 8/4/2/1 merges and serialize: 128 + 256 + 512 + 1024.
        assert_eq!(c.cycles, 6 * 64 + 128 + 256 + 512 + 1024);
        assert_eq!(c.compares, 10 * 1024);
    }

    #[test]
    fn small_sorts_underutilize_the_network() {
        // Per-element cost rises as n shrinks below the lane count — the
        // small-workload mismatch of §III-C.
        let s = sorter();
        let big = s.sort(65536);
        let small = s.sort(64);
        let big_per = big.cycles as f64 / 65536.0;
        let small_per = small.cycles as f64 / 64.0;
        assert!(small_per > 1.0, "small sorts should cost >1 cycle/elem");
        let _ = big_per;
    }

    #[test]
    fn trivial_sorts_are_free() {
        let s = sorter();
        assert_eq!(s.sort(0).cycles, 0);
        assert_eq!(s.sort(1).cycles, 0);
    }

    #[test]
    fn kd_build_dwarfs_single_sort() {
        let s = sorter();
        let single = s.sort(289_000);
        let build = s.kd_tree_build(289_000, 256);
        assert!(build.cycles > 5 * single.cycles);
    }

    #[test]
    fn kd_build_small_input_is_cheap() {
        let s = sorter();
        let c = s.kd_tree_build(100, 256);
        assert_eq!(c.cycles, 0);
    }

    #[test]
    fn deeper_trees_cost_more() {
        let s = sorter();
        let coarse = s.kd_tree_build(65536, 1024);
        let fine = s.kd_tree_build(65536, 64);
        assert!(fine.cycles > coarse.cycles);
    }

    #[test]
    fn kd_sort_counts_match_fig5() {
        assert_eq!(Sorter::kd_tree_sorts(1024, 64), 15);
        // 289K @ BS 256: Fig. 5 reports 2047 serial sorts.
        assert_eq!(Sorter::kd_tree_sorts(289_000, 256), 2047);
    }

    #[test]
    fn energy_tracks_compares() {
        let s = sorter();
        let c = s.sort(4096);
        let t = EnergyTable::tsmc28();
        assert!((c.energy_pj - c.compares as f64 * t.alu_fp16_pj).abs() < 1e-9);
    }
}

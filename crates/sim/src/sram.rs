//! Multi-banked on-chip SRAM model.

use crate::energy::EnergyTable;
use serde::{Deserialize, Serialize};

/// Configuration of a multi-banked scratchpad (the paper's 274 KB global
/// buffer follows PointAcc's organization).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SramConfig {
    /// Total capacity in bytes.
    pub bytes: usize,
    /// Number of independently-addressed banks.
    pub banks: usize,
    /// Port width per bank, bytes per cycle.
    pub bank_width: usize,
}

impl SramConfig {
    /// The FractalCloud / PointAcc 274 KB buffer: 16 banks × ~17 KB, 16 B
    /// ports.
    pub fn global_buffer_274k() -> SramConfig {
        SramConfig { bytes: 274 * 1024, banks: 16, bank_width: 16 }
    }

    /// Crescent's 1622.8 KB buffer (Table II).
    pub fn crescent_1622k() -> SramConfig {
        SramConfig { bytes: 1622 * 1024 + 819, banks: 16, bank_width: 16 }
    }

    /// Mesorasi's 1624 KB buffer (Table II).
    pub fn mesorasi_1624k() -> SramConfig {
        SramConfig { bytes: 1624 * 1024, banks: 16, bank_width: 16 }
    }

    /// Peak bandwidth, bytes per cycle (all banks busy).
    pub fn peak_bytes_per_cycle(&self) -> usize {
        self.banks * self.bank_width
    }

    /// Bytes per bank.
    pub fn bank_bytes(&self) -> usize {
        self.bytes / self.banks.max(1)
    }

    /// Energy per byte for this macro size (banks ≥ ~1 MB total use the
    /// "large array" cost — longer wordlines/bitlines and H-tree).
    pub fn pj_per_byte(&self, table: &EnergyTable) -> f64 {
        if self.bytes >= 1 << 20 {
            table.sram_large_pj_per_byte
        } else {
            table.sram_small_pj_per_byte
        }
    }
}

/// How concurrent accessors hit the banks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SramPattern {
    /// Each accessor streams its own bank (post-Fractal block-per-bank
    /// layout, §IV-A): zero conflicts.
    BankAligned,
    /// Accessors address banks uniformly at random (pre-Fractal global
    /// layout): conflicts follow balls-into-bins serialization.
    Random,
    /// Single sequential stream (weights, DFT block stream).
    Sequential,
}

/// Result of an SRAM access batch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SramAccess {
    /// Cycles to satisfy the batch.
    pub cycles: u64,
    /// Energy in picojoules.
    pub energy_pj: f64,
    /// Effective conflict factor applied (1.0 = conflict-free).
    pub conflict_factor: f64,
}

/// Multi-banked SRAM: converts byte volumes + access patterns into cycles
/// and energy.
///
/// # Examples
///
/// ```
/// use fractalcloud_sim::{EnergyTable, Sram, SramConfig, SramPattern};
///
/// let sram = Sram::new(SramConfig::global_buffer_274k(), EnergyTable::tsmc28());
/// let aligned = sram.access(1 << 20, SramPattern::BankAligned, 16);
/// let random = sram.access(1 << 20, SramPattern::Random, 16);
/// assert!(random.cycles > aligned.cycles); // bank conflicts serialize
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Sram {
    config: SramConfig,
    energy: EnergyTable,
}

impl Sram {
    /// Creates an SRAM model.
    pub fn new(config: SramConfig, energy: EnergyTable) -> Sram {
        Sram { config, energy }
    }

    /// The configuration.
    pub fn config(&self) -> &SramConfig {
        &self.config
    }

    /// Estimates a batch of `bytes` accessed by `accessors` concurrent
    /// units under `pattern`.
    ///
    /// `Random` applies the expected balls-into-bins serialization factor:
    /// with `a` accessors over `b` banks per cycle, the expected number of
    /// rounds to drain one cycle's worth of requests is the expected maximum
    /// bin load, approximated by `a/b + ln(b)/ln(1 + b·ln(b)/a)`-style
    /// closed forms; we use the simpler and well-tested
    /// `max(1, a/b) + conflict_penalty` with penalty 0.35·ln(min(a,b)).
    pub fn access(&self, bytes: u64, pattern: SramPattern, accessors: usize) -> SramAccess {
        if bytes == 0 {
            return SramAccess { cycles: 0, energy_pj: 0.0, conflict_factor: 1.0 };
        }
        let accessors = accessors.max(1);
        let banks = self.config.banks.max(1);
        let conflict_factor = match pattern {
            SramPattern::BankAligned | SramPattern::Sequential => 1.0,
            SramPattern::Random => {
                let a = accessors.min(banks) as f64;
                1.0 + 0.35 * a.ln().max(0.0) + (accessors as f64 / banks as f64 - 1.0).max(0.0)
            }
        };
        // Usable width: each accessor drives one bank port.
        let width = (accessors.min(banks) * self.config.bank_width) as u64;
        let base_cycles = bytes.div_ceil(width);
        let cycles = (base_cycles as f64 * conflict_factor).ceil() as u64;
        let energy_pj = bytes as f64 * self.config.pj_per_byte(&self.energy);
        SramAccess { cycles, energy_pj, conflict_factor }
    }

    /// True if a working set of `bytes` fits on-chip.
    pub fn fits(&self, bytes: u64) -> bool {
        bytes <= self.config.bytes as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sram() -> Sram {
        Sram::new(SramConfig::global_buffer_274k(), EnergyTable::tsmc28())
    }

    #[test]
    fn bank_aligned_achieves_peak() {
        let s = sram();
        let bytes = 1 << 16;
        let a = s.access(bytes, SramPattern::BankAligned, 16);
        assert_eq!(a.cycles, bytes / (16 * 16));
        assert_eq!(a.conflict_factor, 1.0);
    }

    #[test]
    fn random_pattern_pays_conflicts() {
        let s = sram();
        let bytes = 1 << 16;
        let aligned = s.access(bytes, SramPattern::BankAligned, 16);
        let random = s.access(bytes, SramPattern::Random, 16);
        assert!(random.cycles > aligned.cycles);
        assert!(random.conflict_factor > 1.5);
    }

    #[test]
    fn fewer_accessors_use_less_width() {
        let s = sram();
        let one = s.access(1 << 16, SramPattern::BankAligned, 1);
        let sixteen = s.access(1 << 16, SramPattern::BankAligned, 16);
        assert_eq!(one.cycles, sixteen.cycles * 16);
    }

    #[test]
    fn energy_is_per_byte_and_size_dependent() {
        let t = EnergyTable::tsmc28();
        let small = sram().access(1000, SramPattern::Sequential, 1);
        assert!((small.energy_pj - 1000.0 * t.sram_small_pj_per_byte).abs() < 1e-9);
        let big = Sram::new(SramConfig::crescent_1622k(), t.clone());
        let b = big.access(1000, SramPattern::Sequential, 1);
        assert!(
            b.energy_pj > small.energy_pj * 2.0,
            "large array should cost ≫ per byte: {} vs {}",
            b.energy_pj,
            small.energy_pj
        );
    }

    #[test]
    fn capacity_check() {
        let s = sram();
        assert!(s.fits(274 * 1024));
        assert!(!s.fits(274 * 1024 + 1));
    }

    #[test]
    fn zero_bytes_is_free() {
        let a = sram().access(0, SramPattern::Random, 16);
        assert_eq!(a.cycles, 0);
        assert_eq!(a.energy_pj, 0.0);
    }

    #[test]
    fn config_constants_match_table2() {
        assert_eq!(SramConfig::global_buffer_274k().bytes, 280_576);
        assert!(SramConfig::crescent_1622k().bytes > 1_600_000);
        assert_eq!(SramConfig::global_buffer_274k().peak_bytes_per_cycle(), 256);
    }
}

//! Network-on-chip model for intra-chip transfers.

use crate::energy::EnergyTable;
use serde::{Deserialize, Serialize};

/// NoC configuration (a small crossbar/mesh between the memory interface
/// and the compute units, Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NocConfig {
    /// Link width in bytes per cycle.
    pub link_bytes: usize,
    /// Per-hop pipeline latency in cycles.
    pub hop_latency: u64,
    /// Average hop count between producer and consumer.
    pub avg_hops: usize,
}

impl NocConfig {
    /// The FractalCloud NoC: 32 B links, 1-cycle hops, 2 average hops.
    pub fn fractalcloud() -> NocConfig {
        NocConfig { link_bytes: 32, hop_latency: 1, avg_hops: 2 }
    }
}

/// Cost of a NoC transfer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NocCost {
    /// Cycles to deliver the payload.
    pub cycles: u64,
    /// Interconnect energy in pJ.
    pub energy_pj: f64,
}

/// The NoC model.
#[derive(Debug, Clone, PartialEq)]
pub struct Noc {
    config: NocConfig,
    energy: EnergyTable,
}

impl Noc {
    /// Creates a NoC model.
    pub fn new(config: NocConfig, energy: EnergyTable) -> Noc {
        Noc { config, energy }
    }

    /// Costs moving `bytes` across the average route.
    pub fn transfer(&self, bytes: u64) -> NocCost {
        if bytes == 0 {
            return NocCost { cycles: 0, energy_pj: 0.0 };
        }
        let cycles = bytes.div_ceil(self.config.link_bytes as u64)
            + self.config.hop_latency * self.config.avg_hops as u64;
        let energy_pj =
            bytes as f64 * self.config.avg_hops as f64 * self.energy.noc_pj_per_byte_hop;
        NocCost { cycles, energy_pj }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_is_bandwidth_plus_hops() {
        let noc = Noc::new(NocConfig::fractalcloud(), EnergyTable::tsmc28());
        let c = noc.transfer(3200);
        assert_eq!(c.cycles, 100 + 2);
        assert!((c.energy_pj - 3200.0 * 2.0 * 0.10).abs() < 1e-9);
    }

    #[test]
    fn zero_transfer_is_free() {
        let noc = Noc::new(NocConfig::fractalcloud(), EnergyTable::tsmc28());
        let c = noc.transfer(0);
        assert_eq!(c.cycles, 0);
        assert_eq!(c.energy_pj, 0.0);
    }
}

//! Per-event energy accounting at the 28 nm node.
//!
//! The paper reports post-layout power; we substitute a per-event energy
//! table with values drawn from published 28 nm characterizations (Horowitz
//! ISSCC'14 scaling, PointAcc/Crescent papers' breakdowns). Absolute joules
//! are approximate; *ratios* between compute, small SRAM, large SRAM, and
//! DRAM are what drive every conclusion, and those are well established:
//! `DRAM ≫ large SRAM > small SRAM ≫ 16-bit MAC`.

use serde::{Deserialize, Serialize};

/// Energy cost table (picojoules per event) at 28 nm, 0.9 V.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyTable {
    /// One FP16 multiply-accumulate (PE array datapath + pipeline regs).
    pub mac_fp16_pj: f64,
    /// One FP16 add/compare (RSPU comparator, pooling).
    pub alu_fp16_pj: f64,
    /// Small SRAM bank access, per byte (≤ 64 KB banks, e.g. the 274 KB
    /// multi-bank global buffer).
    pub sram_small_pj_per_byte: f64,
    /// Large SRAM access, per byte (≥ 1 MB monolithic-ish arrays, e.g.
    /// Crescent's 1.6 MB buffer) — bigger arrays burn more per access.
    pub sram_large_pj_per_byte: f64,
    /// Local register-file / FIFO access, per byte.
    pub regfile_pj_per_byte: f64,
    /// NoC transfer, per byte per hop.
    pub noc_pj_per_byte_hop: f64,
    /// Core leakage + clock-tree power per mm² of logic, in milliwatts.
    pub static_mw_per_mm2: f64,
}

impl EnergyTable {
    /// The 28 nm table used throughout the evaluation.
    pub fn tsmc28() -> EnergyTable {
        EnergyTable {
            mac_fp16_pj: 1.1,
            alu_fp16_pj: 0.4,
            sram_small_pj_per_byte: 0.18,
            sram_large_pj_per_byte: 0.55,
            regfile_pj_per_byte: 0.03,
            noc_pj_per_byte_hop: 0.10,
            static_mw_per_mm2: 18.0,
        }
    }
}

impl Default for EnergyTable {
    fn default() -> EnergyTable {
        EnergyTable::tsmc28()
    }
}

/// Energy categories reported in the paper's Fig. 15(b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EnergyCategory {
    /// Datapath compute (PE array, RSPUs, fractal engine, pooling).
    Compute,
    /// On-chip SRAM traffic.
    Sram,
    /// Off-chip DRAM (commands + background, from the DRAM model).
    Dram,
    /// Interconnect.
    Noc,
    /// Leakage + clock tree, proportional to runtime.
    Static,
}

impl EnergyCategory {
    /// All categories in report order.
    pub const ALL: [EnergyCategory; 5] = [
        EnergyCategory::Compute,
        EnergyCategory::Sram,
        EnergyCategory::Dram,
        EnergyCategory::Noc,
        EnergyCategory::Static,
    ];
}

/// Accumulates energy by category.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Compute energy, pJ.
    pub compute_pj: f64,
    /// SRAM energy, pJ.
    pub sram_pj: f64,
    /// DRAM energy, pJ.
    pub dram_pj: f64,
    /// NoC energy, pJ.
    pub noc_pj: f64,
    /// Static (leakage) energy, pJ.
    pub static_pj: f64,
}

impl EnergyBreakdown {
    /// Zeroed breakdown.
    pub fn new() -> EnergyBreakdown {
        EnergyBreakdown::default()
    }

    /// Adds `pj` to `category`.
    pub fn add(&mut self, category: EnergyCategory, pj: f64) {
        match category {
            EnergyCategory::Compute => self.compute_pj += pj,
            EnergyCategory::Sram => self.sram_pj += pj,
            EnergyCategory::Dram => self.dram_pj += pj,
            EnergyCategory::Noc => self.noc_pj += pj,
            EnergyCategory::Static => self.static_pj += pj,
        }
    }

    /// Total energy, pJ.
    pub fn total_pj(&self) -> f64 {
        self.compute_pj + self.sram_pj + self.dram_pj + self.noc_pj + self.static_pj
    }

    /// Total energy in millijoules.
    pub fn total_mj(&self) -> f64 {
        self.total_pj() * 1e-9
    }

    /// Component-wise sum.
    pub fn merge(&mut self, other: &EnergyBreakdown) {
        self.compute_pj += other.compute_pj;
        self.sram_pj += other.sram_pj;
        self.dram_pj += other.dram_pj;
        self.noc_pj += other.noc_pj;
        self.static_pj += other.static_pj;
    }

    /// Scales every component (used for technology scaling of baselines).
    pub fn scaled(&self, factor: f64) -> EnergyBreakdown {
        EnergyBreakdown {
            compute_pj: self.compute_pj * factor,
            sram_pj: self.sram_pj * factor,
            dram_pj: self.dram_pj * factor,
            noc_pj: self.noc_pj * factor,
            static_pj: self.static_pj * factor,
        }
    }
}

impl std::ops::Add for EnergyBreakdown {
    type Output = EnergyBreakdown;

    fn add(self, other: EnergyBreakdown) -> EnergyBreakdown {
        let mut out = self;
        out.merge(&other);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_sane_ordering() {
        let t = EnergyTable::tsmc28();
        // The hierarchy the whole paper leans on.
        assert!(t.regfile_pj_per_byte < t.sram_small_pj_per_byte);
        assert!(t.sram_small_pj_per_byte < t.sram_large_pj_per_byte);
        assert!(t.alu_fp16_pj < t.mac_fp16_pj);
    }

    #[test]
    fn breakdown_accumulates_by_category() {
        let mut b = EnergyBreakdown::new();
        b.add(EnergyCategory::Compute, 10.0);
        b.add(EnergyCategory::Dram, 100.0);
        b.add(EnergyCategory::Compute, 5.0);
        assert_eq!(b.compute_pj, 15.0);
        assert_eq!(b.dram_pj, 100.0);
        assert_eq!(b.total_pj(), 115.0);
    }

    #[test]
    fn merge_and_add_agree() {
        let mut a = EnergyBreakdown::new();
        a.add(EnergyCategory::Sram, 7.0);
        let mut b = EnergyBreakdown::new();
        b.add(EnergyCategory::Noc, 3.0);
        let c = a + b;
        assert_eq!(c.total_pj(), 10.0);
    }

    #[test]
    fn scaled_multiplies_everything() {
        let mut a = EnergyBreakdown::new();
        a.add(EnergyCategory::Static, 8.0);
        a.add(EnergyCategory::Dram, 2.0);
        let s = a.scaled(0.5);
        assert_eq!(s.total_pj(), 5.0);
    }

    #[test]
    fn total_mj_conversion() {
        let mut a = EnergyBreakdown::new();
        a.add(EnergyCategory::Compute, 1e9);
        assert!((a.total_mj() - 1.0).abs() < 1e-12);
    }
}

//! Cycle-level accelerator simulation substrate for FractalCloud.
//!
//! This crate models the on-chip hardware of Fig. 8 and its baselines:
//!
//! * [`Sram`] — the multi-banked global buffer with bank-conflict modeling;
//! * [`Systolic`] — the 16×16 PE array (MLP engine) with tiling;
//! * [`Sorter`] — the merge-sort unit (KD-tree mode, PointAcc top-k);
//! * [`Rspu`] — the reuse-and-skip point units with block scheduling;
//! * [`FractalEngine`] — the partition datapath (fractal/uniform/KD modes);
//! * [`Dma`] / [`Noc`] — memory-interface models over `fractalcloud-dram`;
//! * [`Timeline`] — phase composition with double-buffered overlap;
//! * [`EnergyTable`] / [`EnergyBreakdown`] — 28 nm per-event energy
//!   accounting.
//!
//! Accelerator-level models (FractalCloud, PointAcc, Crescent, …) live in
//! `fractalcloud-accel` and are built by composing these units.
//!
//! # Example
//!
//! ```
//! use fractalcloud_sim::{EnergyTable, Systolic, SystolicConfig};
//!
//! let pe = Systolic::new(SystolicConfig::pe16x16(), EnergyTable::tsmc28());
//! let cost = pe.mlp_layer(4096, 64, 128);
//! assert!(cost.utilization > 0.5);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod dma;
mod energy;
mod fractal_engine;
mod kernel;
mod noc;
mod rspu;
mod sorter;
mod sram;
mod systolic;

pub use dma::{Dma, DmaCost};
pub use energy::{EnergyBreakdown, EnergyCategory, EnergyTable};
pub use fractal_engine::{FractalEngine, FractalEngineConfig, PartitionEngineCost};
pub use kernel::{Phase, PhaseClass, Timeline};
pub use noc::{Noc, NocConfig, NocCost};
pub use rspu::{Rspu, RspuConfig, RspuCost};
pub use sorter::{SortCost, Sorter, SorterConfig};
pub use sram::{Sram, SramAccess, SramConfig, SramPattern};
pub use systolic::{GemmCost, Systolic, SystolicConfig};

//! 16×16 output-stationary systolic array model (the MLP engine).

use crate::energy::EnergyTable;
use serde::{Deserialize, Serialize};

/// Systolic array configuration. All Table II accelerators use 16×16 PEs at
/// 1 GHz → 256 MACs/cycle → 512 GOPS (2 ops per MAC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SystolicConfig {
    /// PE rows.
    pub rows: usize,
    /// PE columns.
    pub cols: usize,
}

impl SystolicConfig {
    /// The 16×16 array of Table II.
    pub fn pe16x16() -> SystolicConfig {
        SystolicConfig { rows: 16, cols: 16 }
    }

    /// Peak multiply-accumulates per cycle.
    pub fn macs_per_cycle(&self) -> usize {
        self.rows * self.cols
    }

    /// Peak GOPS at `freq_ghz` (2 ops per MAC).
    pub fn peak_gops(&self, freq_ghz: f64) -> f64 {
        2.0 * self.macs_per_cycle() as f64 * freq_ghz
    }
}

/// Result of a GEMM on the array.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GemmCost {
    /// Cycles including tile fill/drain.
    pub cycles: u64,
    /// MAC operations executed (`m·n·k`).
    pub macs: u64,
    /// Compute energy in picojoules.
    pub energy_pj: f64,
    /// Achieved utilization in `[0, 1]`.
    pub utilization: f64,
}

/// Cycle/energy model of a weight-stationary-ish tiled GEMM
/// `C[m×n] = A[m×k] × B[k×n]`, tiles of `rows × cols`, `k`-deep pipelines
/// with `rows + cols` fill/drain per tile wave.
///
/// # Examples
///
/// ```
/// use fractalcloud_sim::{EnergyTable, Systolic, SystolicConfig};
///
/// let pe = Systolic::new(SystolicConfig::pe16x16(), EnergyTable::tsmc28());
/// let big = pe.gemm(1024, 64, 64);
/// assert!(big.utilization > 0.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Systolic {
    config: SystolicConfig,
    energy: EnergyTable,
}

impl Systolic {
    /// Creates an array model.
    pub fn new(config: SystolicConfig, energy: EnergyTable) -> Systolic {
        Systolic { config, energy }
    }

    /// The configuration.
    pub fn config(&self) -> &SystolicConfig {
        &self.config
    }

    /// Costs a GEMM of `m × k` by `k × n`.
    pub fn gemm(&self, m: u64, n: u64, k: u64) -> GemmCost {
        if m == 0 || n == 0 || k == 0 {
            return GemmCost { cycles: 0, macs: 0, energy_pj: 0.0, utilization: 1.0 };
        }
        let r = self.config.rows as u64;
        let c = self.config.cols as u64;
        let tiles_m = m.div_ceil(r);
        let tiles_n = n.div_ceil(c);
        let fill_drain = r + c;
        let cycles = tiles_m * tiles_n * (k + fill_drain);
        let macs = m * n * k;
        let peak = cycles * self.config.macs_per_cycle() as u64;
        GemmCost {
            cycles,
            macs,
            energy_pj: macs as f64 * self.energy.mac_fp16_pj,
            utilization: macs as f64 / peak as f64,
        }
    }

    /// Costs a batched pointwise MLP layer: `rows` points, `cin → cout`
    /// channels (the shared-MLP building block of every PNN).
    pub fn mlp_layer(&self, rows: u64, cin: u64, cout: u64) -> GemmCost {
        self.gemm(rows, cout, cin)
    }

    /// Costs a max-pooling reduction over `groups` of `size` elements with
    /// `channels` channels (the pooling unit, one comparator lane per PE
    /// column).
    pub fn max_pool(&self, groups: u64, size: u64, channels: u64) -> GemmCost {
        let compares = groups * size.saturating_sub(1).max(1) * channels;
        let lanes = self.config.cols as u64;
        let cycles = compares.div_ceil(lanes);
        GemmCost {
            cycles,
            macs: 0,
            energy_pj: compares as f64 * self.energy.alu_fp16_pj,
            utilization: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pe() -> Systolic {
        Systolic::new(SystolicConfig::pe16x16(), EnergyTable::tsmc28())
    }

    #[test]
    fn peak_is_512_gops_at_1ghz() {
        assert_eq!(SystolicConfig::pe16x16().peak_gops(1.0), 512.0);
    }

    #[test]
    fn aligned_gemm_utilization_is_high() {
        let g = pe().gemm(1024, 256, 256);
        assert!(g.utilization > 0.8, "utilization {}", g.utilization);
        assert_eq!(g.macs, 1024 * 256 * 256);
    }

    #[test]
    fn tiny_gemm_wastes_the_array() {
        let g = pe().gemm(4, 4, 16);
        assert!(g.utilization < 0.1);
    }

    #[test]
    fn cycles_scale_linearly_in_k() {
        let a = pe().gemm(16, 16, 100);
        let b = pe().gemm(16, 16, 200);
        assert!(b.cycles > a.cycles);
        assert!(b.cycles < 2 * a.cycles); // fill/drain amortizes
    }

    #[test]
    fn ragged_tiles_round_up() {
        let g = pe().gemm(17, 17, 32);
        // 2×2 tiles.
        assert_eq!(g.cycles, 4 * (32 + 32));
    }

    #[test]
    fn mlp_layer_is_gemm() {
        let a = pe().mlp_layer(512, 64, 128);
        let b = pe().gemm(512, 128, 64);
        assert_eq!(a, b);
    }

    #[test]
    fn max_pool_counts_compares() {
        let p = pe().max_pool(128, 32, 64);
        assert_eq!(p.macs, 0);
        assert!(p.energy_pj > 0.0);
        assert_eq!(p.cycles, (128 * 31 * 64u64).div_ceil(16));
    }

    #[test]
    fn zero_work_is_free() {
        let g = pe().gemm(0, 16, 16);
        assert_eq!(g.cycles, 0);
        assert_eq!(g.energy_pj, 0.0);
    }
}

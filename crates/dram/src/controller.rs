//! FR-FCFS memory controller over the bank state machines.

use crate::bank::{Bank, BankState, Command};
use crate::config::DramConfig;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One memory request (a 64-byte burst).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// Byte address.
    pub addr: u64,
    /// True for a write, false for a read.
    pub is_write: bool,
    /// Cycle at which the request enters the controller.
    pub arrival: u64,
}

impl Request {
    /// A read arriving at cycle 0.
    pub fn read(addr: u64) -> Request {
        Request { addr, is_write: false, arrival: 0 }
    }

    /// A write arriving at cycle 0.
    pub fn write(addr: u64) -> Request {
        Request { addr, is_write: true, arrival: 0 }
    }
}

/// Decoded address: which bank and row a request targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decoded {
    /// Flat bank index (bank group × banks-per-group + bank).
    pub bank: usize,
    /// Row within the bank.
    pub row: usize,
    /// Column (burst index within the row).
    pub column: usize,
}

/// Aggregate results of running a request trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceResult {
    /// Cycle at which the last request's data completed.
    pub cycles: u64,
    /// Total DRAM energy in picojoules (commands + refresh + background).
    pub energy_pj: f64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Row-buffer misses (bank closed).
    pub row_misses: u64,
    /// Row-buffer conflicts (wrong row open).
    pub row_conflicts: u64,
    /// Requests served.
    pub requests: u64,
    /// Mean request latency (arrival → data) in cycles.
    pub avg_latency: f64,
}

impl TraceResult {
    /// Achieved bandwidth in bytes per cycle.
    pub fn bytes_per_cycle(&self, cfg: &DramConfig) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            (self.requests as f64 * cfg.burst_bytes() as f64) / self.cycles as f64
        }
    }

    /// Row-buffer hit rate over all classified accesses.
    pub fn hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses + self.row_conflicts;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone)]
struct Pending {
    req: Request,
    decoded: Decoded,
    /// Row-buffer outcome recorded at the request's first command.
    classified: bool,
}

/// A single-channel FR-FCFS controller (DRAMsim3-style): row-buffer-hit
/// column commands are prioritized over older row-miss requests, subject to
/// one command per cycle and a shared data bus.
///
/// # Examples
///
/// ```
/// use fractalcloud_dram::{Controller, DramConfig, Request};
///
/// let cfg = DramConfig::ddr4_2133();
/// let mut ctrl = Controller::new(cfg.clone());
/// // Sequential reads of one row: one ACT, then row hits.
/// let reqs: Vec<Request> = (0..8).map(|i| Request::read(i * 64)).collect();
/// let result = ctrl.run_trace(&reqs);
/// assert_eq!(result.row_hits, 7);
/// assert_eq!(result.row_misses, 1);
/// ```
#[derive(Debug, Clone)]
pub struct Controller {
    cfg: DramConfig,
    banks: Vec<Bank>,
    /// Cycle at which the shared data bus frees.
    bus_free: u64,
    /// Next refresh epoch.
    next_refresh: u64,
    energy_pj: f64,
    queue_capacity: usize,
}

impl Controller {
    /// Creates a controller with a 32-entry request window.
    pub fn new(cfg: DramConfig) -> Controller {
        let banks = (0..cfg.banks()).map(|_| Bank::new()).collect();
        let next_refresh = cfg.t_refi;
        Controller { cfg, banks, bus_free: 0, next_refresh, energy_pj: 0.0, queue_capacity: 32 }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Maps a byte address to (bank, row, column) using the streaming-
    /// friendly `row : bank : column : offset` layout: consecutive 64-byte
    /// bursts walk a 2 KB row, then move to the next bank (bank
    /// interleaving), so sequential streams pipeline ACTs across banks.
    pub fn decode(&self, addr: u64) -> Decoded {
        let burst = self.cfg.burst_bytes() as u64;
        let cols = self.cfg.bursts_per_row() as u64;
        let banks = self.cfg.banks() as u64;
        let a = addr / burst;
        let column = (a % cols) as usize;
        let bank = ((a / cols) % banks) as usize;
        let row = ((a / cols / banks) % self.cfg.rows as u64) as usize;
        Decoded { bank, row, column }
    }

    /// Runs a trace to completion and resets nothing: the controller keeps
    /// its bank state, so consecutive traces model phase sequences.
    pub fn run_trace(&mut self, requests: &[Request]) -> TraceResult {
        let mut pending: VecDeque<Pending> = VecDeque::new();
        let mut next_req = 0usize;
        let mut now = 0u64;
        let mut done = 0u64;
        let mut latency_sum = 0u64;
        let mut last_completion = 0u64;
        let energy_before = self.energy_pj;
        let (mut h0, mut m0, mut c0) = self.bank_totals();

        while done < requests.len() as u64 {
            // Admit arrived requests into the window.
            while next_req < requests.len()
                && pending.len() < self.queue_capacity
                && requests[next_req].arrival <= now
            {
                let req = requests[next_req];
                let decoded = self.decode(req.addr);
                pending.push_back(Pending { req, decoded, classified: false });
                next_req += 1;
            }

            // Refresh epoch: all banks stall for tRFC.
            if now >= self.next_refresh {
                for b in &mut self.banks {
                    if matches!(b.state(), BankState::Open(_))
                        && b.can_issue(Command::Precharge, now)
                    {
                        b.issue(Command::Precharge, 0, now, &self.cfg);
                    }
                }
                // Model: refresh blocks the whole rank once banks close.
                let t_rfc = self.cfg.t_rfc;
                now += t_rfc;
                self.energy_pj += self.cfg.refresh_pj;
                self.next_refresh += self.cfg.t_refi;
                continue;
            }

            // FR-FCFS: first pass — oldest request whose next command is a
            // row-hit column command ready now; second pass — oldest
            // request with any ready command.
            let pick = self.pick_fr_fcfs(&pending, now);

            match pick {
                Some(qi) => {
                    let p = &mut pending[qi];
                    let cmd = Controller::next_command(&self.banks[p.decoded.bank], p);
                    let bank = p.decoded.bank;
                    if !p.classified {
                        // The first command this request needs records its
                        // row-buffer outcome.
                        self.banks[bank].classify_access(p.decoded.row);
                        p.classified = true;
                    }
                    self.banks[bank].issue(cmd, p.decoded.row, now, &self.cfg);
                    match cmd {
                        Command::Activate => self.energy_pj += self.cfg.act_pre_pj,
                        Command::Read => self.energy_pj += self.cfg.read_pj,
                        Command::Write => self.energy_pj += self.cfg.write_pj,
                        Command::Precharge => {} // folded into act_pre_pj
                    }
                    if matches!(cmd, Command::Read | Command::Write) {
                        let data_latency = if p.req.is_write {
                            self.cfg.cwl + self.cfg.burst_cycles()
                        } else {
                            self.cfg.cl + self.cfg.burst_cycles()
                        };
                        let completion = now + data_latency;
                        self.bus_free = completion;
                        latency_sum += completion - p.req.arrival;
                        last_completion = last_completion.max(completion);
                        done += 1;
                        pending.remove(qi);
                    }
                    now += 1; // one command per cycle on the command bus
                }
                None => {
                    // Advance to the earliest time anything becomes ready.
                    let mut next = u64::MAX;
                    for p in &pending {
                        let cmd = Controller::next_command(&self.banks[p.decoded.bank], p);
                        let t = self.banks[p.decoded.bank].ready_at(cmd);
                        let t = if matches!(cmd, Command::Read | Command::Write) {
                            t.max(self.bus_free.saturating_sub(self.cfg.cl))
                        } else {
                            t
                        };
                        next = next.min(t);
                    }
                    if next_req < requests.len() {
                        next = next.min(requests[next_req].arrival);
                    }
                    next = next.min(self.next_refresh);
                    now = next.max(now + 1);
                }
            }
        }

        // Background energy for the elapsed window.
        let elapsed_ns = self.cfg.cycles_to_ns(last_completion);
        self.energy_pj += self.cfg.background_mw * 1e-3 * elapsed_ns; // mW × ns = pJ

        let (h1, m1, c1) = self.bank_totals();
        h0 = h1 - h0;
        m0 = m1 - m0;
        c0 = c1 - c0;
        TraceResult {
            cycles: last_completion,
            energy_pj: self.energy_pj - energy_before,
            row_hits: h0,
            row_misses: m0,
            row_conflicts: c0,
            requests: requests.len() as u64,
            avg_latency: if requests.is_empty() {
                0.0
            } else {
                latency_sum as f64 / requests.len() as f64
            },
        }
    }

    fn bank_totals(&self) -> (u64, u64, u64) {
        let mut t = (0, 0, 0);
        for b in &self.banks {
            let s = b.stats();
            t.0 += s.0;
            t.1 += s.1;
            t.2 += s.2;
        }
        t
    }

    /// The next command a request needs, derived from current bank state:
    /// open at the right row → column command; closed → ACT; open at a
    /// different row → PRE.
    fn next_command(bank: &Bank, p: &Pending) -> Command {
        let column = if p.req.is_write { Command::Write } else { Command::Read };
        match bank.state() {
            BankState::Open(r) if r == p.decoded.row => column,
            BankState::Closed => Command::Activate,
            BankState::Open(_) => Command::Precharge,
        }
    }

    /// FR-FCFS arbitration. Returns the queue index to issue from.
    fn pick_fr_fcfs(&self, pending: &VecDeque<Pending>, now: u64) -> Option<usize> {
        let bus_ok = |cmd: Command| match cmd {
            Command::Read | Command::Write => now + self.cfg.cl >= self.bus_free,
            _ => true,
        };
        // Pass 1: ready column commands (row hits).
        for (qi, p) in pending.iter().enumerate() {
            let cmd = Controller::next_command(&self.banks[p.decoded.bank], p);
            if matches!(cmd, Command::Read | Command::Write)
                && self.banks[p.decoded.bank].can_issue(cmd, now)
                && bus_ok(cmd)
            {
                return Some(qi);
            }
        }
        // Pass 2: oldest request with any ready command. Row commands (PRE/
        // ACT) only issue for the *oldest* request targeting their bank, so
        // a younger request never closes a row an older one is about to use.
        let mut seen_banks = [false; 64];
        for (qi, p) in pending.iter().enumerate() {
            let bank_id = p.decoded.bank;
            if seen_banks[bank_id % 64] {
                continue;
            }
            seen_banks[bank_id % 64] = true;
            let cmd = Controller::next_command(&self.banks[bank_id], p);
            if self.banks[bank_id].can_issue(cmd, now) && bus_ok(cmd) {
                return Some(qi);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctrl() -> Controller {
        Controller::new(DramConfig::ddr4_2133())
    }

    #[test]
    fn decode_walks_columns_then_banks() {
        let c = ctrl();
        let d0 = c.decode(0);
        let d1 = c.decode(64);
        assert_eq!(d0.bank, d1.bank);
        assert_eq!(d0.row, d1.row);
        assert_eq!(d1.column, 1);
        // Next row-worth of bytes moves to the next bank.
        let d32 = c.decode(2048);
        assert_eq!(d32.bank, d0.bank + 1);
        assert_eq!(d32.row, d0.row);
    }

    #[test]
    fn sequential_reads_hit_row_buffer() {
        let mut c = ctrl();
        let reqs: Vec<Request> = (0..32).map(|i| Request::read(i * 64)).collect();
        let r = c.run_trace(&reqs);
        assert_eq!(r.row_misses, 1);
        assert_eq!(r.row_hits, 31);
        assert_eq!(r.row_conflicts, 0);
    }

    #[test]
    fn fr_fcfs_batches_row_hits_out_of_order() {
        let mut c = ctrl();
        // Alternate two rows of the same bank, all queued at once: FR-FCFS
        // reorders so each row is opened once — 1 miss, 1 conflict (the row
        // switch), 6 hits.
        let row_stride = 2048 * 16; // one full bank sweep = next row, same bank
        let reqs: Vec<Request> = (0..8).map(|i| Request::read((i % 2) * row_stride * 2)).collect();
        let r = c.run_trace(&reqs);
        assert_eq!(r.row_hits, 6);
        assert_eq!(r.row_conflicts, 1);
        assert_eq!(r.row_misses, 1);
    }

    #[test]
    fn serialized_row_alternation_conflicts_every_time() {
        let mut c = ctrl();
        // Same alternation, but arrivals spaced beyond tRC: no reordering
        // window, so every access after the first is a row conflict.
        let row_stride = 2048u64 * 16;
        let reqs: Vec<Request> = (0..8)
            .map(|i| Request { addr: (i % 2) * row_stride * 2, is_write: false, arrival: i * 1000 })
            .collect();
        let r = c.run_trace(&reqs);
        assert_eq!(r.row_conflicts, 7);
        assert_eq!(r.row_misses, 1);
    }

    #[test]
    fn sequential_bandwidth_approaches_peak() {
        let mut c = ctrl();
        let reqs: Vec<Request> = (0..2048).map(|i| Request::read(i * 64)).collect();
        let r = c.run_trace(&reqs);
        let eff = r.bytes_per_cycle(c.config()) / 16.0; // peak = 16 B/cycle
        assert!(eff > 0.7, "sequential efficiency {eff}");
    }

    #[test]
    fn random_bandwidth_is_far_below_sequential() {
        let mut seq_c = ctrl();
        let seq: Vec<Request> = (0..512).map(|i| Request::read(i * 64)).collect();
        let seq_r = seq_c.run_trace(&seq);

        let mut rnd_c = ctrl();
        // Pathological stride: same bank, new row every time.
        let stride = 2048u64 * 16 * 2;
        let rnd: Vec<Request> = (0..512).map(|i| Request::read(i * stride)).collect();
        let rnd_r = rnd_c.run_trace(&rnd);
        assert!(
            rnd_r.cycles > seq_r.cycles * 4,
            "row-conflict trace ({}) should be ≫ sequential ({})",
            rnd_r.cycles,
            seq_r.cycles
        );
    }

    #[test]
    fn writes_complete_and_cost_energy() {
        let mut c = ctrl();
        let reqs: Vec<Request> = (0..16).map(|i| Request::write(i * 64)).collect();
        let r = c.run_trace(&reqs);
        assert_eq!(r.requests, 16);
        assert!(r.energy_pj > 0.0);
        assert!(r.cycles > 0);
    }

    #[test]
    fn energy_scales_with_activates() {
        let mut seq_c = ctrl();
        let seq: Vec<Request> = (0..256).map(|i| Request::read(i * 64)).collect();
        let seq_r = seq_c.run_trace(&seq);

        let mut rnd_c = ctrl();
        let stride = 2048u64 * 16 * 2;
        let rnd: Vec<Request> = (0..256).map(|i| Request::read(i * stride)).collect();
        let rnd_r = rnd_c.run_trace(&rnd);
        assert!(
            rnd_r.energy_pj > seq_r.energy_pj * 1.5,
            "row-conflict energy {} should exceed sequential {}",
            rnd_r.energy_pj,
            seq_r.energy_pj
        );
    }

    #[test]
    fn empty_trace_is_trivial() {
        let mut c = ctrl();
        let r = c.run_trace(&[]);
        assert_eq!(r.cycles, 0);
        assert_eq!(r.requests, 0);
    }

    #[test]
    fn latency_includes_queueing() {
        let mut c = ctrl();
        // Two conflicting requests: the second waits for PRE+ACT.
        let stride = 2048u64 * 16 * 2;
        let r = c.run_trace(&[Request::read(0), Request::read(stride)]);
        let cfg = DramConfig::ddr4_2133();
        let min_single = cfg.t_rcd + cfg.cl + cfg.burst_cycles();
        assert!(r.avg_latency > min_single as f64);
    }
}

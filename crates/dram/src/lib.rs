//! DDR4 DRAM timing and energy model (DRAMsim3-style) for the FractalCloud
//! reproduction.
//!
//! The paper evaluates every accelerator against DDR4-2133 (17 GB/s) and
//! uses DRAMsim3 for off-chip power. This crate provides:
//!
//! * [`DramConfig`] — organization, JEDEC timings, per-command energies;
//! * [`Bank`] — a protocol-enforcing bank state machine;
//! * [`Controller`] — a cycle-level FR-FCFS single-channel controller used
//!   for exact simulation of short traces and for calibrating...
//! * [`StreamModel`] — the closed-form model the accelerator simulations use
//!   for large-scale workloads (calibrated against the controller by this
//!   crate's tests).
//!
//! # Example
//!
//! ```
//! use fractalcloud_dram::{AccessPattern, DramConfig, StreamModel};
//!
//! let model = StreamModel::new(DramConfig::ddr4_2133());
//! let seq = model.read(1 << 20, AccessPattern::Sequential);
//! let rnd = model.read(1 << 20, AccessPattern::Random);
//! assert!(rnd.cycles > seq.cycles); // random DRAM access is the enemy
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod bank;
mod config;
mod controller;
mod stream;

pub use bank::{Bank, BankState, Command, RowOutcome};
pub use config::DramConfig;
pub use controller::{Controller, Decoded, Request, TraceResult};
pub use stream::{AccessPattern, StreamEstimate, StreamModel};

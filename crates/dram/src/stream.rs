//! Fast analytic DRAM model for very long traces.
//!
//! The cycle-accurate [`Controller`](crate::Controller) is exact but too
//! slow for the paper's large-scale workloads (hundreds of millions of
//! bursts). This module provides a calibrated closed-form model with the
//! same interface outputs (cycles, energy, hit statistics); the calibration
//! constants are cross-checked against the cycle model by unit tests in
//! this file, so the two stay consistent by construction.

use crate::config::DramConfig;
use serde::{Deserialize, Serialize};

/// Access-pattern classes the accelerator models emit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Long unit-stride bursts (post-Fractal DFT streams, weight streams).
    Sequential,
    /// Random 64-byte granules across a working set much larger than the
    /// row buffers (conventional gather / global search spills).
    Random,
    /// Random accesses with `granule` contiguous bytes each (block loads at
    /// random block addresses).
    Strided {
        /// Contiguous bytes fetched per access.
        granule: usize,
    },
}

/// Result of an analytic transfer estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamEstimate {
    /// DRAM-clock cycles occupied.
    pub cycles: u64,
    /// Energy in picojoules.
    pub energy_pj: f64,
    /// Bursts transferred.
    pub bursts: u64,
    /// Estimated row-buffer hit rate.
    pub hit_rate: f64,
}

impl StreamEstimate {
    /// Zero-traffic estimate.
    pub fn zero() -> StreamEstimate {
        StreamEstimate { cycles: 0, energy_pj: 0.0, bursts: 0, hit_rate: 1.0 }
    }

    /// Combines two estimates (traffic phases executed back-to-back).
    pub fn merge(&self, other: &StreamEstimate) -> StreamEstimate {
        let bursts = self.bursts + other.bursts;
        StreamEstimate {
            cycles: self.cycles + other.cycles,
            energy_pj: self.energy_pj + other.energy_pj,
            bursts,
            hit_rate: if bursts == 0 {
                1.0
            } else {
                (self.hit_rate * self.bursts as f64 + other.hit_rate * other.bursts as f64)
                    / bursts as f64
            },
        }
    }

    /// Wall-clock time in nanoseconds.
    pub fn ns(&self, cfg: &DramConfig) -> f64 {
        cfg.cycles_to_ns(self.cycles)
    }
}

/// Calibrated analytic DRAM model.
///
/// Sequential streams run at `SEQ_EFFICIENCY` of peak; random 64-byte
/// granules are bank-parallelism-limited to one burst per
/// `tRC / min(banks, 4-ish overlap)`; strided transfers amortize one
/// ACT/PRE per granule.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamModel {
    cfg: DramConfig,
    /// Fraction of peak bandwidth achieved by long sequential streams
    /// (calibrated against the cycle model: see tests).
    pub seq_efficiency: f64,
    /// Effective bank-level parallelism for random granules.
    pub random_blp: f64,
}

impl StreamModel {
    /// Creates a model with calibration defaults for DDR4-2133.
    pub fn new(cfg: DramConfig) -> StreamModel {
        StreamModel { cfg, seq_efficiency: 0.80, random_blp: 4.0 }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Estimates a transfer of `bytes` (reads) with the given pattern.
    pub fn read(&self, bytes: u64, pattern: AccessPattern) -> StreamEstimate {
        self.transfer(bytes, pattern, false)
    }

    /// Estimates a transfer of `bytes` (writes) with the given pattern.
    pub fn write(&self, bytes: u64, pattern: AccessPattern) -> StreamEstimate {
        self.transfer(bytes, pattern, true)
    }

    fn transfer(&self, bytes: u64, pattern: AccessPattern, is_write: bool) -> StreamEstimate {
        if bytes == 0 {
            return StreamEstimate::zero();
        }
        let cfg = &self.cfg;
        let burst_bytes = cfg.burst_bytes() as u64;
        let bursts = bytes.div_ceil(burst_bytes);
        let burst_cycles = cfg.burst_cycles();
        let col_pj = if is_write { cfg.write_pj } else { cfg.read_pj };

        let (cycles, acts, hit_rate) = match pattern {
            AccessPattern::Sequential => {
                // One ACT per row's worth of bursts; bandwidth-limited.
                let acts = bytes.div_ceil(cfg.row_bytes as u64);
                let data_cycles = (bursts * burst_cycles) as f64 / self.seq_efficiency;
                (data_cycles.ceil() as u64, acts, 1.0 - acts as f64 / bursts.max(1) as f64)
            }
            AccessPattern::Random => {
                // Every burst pays ACT+column; overlapped across random_blp
                // banks.
                let per = cfg.t_rc as f64 / self.random_blp;
                let data_floor = (bursts * burst_cycles) as f64;
                let cyc = (bursts as f64 * per).max(data_floor);
                (cyc.ceil() as u64, bursts, 0.0)
            }
            AccessPattern::Strided { granule } => {
                let granule = granule.max(burst_bytes as usize) as u64;
                let accesses = bytes.div_ceil(granule);
                let bursts_per_access = granule.div_ceil(burst_bytes);
                // Each access: one row miss then hits; row-crossing ignored
                // for granules ≤ row size.
                let acts = accesses * granule.div_ceil(cfg.row_bytes as u64).max(1);
                let per_access = cfg.t_rcd as f64
                    + (bursts_per_access * burst_cycles) as f64 / self.seq_efficiency;
                let cyc = (accesses as f64 * per_access) / self.random_blp.min(2.0);
                // Never faster than the sequential stream of the same size.
                let data_floor = (bursts * burst_cycles) as f64 / self.seq_efficiency;
                (cyc.max(data_floor).ceil() as u64, acts, 1.0 - acts as f64 / bursts.max(1) as f64)
            }
        };

        // Refresh overhead: tRFC out of every tREFI.
        let refresh_factor = 1.0 + cfg.t_rfc as f64 / cfg.t_refi as f64;
        let cycles = (cycles as f64 * refresh_factor).ceil() as u64;

        let mut energy = acts as f64 * cfg.act_pre_pj + bursts as f64 * col_pj;
        energy += cfg.background_mw * 1e-3 * cfg.cycles_to_ns(cycles);
        StreamEstimate { cycles, energy_pj: energy, bursts, hit_rate: hit_rate.clamp(0.0, 1.0) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{Controller, Request};

    /// The analytic sequential model must stay within 25% of the cycle
    /// model — this is the calibration contract.
    #[test]
    fn sequential_calibration_matches_cycle_model() {
        let cfg = DramConfig::ddr4_2133();
        let bytes = 512 * 1024u64;
        let mut ctrl = Controller::new(cfg.clone());
        let reqs: Vec<Request> = (0..bytes / 64).map(|i| Request::read(i * 64)).collect();
        let exact = ctrl.run_trace(&reqs);
        let model = StreamModel::new(cfg).read(bytes, AccessPattern::Sequential);
        let ratio = model.cycles as f64 / exact.cycles as f64;
        assert!((0.75..=1.25).contains(&ratio), "sequential ratio {ratio}");
    }

    #[test]
    fn random_calibration_matches_cycle_model() {
        let cfg = DramConfig::ddr4_2133();
        // Random-ish: large prime stride so banks/rows scatter.
        let n = 4096u64;
        let mut ctrl = Controller::new(cfg.clone());
        let stride = 786_433u64 * 64; // prime × burst
        let reqs: Vec<Request> = (0..n).map(|i| Request::read((i * stride) % (1 << 33))).collect();
        let exact = ctrl.run_trace(&reqs);
        let model = StreamModel::new(cfg).read(n * 64, AccessPattern::Random);
        let ratio = model.cycles as f64 / exact.cycles as f64;
        assert!((0.5..=2.0).contains(&ratio), "random ratio {ratio}");
    }

    #[test]
    fn random_is_much_slower_than_sequential() {
        let model = StreamModel::new(DramConfig::ddr4_2133());
        let bytes = 1 << 24;
        let seq = model.read(bytes, AccessPattern::Sequential);
        let rnd = model.read(bytes, AccessPattern::Random);
        assert!(rnd.cycles > seq.cycles * 2, "random {} vs sequential {}", rnd.cycles, seq.cycles);
        assert!(rnd.energy_pj > seq.energy_pj * 2.0);
    }

    #[test]
    fn strided_interpolates_between_extremes() {
        let model = StreamModel::new(DramConfig::ddr4_2133());
        let bytes = 1 << 22;
        let seq = model.read(bytes, AccessPattern::Sequential);
        let rnd = model.read(bytes, AccessPattern::Random);
        let strided = model.read(bytes, AccessPattern::Strided { granule: 1024 });
        assert!(strided.cycles >= seq.cycles);
        assert!(strided.cycles <= rnd.cycles);
    }

    #[test]
    fn zero_bytes_is_free() {
        let model = StreamModel::new(DramConfig::ddr4_2133());
        let e = model.read(0, AccessPattern::Sequential);
        assert_eq!(e.cycles, 0);
        assert_eq!(e.energy_pj, 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let model = StreamModel::new(DramConfig::ddr4_2133());
        let a = model.read(1 << 20, AccessPattern::Sequential);
        let b = model.read(1 << 20, AccessPattern::Random);
        let m = a.merge(&b);
        assert_eq!(m.cycles, a.cycles + b.cycles);
        assert_eq!(m.bursts, a.bursts + b.bursts);
        assert!((m.energy_pj - (a.energy_pj + b.energy_pj)).abs() < 1e-6);
    }

    #[test]
    fn writes_cost_slightly_more_than_reads() {
        let model = StreamModel::new(DramConfig::ddr4_2133());
        let r = model.read(1 << 20, AccessPattern::Sequential);
        let w = model.write(1 << 20, AccessPattern::Sequential);
        assert!(w.energy_pj > r.energy_pj);
    }

    #[test]
    fn sequential_hit_rate_is_high() {
        let model = StreamModel::new(DramConfig::ddr4_2133());
        let e = model.read(1 << 22, AccessPattern::Sequential);
        assert!(e.hit_rate > 0.9);
        let r = model.read(1 << 22, AccessPattern::Random);
        assert_eq!(r.hit_rate, 0.0);
    }
}

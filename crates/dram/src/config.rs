//! DDR4 device configuration: organization, timing, and energy parameters.

use serde::{Deserialize, Serialize};

/// DDR4 organization and timing parameters, in memory-clock cycles.
///
/// Defaults model the paper's evaluation memory, **DDR4-2133 with a 64-bit
/// channel (17 GB/s peak)**, with JEDEC-typical grade timings (CL15). The
/// energy constants follow the DRAMsim3 methodology (IDD-derived per-command
/// energies) collapsed to per-event picojoules.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    // ---- organization ----
    /// Independent channels (each with its own controller).
    pub channels: usize,
    /// Ranks per channel.
    pub ranks: usize,
    /// Bank groups per rank (DDR4: 4).
    pub bank_groups: usize,
    /// Banks per bank group (DDR4: 4).
    pub banks_per_group: usize,
    /// Rows per bank.
    pub rows: usize,
    /// Row (page) size in bytes.
    pub row_bytes: usize,
    /// Data-bus width in bytes (x64 channel = 8).
    pub bus_bytes: usize,
    /// Burst length in beats (DDR4: 8 → 64-byte transactions).
    pub burst_length: usize,

    // ---- clocking ----
    /// Memory-clock period in picoseconds (DDR4-2133: I/O at 1066.5 MHz,
    /// tCK ≈ 937 ps).
    pub t_ck_ps: u64,

    // ---- timings (cycles) ----
    /// ACT → internal read/write delay.
    pub t_rcd: u64,
    /// PRE → ACT delay.
    pub t_rp: u64,
    /// CAS (read) latency.
    pub cl: u64,
    /// CAS write latency.
    pub cwl: u64,
    /// ACT → PRE minimum.
    pub t_ras: u64,
    /// ACT → ACT same bank.
    pub t_rc: u64,
    /// Column-to-column, same bank group.
    pub t_ccd_l: u64,
    /// Column-to-column, different bank group.
    pub t_ccd_s: u64,
    /// Write recovery (end of write data → PRE).
    pub t_wr: u64,
    /// ACT → ACT different banks, same rank.
    pub t_rrd: u64,
    /// Refresh cycle time.
    pub t_rfc: u64,
    /// Average refresh interval.
    pub t_refi: u64,

    // ---- energy (picojoules / milliwatts) ----
    /// Energy of one ACT + PRE pair.
    pub act_pre_pj: f64,
    /// Energy of one read burst (column access + I/O, 64 B).
    pub read_pj: f64,
    /// Energy of one write burst.
    pub write_pj: f64,
    /// Energy of one refresh operation (per rank).
    pub refresh_pj: f64,
    /// Background (standby) power per rank, in milliwatts.
    pub background_mw: f64,
}

impl DramConfig {
    /// DDR4-2133, 64-bit channel, 17 GB/s — the configuration every
    /// accelerator in Table II is evaluated with.
    pub fn ddr4_2133() -> DramConfig {
        DramConfig {
            channels: 1,
            ranks: 1,
            bank_groups: 4,
            banks_per_group: 4,
            rows: 32768,
            row_bytes: 2048,
            bus_bytes: 8,
            burst_length: 8,
            t_ck_ps: 937,
            t_rcd: 15,
            t_rp: 15,
            cl: 15,
            cwl: 11,
            t_ras: 33,
            t_rc: 47,
            t_ccd_l: 6,
            t_ccd_s: 4,
            t_wr: 16,
            t_rrd: 5,
            t_rfc: 374,   // 350 ns
            t_refi: 8316, // 7.8 µs
            // Micron DDR4 datasheet-derived approximations (8 Gb x8 dies,
            // one-rank x64 DIMM): ACT+PRE ≈ 1.8 nJ, RD/WR burst ≈ 1.1 nJ
            // (≈17 pJ/byte), REF ≈ 27 nJ, standby ≈ 110 mW.
            act_pre_pj: 1800.0,
            read_pj: 1100.0,
            write_pj: 1150.0,
            refresh_pj: 27000.0,
            background_mw: 110.0,
        }
    }

    /// Total banks per channel.
    pub fn banks(&self) -> usize {
        self.bank_groups * self.banks_per_group
    }

    /// Bytes transferred by one burst.
    pub fn burst_bytes(&self) -> usize {
        self.bus_bytes * self.burst_length
    }

    /// Bus cycles occupied by one burst's data (DDR: two beats per clock).
    pub fn burst_cycles(&self) -> u64 {
        (self.burst_length / 2).max(1) as u64
    }

    /// Peak bandwidth in bytes per second.
    pub fn peak_bandwidth(&self) -> f64 {
        // Two beats per clock (DDR), bus_bytes per beat.
        let clock_hz = 1.0e12 / self.t_ck_ps as f64;
        2.0 * clock_hz * self.bus_bytes as f64 * self.channels as f64
    }

    /// Converts a cycle count to nanoseconds.
    pub fn cycles_to_ns(&self, cycles: u64) -> f64 {
        cycles as f64 * self.t_ck_ps as f64 / 1000.0
    }

    /// Columns (bursts) per row.
    pub fn bursts_per_row(&self) -> usize {
        self.row_bytes / self.burst_bytes()
    }
}

impl Default for DramConfig {
    fn default() -> DramConfig {
        DramConfig::ddr4_2133()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddr4_2133_peak_bandwidth_is_17gbs() {
        let c = DramConfig::ddr4_2133();
        let gbps = c.peak_bandwidth() / 1e9;
        assert!((gbps - 17.06).abs() < 0.1, "peak {gbps} GB/s");
    }

    #[test]
    fn burst_is_64_bytes() {
        let c = DramConfig::ddr4_2133();
        assert_eq!(c.burst_bytes(), 64);
        assert_eq!(c.burst_cycles(), 4);
        assert_eq!(c.banks(), 16);
    }

    #[test]
    fn timing_relations_hold() {
        let c = DramConfig::ddr4_2133();
        // JEDEC: tRC = tRAS + tRP.
        assert!(c.t_rc >= c.t_ras + c.t_rp - 1);
        assert!(c.t_ccd_l >= c.t_ccd_s);
        assert!(c.t_refi > c.t_rfc);
    }

    #[test]
    fn cycles_to_ns_conversion() {
        let c = DramConfig::ddr4_2133();
        assert!((c.cycles_to_ns(1000) - 937.0).abs() < 1e-9);
    }

    #[test]
    fn bursts_per_row() {
        let c = DramConfig::ddr4_2133();
        assert_eq!(c.bursts_per_row(), 32);
    }
}

//! Per-bank state machine enforcing DDR4 timing constraints.

use crate::config::DramConfig;
use serde::{Deserialize, Serialize};

/// The DRAM commands a bank accepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Command {
    /// Open (activate) a row.
    Activate,
    /// Read one burst from the open row.
    Read,
    /// Write one burst to the open row.
    Write,
    /// Close (precharge) the open row.
    Precharge,
}

/// Row-buffer state of one bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BankState {
    /// No row open (precharged).
    Closed,
    /// Row `row` is open in the row buffer.
    Open(usize),
}

/// One DDR4 bank: open-row tracking plus earliest-issue timestamps for each
/// command class, updated as commands issue.
///
/// Timing enforced: tRCD (ACT→column), tRP (PRE→ACT), tRAS (ACT→PRE),
/// tRC (ACT→ACT), CL/CWL + burst (column→column data bus), tWR (write
/// recovery before PRE).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bank {
    state: BankState,
    /// Earliest cycle an ACT may issue.
    next_act: u64,
    /// Earliest cycle a column command (RD/WR) may issue.
    next_column: u64,
    /// Earliest cycle a PRE may issue.
    next_pre: u64,
    /// Cycle of the last ACT (for tRAS/tRC bookkeeping).
    last_act: u64,
    /// Row-buffer statistics.
    hits: u64,
    misses: u64,
    conflicts: u64,
}

impl Bank {
    /// A closed, immediately-usable bank.
    pub fn new() -> Bank {
        Bank {
            state: BankState::Closed,
            next_act: 0,
            next_column: 0,
            next_pre: 0,
            last_act: 0,
            hits: 0,
            misses: 0,
            conflicts: 0,
        }
    }

    /// Current row-buffer state.
    pub fn state(&self) -> BankState {
        self.state
    }

    /// `(row-hits, row-misses, row-conflicts)` classified at access time.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.conflicts)
    }

    /// Earliest cycle at which `cmd` may legally issue.
    pub fn ready_at(&self, cmd: Command) -> u64 {
        match cmd {
            Command::Activate => self.next_act,
            Command::Read | Command::Write => self.next_column,
            Command::Precharge => self.next_pre,
        }
    }

    /// True if `cmd` may issue at `now`.
    pub fn can_issue(&self, cmd: Command, now: u64) -> bool {
        if now < self.ready_at(cmd) {
            return false;
        }
        match cmd {
            Command::Activate => self.state == BankState::Closed,
            Command::Read | Command::Write => matches!(self.state, BankState::Open(_)),
            Command::Precharge => matches!(self.state, BankState::Open(_)),
        }
    }

    /// Issues `cmd` at cycle `now`, updating the timing state.
    ///
    /// For `Activate`, `row` selects the row; ignored otherwise.
    ///
    /// # Panics
    ///
    /// Panics if the command violates protocol (wrong state or too early) —
    /// the controller must check [`Bank::can_issue`] first. This hard
    /// failure is what the protocol property tests rely on.
    pub fn issue(&mut self, cmd: Command, row: usize, now: u64, cfg: &DramConfig) {
        assert!(
            self.can_issue(cmd, now),
            "protocol violation: {cmd:?} at {now}, state {:?}, ready {}",
            self.state,
            self.ready_at(cmd)
        );
        match cmd {
            Command::Activate => {
                self.state = BankState::Open(row);
                self.last_act = now;
                self.next_column = now + cfg.t_rcd;
                self.next_pre = now + cfg.t_ras;
                self.next_act = now + cfg.t_rc;
            }
            Command::Read => {
                // Bank is busy for the column-to-column window; data appears
                // CL + burst later (the controller accounts completion).
                self.next_column = now + cfg.t_ccd_l;
                self.next_pre = self.next_pre.max(now + cfg.cl + cfg.burst_cycles());
            }
            Command::Write => {
                self.next_column = now + cfg.t_ccd_l;
                // PRE must wait for write recovery after the data burst.
                self.next_pre = self.next_pre.max(now + cfg.cwl + cfg.burst_cycles() + cfg.t_wr);
            }
            Command::Precharge => {
                self.state = BankState::Closed;
                self.next_act = self.next_act.max(now + cfg.t_rp);
            }
        }
    }

    /// Classifies an access to `row` against the current row buffer and
    /// records the outcome: hit (open, same row), miss (closed), or conflict
    /// (open, different row).
    pub fn classify_access(&mut self, row: usize) -> RowOutcome {
        match self.state {
            BankState::Open(r) if r == row => {
                self.hits += 1;
                RowOutcome::Hit
            }
            BankState::Closed => {
                self.misses += 1;
                RowOutcome::Miss
            }
            BankState::Open(_) => {
                self.conflicts += 1;
                RowOutcome::Conflict
            }
        }
    }
}

impl Default for Bank {
    fn default() -> Bank {
        Bank::new()
    }
}

/// Row-buffer outcome of an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowOutcome {
    /// Same row already open — column command only.
    Hit,
    /// Bank closed — ACT then column.
    Miss,
    /// Different row open — PRE, ACT, column.
    Conflict,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DramConfig {
        DramConfig::ddr4_2133()
    }

    #[test]
    fn activate_then_read_obeys_trcd() {
        let cfg = cfg();
        let mut b = Bank::new();
        b.issue(Command::Activate, 7, 0, &cfg);
        assert!(!b.can_issue(Command::Read, cfg.t_rcd - 1));
        assert!(b.can_issue(Command::Read, cfg.t_rcd));
    }

    #[test]
    fn precharge_waits_for_tras() {
        let cfg = cfg();
        let mut b = Bank::new();
        b.issue(Command::Activate, 1, 0, &cfg);
        assert!(!b.can_issue(Command::Precharge, cfg.t_ras - 1));
        assert!(b.can_issue(Command::Precharge, cfg.t_ras));
    }

    #[test]
    fn act_to_act_obeys_trc_and_trp() {
        let cfg = cfg();
        let mut b = Bank::new();
        b.issue(Command::Activate, 1, 0, &cfg);
        b.issue(Command::Precharge, 0, cfg.t_ras, &cfg);
        // Next ACT: max(tRC, tRAS + tRP).
        let earliest = cfg.t_rc.max(cfg.t_ras + cfg.t_rp);
        assert!(!b.can_issue(Command::Activate, earliest - 1));
        assert!(b.can_issue(Command::Activate, earliest));
    }

    #[test]
    fn cannot_read_closed_bank() {
        let b = Bank::new();
        assert!(!b.can_issue(Command::Read, 1000));
        assert!(b.can_issue(Command::Activate, 0));
    }

    #[test]
    fn write_recovery_delays_precharge() {
        let cfg = cfg();
        let mut b = Bank::new();
        b.issue(Command::Activate, 1, 0, &cfg);
        let wr_at = cfg.t_rcd;
        b.issue(Command::Write, 0, wr_at, &cfg);
        let pre_ready = (wr_at + cfg.cwl + cfg.burst_cycles() + cfg.t_wr).max(cfg.t_ras);
        assert!(!b.can_issue(Command::Precharge, pre_ready - 1));
        assert!(b.can_issue(Command::Precharge, pre_ready));
    }

    #[test]
    fn consecutive_reads_obey_tccd() {
        let cfg = cfg();
        let mut b = Bank::new();
        b.issue(Command::Activate, 1, 0, &cfg);
        b.issue(Command::Read, 0, cfg.t_rcd, &cfg);
        assert!(!b.can_issue(Command::Read, cfg.t_rcd + cfg.t_ccd_l - 1));
        assert!(b.can_issue(Command::Read, cfg.t_rcd + cfg.t_ccd_l));
    }

    #[test]
    #[should_panic(expected = "protocol violation")]
    fn early_command_panics() {
        let cfg = cfg();
        let mut b = Bank::new();
        b.issue(Command::Activate, 1, 0, &cfg);
        b.issue(Command::Read, 0, 1, &cfg); // violates tRCD
    }

    #[test]
    fn access_classification_counts() {
        let cfg = cfg();
        let mut b = Bank::new();
        assert_eq!(b.classify_access(5), RowOutcome::Miss);
        b.issue(Command::Activate, 5, 0, &cfg);
        assert_eq!(b.classify_access(5), RowOutcome::Hit);
        assert_eq!(b.classify_access(9), RowOutcome::Conflict);
        assert_eq!(b.stats(), (1, 1, 1));
    }
}

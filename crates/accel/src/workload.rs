//! Workload preparation: clouds, traces, and measured partition structure.

use fractalcloud_core::{Fractal, FractalConfig};
use fractalcloud_pnn::{ModelConfig, OpTrace, Task};
use fractalcloud_pointcloud::generate::{object_cloud, scene_cloud, ObjectKind, SceneConfig};
use fractalcloud_pointcloud::partition::{
    KdTreePartitioner, PartitionCost, Partitioner, UniformPartitioner,
};
use fractalcloud_pointcloud::PointCloud;

/// A fully-prepared workload: the network trace plus the *measured*
/// partition structure of a representative input cloud. Accelerator models
/// consume block-size distributions and partition costs, never re-running
/// `O(n²)` reference code.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The network.
    pub model: ModelConfig,
    /// Its shape-level trace at `n` points.
    pub trace: OpTrace,
    /// Input size.
    pub n: usize,
    /// Fractal threshold used (64 for classification, 256 for segmentation,
    /// §VI-B).
    pub threshold: usize,
    /// Measured fractal block sizes (DFT order).
    pub fractal_blocks: Vec<usize>,
    /// Measured fractal build cost.
    pub fractal_cost: PartitionCost,
    /// Number of fractal iterations executed.
    pub fractal_iterations: usize,
    /// Measured KD-tree block sizes.
    pub kd_blocks: Vec<usize>,
    /// Measured KD-tree build cost (sorts, sorted elements, compares).
    pub kd_cost: PartitionCost,
    /// Measured uniform-grid block sizes.
    pub uniform_blocks: Vec<usize>,
    /// Measured uniform-grid build cost.
    pub uniform_cost: PartitionCost,
}

impl Workload {
    /// Prepares the workload for `model` on `n` points: generates a cloud
    /// matched to the task's dataset (Table I), partitions it three ways,
    /// and builds the trace.
    pub fn prepare(model: &ModelConfig, n: usize, seed: u64) -> Workload {
        let cloud = cloud_for_task(model.task, n, seed);
        let threshold = match model.task {
            Task::Classification => 64,
            _ => 256,
        };
        Workload::prepare_with_threshold(model, &cloud, threshold)
    }

    /// Same, with an explicit cloud and fractal threshold (used by the
    /// threshold-sweep experiment, Fig. 17).
    pub fn prepare_with_threshold(
        model: &ModelConfig,
        cloud: &PointCloud,
        threshold: usize,
    ) -> Workload {
        let n = cloud.len();
        let trace = OpTrace::build(model, n);

        let fractal =
            Fractal::new(FractalConfig::new(threshold)).build(cloud).expect("non-empty cloud");
        let kd = KdTreePartitioner::new(threshold).partition(cloud).expect("non-empty cloud");
        let uniform = UniformPartitioner::with_target_block_size(threshold)
            .partition(cloud)
            .expect("non-empty cloud");

        Workload {
            model: model.clone(),
            trace,
            n,
            threshold,
            fractal_blocks: fractal.partition.blocks.iter().map(|b| b.len()).collect(),
            fractal_cost: fractal.partition.cost,
            fractal_iterations: fractal.iterations,
            kd_blocks: kd.blocks.iter().map(|b| b.len()).collect(),
            kd_cost: kd.cost,
            uniform_blocks: uniform.blocks.iter().map(|b| b.len()).collect(),
            uniform_cost: uniform.cost,
        }
    }
}

/// Generates the dataset-matched cloud for a task (Table I: ModelNet40
/// objects for classification, ShapeNet-like objects for part segmentation,
/// S3DIS-like scenes for segmentation).
pub fn cloud_for_task(task: Task, n: usize, seed: u64) -> PointCloud {
    match task {
        Task::Classification => object_cloud(ObjectKind::from_seed(seed), n, seed),
        Task::PartSegmentation => object_cloud(ObjectKind::Airplane, n, seed),
        Task::Segmentation => scene_cloud(&SceneConfig::default(), n, seed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_builds_all_three_partitions() {
        let model = ModelConfig::pointnext_segmentation();
        let w = Workload::prepare(&model, 4096, 1);
        assert_eq!(w.threshold, 256);
        assert_eq!(w.fractal_blocks.iter().sum::<usize>(), 4096);
        assert_eq!(w.kd_blocks.iter().sum::<usize>(), 4096);
        assert_eq!(w.uniform_blocks.iter().sum::<usize>(), 4096);
        assert!(w.kd_cost.sort_invocations > 0);
        assert_eq!(w.fractal_cost.sort_invocations, 0);
    }

    #[test]
    fn classification_uses_small_threshold() {
        let model = ModelConfig::pointnetpp_classification();
        let w = Workload::prepare(&model, 1024, 2);
        assert_eq!(w.threshold, 64);
        assert!(w.fractal_blocks.iter().all(|&b| b <= 64));
    }

    #[test]
    fn fractal_blocks_bounded_by_threshold() {
        let model = ModelConfig::pointnext_segmentation();
        let w = Workload::prepare(&model, 8192, 3);
        assert!(w.fractal_blocks.iter().all(|&b| b <= 256));
    }
}

//! Analytic work models for point operations at scales where executing the
//! real `O(n²)` reference is infeasible (the paper evaluates up to 289K and
//! 1M points).
//!
//! Every closed form here is cross-validated against the *measured*
//! counters of the executable implementations at small scales by the tests
//! at the bottom of this file — the same methodology as calibrating a fast
//! model against a cycle-accurate one.

use fractalcloud_pointcloud::ops::OpCounters;

/// Bytes per point record at FP16 (x, y, z).
pub const COORD_BYTES: u64 = 6;
/// Bytes per feature scalar at FP16.
pub const SCALAR_BYTES: u64 = 2;

/// Counters of a *global* FPS selecting `m` of `n` points (§II-B: `m − 1`
/// iterations, each an all-candidate traversal).
pub fn global_fps(n: usize, m: usize) -> OpCounters {
    global_fps_with_window(n, m, false)
}

/// Global FPS with an optional window-check skip: iteration `k` visits only
/// the `n − k` still-unsampled candidates instead of all `n` (Fig. 11(c)).
pub fn global_fps_with_window(n: usize, m: usize, window_check: bool) -> OpCounters {
    let iters = m.saturating_sub(1) as u64;
    let n64 = n as u64;
    let (evals, skipped) = if window_check {
        let saved = iters * (iters + 1) / 2;
        (iters * n64 - saved, saved)
    } else {
        (iters * n64, 0)
    };
    OpCounters {
        distance_evals: evals,
        comparisons: 2 * evals,
        coord_reads: evals,
        writes: m as u64,
        skipped,
        ..Default::default()
    }
}

/// Counters of a global ball query / KNN: every center scans every
/// candidate.
pub fn global_neighbor(centers: usize, candidates: usize, num: usize) -> OpCounters {
    let evals = centers as u64 * candidates as u64;
    OpCounters {
        distance_evals: evals,
        comparisons: evals,
        coord_reads: evals,
        writes: (centers * num) as u64,
        ..Default::default()
    }
}

/// Counters of a gather resolving `rows × num` indices.
pub fn gather(rows: usize, num: usize) -> OpCounters {
    OpCounters {
        feature_reads: (rows * num) as u64,
        writes: (rows * num) as u64,
        ..Default::default()
    }
}

/// Per-block work of block-wise FPS at a fixed `rate`, with or without the
/// window-check skip.
///
/// Without skip, block `b` costs `(m_b − 1) · n_b` evals. With skip,
/// iteration `k` visits only the `n_b − k` unsampled candidates:
/// `Σ_{k=1}^{m_b−1} (n_b − k)`.
///
/// Returns `(total, critical_block, per_block_evals)`.
pub fn block_fps(
    block_sizes: &[usize],
    rate: f64,
    window_check: bool,
) -> (OpCounters, OpCounters, Vec<u64>) {
    let mut total = OpCounters::new();
    let mut critical = OpCounters::new();
    let mut per_block = Vec::with_capacity(block_sizes.len());
    for &n_b in block_sizes {
        let m_b = ((n_b as f64) * rate).round() as u64;
        let n_b = n_b as u64;
        let iters = m_b.saturating_sub(1);
        let evals = if window_check {
            // Σ_{k=1}^{iters} (n_b − k)
            iters * n_b - iters * (iters + 1) / 2
        } else {
            iters * n_b
        };
        let skipped = if window_check { iters * (iters + 1) / 2 } else { 0 };
        let c = OpCounters {
            distance_evals: evals,
            comparisons: 2 * evals,
            coord_reads: evals,
            writes: m_b,
            skipped,
            ..Default::default()
        };
        per_block.push(evals);
        total.merge(&c);
        if c.distance_evals >= critical.distance_evals {
            critical = c;
        }
    }
    (total, critical, per_block)
}

/// Per-block work of block-wise neighbor search: block `b` has
/// `centers_rate · n_b` centers, each scanning `search_factor · n_b`
/// candidates (`search_factor` ≈ 2 with parent expansion, 1 without).
///
/// Returns `(total, critical_block, per_block_evals)`.
pub fn block_neighbor(
    block_sizes: &[usize],
    centers_rate: f64,
    search_factor: f64,
    num: usize,
) -> (OpCounters, OpCounters, Vec<u64>) {
    let mut total = OpCounters::new();
    let mut critical = OpCounters::new();
    let mut per_block = Vec::with_capacity(block_sizes.len());
    for &n_b in block_sizes {
        let centers = ((n_b as f64) * centers_rate).round() as u64;
        let candidates = ((n_b as f64) * search_factor).round() as u64;
        let evals = centers * candidates;
        let c = OpCounters {
            distance_evals: evals,
            comparisons: evals,
            coord_reads: evals,
            writes: centers * num as u64,
            ..Default::default()
        };
        per_block.push(evals);
        total.merge(&c);
        if c.distance_evals >= critical.distance_evals {
            critical = c;
        }
    }
    (total, critical, per_block)
}

/// Block sizes after `stage` rounds of 1/4 sampling: the samples of a block
/// stay in that block, so each stage scales every block by the cumulative
/// rate (empty blocks drop out).
pub fn stage_block_sizes(base: &[usize], rate: f64, stage: u32) -> Vec<usize> {
    let factor = rate.powi(stage as i32);
    base.iter().map(|&s| ((s as f64) * factor).round() as usize).filter(|&s| s > 0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractalcloud_core::{block_fps as run_block_fps, BppoConfig, Fractal};
    use fractalcloud_pointcloud::generate::{scene_cloud, SceneConfig};
    use fractalcloud_pointcloud::ops::farthest_point_sample;

    /// The analytic global-FPS counters must match the implementation
    /// exactly.
    #[test]
    fn global_fps_matches_measured() {
        let cloud = scene_cloud(&SceneConfig::default(), 1500, 1);
        let measured = farthest_point_sample(&cloud, 300, 0).unwrap().counters;
        let analytic = global_fps(1500, 300);
        assert_eq!(analytic.distance_evals, measured.distance_evals);
        assert_eq!(analytic.coord_reads, measured.coord_reads);
        assert_eq!(analytic.writes, measured.writes);
    }

    /// The analytic block-FPS counters must track the measured ones within
    /// a few percent (rounding of per-block sample counts differs).
    #[test]
    fn block_fps_matches_measured() {
        let cloud = scene_cloud(&SceneConfig::default(), 4096, 2);
        let part = Fractal::with_threshold(256).build(&cloud).unwrap().partition;
        let sizes: Vec<usize> = part.blocks.iter().map(|b| b.len()).collect();
        let measured =
            run_block_fps(&cloud, &part, 0.25, &BppoConfig::sequential()).unwrap().counters;
        let (analytic, _, _) = block_fps(&sizes, 0.25, true);
        let ratio = analytic.distance_evals as f64 / measured.distance_evals as f64;
        assert!((0.95..=1.05).contains(&ratio), "block FPS ratio {ratio}");
    }

    #[test]
    fn window_check_saves_triangular_work() {
        let sizes = vec![256usize; 16];
        let (with, _, _) = block_fps(&sizes, 0.25, true);
        let (without, _, _) = block_fps(&sizes, 0.25, false);
        assert!(with.distance_evals < without.distance_evals);
        assert_eq!(
            without.distance_evals - with.distance_evals,
            with.skipped,
            "saved work must equal skip count"
        );
    }

    #[test]
    fn block_neighbor_scales_with_parent_factor() {
        let sizes = vec![256usize; 8];
        let (own, _, _) = block_neighbor(&sizes, 0.25, 1.0, 16);
        let (parent, _, _) = block_neighbor(&sizes, 0.25, 2.0, 16);
        assert_eq!(parent.distance_evals, 2 * own.distance_evals);
    }

    #[test]
    fn stage_sizes_shrink_and_drop_empties() {
        let base = vec![256, 200, 3, 64];
        let s1 = stage_block_sizes(&base, 0.25, 1);
        assert_eq!(s1, vec![64, 50, 1, 16]);
        let s3 = stage_block_sizes(&base, 0.25, 3);
        // 3 × (1/64) rounds to 0 and drops.
        assert_eq!(s3, vec![4, 3, 1]);
    }

    #[test]
    fn global_vs_block_gap_grows_quadratically() {
        // The core scaling argument: global FPS is O(n²·rate) while block
        // FPS is O(n·th·rate).
        let th = 256usize;
        for &n in &[16_384usize, 65_536, 262_144] {
            let blocks = vec![th; n / th];
            let (block, _, _) = block_fps(&blocks, 0.25, true);
            let global = global_fps(n, n / 4);
            let speedup = global.distance_evals as f64 / block.distance_evals as f64;
            let expected = n as f64 / th as f64; // ≈ n/th
            assert!(
                (0.3..=3.0).contains(&(speedup / expected)),
                "n={n}: speedup {speedup}, expected ≈{expected}"
            );
        }
    }

    #[test]
    fn gather_counts_rows() {
        let g = gather(1000, 16);
        assert_eq!(g.feature_reads, 16_000);
    }
}

//! The accelerator interface and execution reports.

use crate::workload::Workload;
use fractalcloud_sim::{EnergyBreakdown, PhaseClass, Timeline};
use serde::{Deserialize, Serialize};

/// An accelerator (or GPU) model that can execute a workload.
pub trait Accelerator {
    /// Display name.
    fn name(&self) -> String;

    /// Executes (costs) the workload end to end.
    fn execute(&self, workload: &Workload) -> ExecutionReport;
}

/// The result of executing a workload on a device model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionReport {
    /// Device name.
    pub accelerator: String,
    /// Phase-by-phase timeline.
    pub timeline: Timeline,
    /// Clock frequency in GHz (converts cycles → time).
    pub freq_ghz: f64,
    /// Total DRAM traffic in bytes.
    pub dram_bytes: u64,
}

impl ExecutionReport {
    /// End-to-end latency in milliseconds.
    pub fn latency_ms(&self) -> f64 {
        self.timeline.ms(self.freq_ghz)
    }

    /// Total energy breakdown.
    pub fn energy(&self) -> EnergyBreakdown {
        self.timeline.total_energy()
    }

    /// Total energy in millijoules.
    pub fn energy_mj(&self) -> f64 {
        self.energy().total_mj()
    }

    /// Latency attributed to point operations, in ms.
    pub fn point_op_ms(&self) -> f64 {
        self.class_ms(PhaseClass::PointOp) + self.class_ms(PhaseClass::Partition)
    }

    /// Latency attributed to MLPs, in ms.
    pub fn mlp_ms(&self) -> f64 {
        self.class_ms(PhaseClass::Mlp)
    }

    /// Latency of one phase class, in ms.
    pub fn class_ms(&self, class: PhaseClass) -> f64 {
        self.timeline.cycles_of(class) as f64 / (self.freq_ghz * 1e9) * 1e3
    }

    /// Speedup of `self` over `baseline` (>1 means `self` is faster).
    pub fn speedup_over(&self, baseline: &ExecutionReport) -> f64 {
        baseline.latency_ms() / self.latency_ms()
    }

    /// Energy saving of `self` over `baseline` (>1 means `self` is
    /// cheaper).
    pub fn energy_saving_over(&self, baseline: &ExecutionReport) -> f64 {
        baseline.energy_mj() / self.energy_mj()
    }

    /// Average power in watts.
    pub fn avg_power_w(&self) -> f64 {
        let s = self.latency_ms() * 1e-3;
        if s == 0.0 {
            0.0
        } else {
            self.energy_mj() * 1e-3 / s
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractalcloud_sim::{EnergyCategory, Phase};

    fn report(cycles: u64, pj: f64) -> ExecutionReport {
        let mut timeline = Timeline::new();
        let mut energy = EnergyBreakdown::new();
        energy.add(EnergyCategory::Compute, pj);
        timeline.push(Phase {
            name: "x".into(),
            class: PhaseClass::PointOp,
            compute_cycles: cycles,
            dram_cycles: 0,
            overlapped: true,
            energy,
        });
        ExecutionReport { accelerator: "t".into(), timeline, freq_ghz: 1.0, dram_bytes: 0 }
    }

    #[test]
    fn latency_and_speedup() {
        let fast = report(1_000_000, 1e9);
        let slow = report(10_000_000, 5e9);
        assert!((fast.latency_ms() - 1.0).abs() < 1e-9);
        assert!((fast.speedup_over(&slow) - 10.0).abs() < 1e-9);
        assert!((fast.energy_saving_over(&slow) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn average_power() {
        let r = report(1_000_000_000, 1e12); // 1 s, 1 J
        assert!((r.avg_power_w() - 1.0).abs() < 1e-6);
    }
}

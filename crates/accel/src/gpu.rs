//! GPU reference model (TITAN RTX class) — the normalization baseline of
//! Fig. 13 and the platform of Fig. 4.
//!
//! The paper measures CUDA-optimized PNNs (Openpoints) on a TITAN RTX. We
//! substitute a roofline model with the device's public specifications plus
//! the two structural properties that dominate PNN behaviour on GPUs:
//!
//! 1. **FPS is latency-bound**: each of the `m` iterations is a dependent
//!    kernel (distance update + argmax reduction) paying launch/sync
//!    overhead, so small inputs are overhead-dominated and large inputs
//!    stream `O(n)` bytes per iteration.
//! 2. **Neighbor search / gather are parallel but uncoalesced**: brute-force
//!    `O(n²)` work at a fraction of peak FLOPs, gathers at a fraction of
//!    peak bandwidth.

use crate::device::{Accelerator, ExecutionReport};
use crate::segment::{MlpShape, Segments};
use crate::workload::Workload;
use fractalcloud_sim::{EnergyBreakdown, EnergyCategory, Phase, PhaseClass, Timeline};

/// TITAN RTX-class GPU parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Peak FP32 throughput in GFLOP/s.
    pub peak_gflops: f64,
    /// Peak memory bandwidth in GB/s.
    pub mem_gbps: f64,
    /// Per-kernel launch + sync overhead in microseconds.
    pub kernel_overhead_us: f64,
    /// Effective throughput of the single-kernel FPS loop in GFLOP/s (the
    /// standard CUDA implementation runs `m` dependent iterations inside
    /// one kernel with block-level parallelism only).
    pub fps_gflops: f64,
    /// Per-iteration synchronization cost inside the FPS kernel, µs.
    pub fps_iter_sync_us: f64,
    /// Idle (baseline) power in watts.
    pub idle_w: f64,
    /// Maximum additional active power in watts.
    pub active_w: f64,
    /// Achieved fraction of peak FLOPs for irregular point kernels.
    pub pointop_flop_eff: f64,
    /// Achieved fraction of peak bandwidth for coalesced streams.
    pub stream_eff: f64,
    /// Achieved fraction of peak bandwidth for random gathers.
    pub gather_eff: f64,
    /// Achieved fraction of peak FLOPs for dense MLP GEMMs.
    pub gemm_eff: f64,
}

impl GpuConfig {
    /// TITAN RTX (2018): 16.3 TFLOPS FP32, 672 GB/s GDDR6, 280 W TDP.
    pub fn titan_rtx() -> GpuConfig {
        GpuConfig {
            peak_gflops: 16_300.0,
            mem_gbps: 672.0,
            kernel_overhead_us: 60.0,
            fps_gflops: 40.0,
            fps_iter_sync_us: 0.3,
            idle_w: 10.0,
            active_w: 255.0,
            pointop_flop_eff: 0.08,
            stream_eff: 0.75,
            gather_eff: 0.12,
            gemm_eff: 0.45,
        }
    }
}

/// The GPU model.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuModel {
    config: GpuConfig,
}

impl GpuModel {
    /// A TITAN RTX model.
    pub fn titan_rtx() -> GpuModel {
        GpuModel { config: GpuConfig::titan_rtx() }
    }

    /// Creates a model from explicit parameters.
    pub fn new(config: GpuConfig) -> GpuModel {
        GpuModel { config }
    }

    /// Seconds for `flops` at `eff` fraction of peak.
    fn compute_s(&self, flops: f64, eff: f64) -> f64 {
        flops / (self.config.peak_gflops * 1e9 * eff)
    }

    /// Seconds for `bytes` at `eff` fraction of peak bandwidth.
    fn mem_s(&self, bytes: f64, eff: f64) -> f64 {
        bytes / (self.config.mem_gbps * 1e9 * eff)
    }

    /// Builds a phase from seconds + utilization (for power).
    fn phase(&self, name: String, class: PhaseClass, seconds: f64, utilization: f64) -> Phase {
        // Report in "cycles" of a virtual 1 GHz clock so Timeline math works.
        let cycles = (seconds * 1e9).ceil() as u64;
        let power_w = self.config.idle_w + self.config.active_w * utilization.clamp(0.0, 1.0);
        let energy_pj = power_w * seconds * 1e12;
        let mut energy = EnergyBreakdown::new();
        energy.add(EnergyCategory::Dram, energy_pj * 0.35);
        energy.add(EnergyCategory::Compute, energy_pj * 0.65);
        Phase { name, class, compute_cycles: cycles, dram_cycles: 0, overlapped: true, energy }
    }

    /// FPS kernel time: one kernel, `m − 1` internal dependent iterations.
    ///
    /// The pointnet2 CUDA kernel runs the whole FPS loop in one launch with
    /// a single thread block (the selection is a global argmax, so
    /// parallelism is limited): per iteration it updates `n` running
    /// distances and reduces, at `fps_gflops` effective throughput plus a
    /// block-sync cost.
    fn fps_s(&self, n: usize, m: usize) -> (f64, f64) {
        let c = &self.config;
        let iters = m.saturating_sub(1) as f64;
        let per_iter = (n as f64 * 8.0 / (c.fps_gflops * 1e9)).max(c.fps_iter_sync_us * 1e-6);
        let t = iters * per_iter + c.kernel_overhead_us * 1e-6;
        // One thread block busy out of ~72 SMs: very low device utilization.
        (t, 0.08)
    }

    /// Brute-force neighbor search time.
    fn neighbor_s(&self, centers: usize, candidates: usize) -> (f64, f64) {
        let flops = centers as f64 * candidates as f64 * 10.0;
        (
            self.compute_s(flops, self.config.pointop_flop_eff)
                + self.config.kernel_overhead_us * 1e-6,
            0.5,
        )
    }

    /// Gather time: random feature fetches.
    fn gather_s(&self, accesses: u64, row_bytes: u64) -> (f64, f64) {
        // Each access moves at least one 32 B sector.
        let bytes = accesses as f64 * (row_bytes.max(32)) as f64;
        (self.mem_s(bytes, self.config.gather_eff) + self.config.kernel_overhead_us * 1e-6, 0.4)
    }

    /// Dense MLP layer time: conv + norm + activation kernels in eager
    /// mode (Fig. 4's measurement platform is eager PyTorch), with GEMM
    /// efficiency that saturates with problem size — small layers cannot
    /// fill the device.
    fn mlp_s(&self, shape: MlpShape) -> (f64, f64) {
        let flops = 2.0 * shape.rows as f64 * shape.cin as f64 * shape.cout as f64;
        // Half-saturation at 100 MFLOP: a 1K-point layer runs at a few
        // percent of peak, a 289K-point layer near gemm_eff.
        let eff = self.config.gemm_eff * flops / (flops + 100e6);
        let bytes = (shape.rows * (shape.cin + shape.cout) * 4) as f64;
        let t =
            self.compute_s(flops, eff.max(0.005)).max(self.mem_s(bytes, self.config.stream_eff))
                + 3.0 * self.config.kernel_overhead_us * 1e-6;
        (t, (eff / self.config.gemm_eff).clamp(0.05, 0.9))
    }
}

impl Accelerator for GpuModel {
    fn name(&self) -> String {
        "GPU (TITAN RTX)".into()
    }

    fn execute(&self, w: &Workload) -> ExecutionReport {
        let segs = Segments::parse(&w.trace);
        let mut timeline = Timeline::new();

        for (i, &shape) in segs.stem.iter().enumerate() {
            let (t, u) = self.mlp_s(shape);
            timeline.push(self.phase(format!("stem{i}"), PhaseClass::Mlp, t, u));
        }
        for (s, sa) in segs.abstraction.iter().enumerate() {
            let (t, u) = self.fps_s(sa.n_in, sa.n_out);
            timeline.push(self.phase(format!("sa{s}-fps"), PhaseClass::PointOp, t, u));
            let (t, u) = self.neighbor_s(sa.n_out, sa.n_in);
            timeline.push(self.phase(format!("sa{s}-group"), PhaseClass::PointOp, t, u));
            let (t, u) = self.gather_s((sa.n_out * sa.nsample) as u64, (sa.cin * 4) as u64);
            timeline.push(self.phase(format!("sa{s}-gather"), PhaseClass::PointOp, t, u));
            let mut cin = sa.cin;
            for (l, &cout) in sa.mlp.iter().enumerate() {
                let (t, u) = self.mlp_s(MlpShape { rows: sa.n_out * sa.nsample, cin, cout });
                timeline.push(self.phase(format!("sa{s}-mlp{l}"), PhaseClass::Mlp, t, u));
                cin = cout;
            }
            for (l, &shape) in sa.blocks.iter().enumerate() {
                let (t, u) = self.mlp_s(shape);
                timeline.push(self.phase(format!("sa{s}-block{l}"), PhaseClass::Mlp, t, u));
            }
        }
        for (f, fp) in segs.propagation.iter().enumerate() {
            let (t, u) = self.neighbor_s(fp.targets, fp.sources);
            timeline.push(self.phase(format!("fp{f}-knn"), PhaseClass::PointOp, t, u));
            let (t, u) = self.gather_s((fp.targets * fp.k) as u64, (fp.channels * 4) as u64);
            timeline.push(self.phase(format!("fp{f}-gather"), PhaseClass::PointOp, t, u));
            for (l, &shape) in fp.mlp.iter().enumerate() {
                let (t, u) = self.mlp_s(shape);
                timeline.push(self.phase(format!("fp{f}-mlp{l}"), PhaseClass::Mlp, t, u));
            }
        }
        for (i, &shape) in segs.head.iter().enumerate() {
            let (t, u) = self.mlp_s(shape);
            timeline.push(self.phase(format!("head{i}"), PhaseClass::Mlp, t, u));
        }

        ExecutionReport {
            accelerator: self.name(),
            timeline,
            freq_ghz: 1.0, // virtual 1 GHz: cycles are nanoseconds
            dram_bytes: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractalcloud_pnn::ModelConfig;

    fn gpu_run(n: usize) -> ExecutionReport {
        let w = Workload::prepare(&ModelConfig::pointnext_segmentation(), n, 1);
        GpuModel::titan_rtx().execute(&w)
    }

    #[test]
    fn point_op_share_grows_like_fig4() {
        // Fig. 4 (PNXt on S3DIS-Test): point ops 78% at 16K, ≈99% at 289K.
        let small = gpu_run(16_384);
        let big = gpu_run(262_144);
        let share_small = small.point_op_ms() / small.latency_ms();
        let share_big = big.point_op_ms() / big.latency_ms();
        assert!((0.5..0.97).contains(&share_small), "16K point-op share {share_small}");
        assert!(share_big > 0.9, "289K point-op share {share_big}");
        assert!(share_big > share_small);
    }

    #[test]
    fn latency_grows_superlinearly() {
        let a = gpu_run(16_384).latency_ms();
        let b = gpu_run(65_536).latency_ms();
        // 4× points, ≥6× latency (approaching quadratic).
        assert!(b > 6.0 * a, "scaling {a} → {b}");
    }

    #[test]
    fn latency_magnitude_matches_fig4() {
        // Fig. 4 shows tens-to-hundreds of ms for PNXt(s) at 16K–66K.
        let ms = gpu_run(16_384).latency_ms();
        assert!((5.0..500.0).contains(&ms), "16K latency {ms} ms");
    }

    #[test]
    fn power_is_between_idle_and_tdp() {
        let r = gpu_run(32_768);
        let p = r.avg_power_w();
        assert!((10.0..280.0).contains(&p), "GPU power {p} W");
    }

    #[test]
    fn classification_is_fast_and_mlp_heavy_at_1k() {
        let w = Workload::prepare(&ModelConfig::pointnetpp_classification(), 1024, 1);
        let r = GpuModel::titan_rtx().execute(&w);
        let share = r.point_op_ms() / r.latency_ms();
        // Fig. 4: ~36% point ops at 1K.
        assert!((0.1..0.7).contains(&share), "1K point-op share {share}");
    }
}

//! Accelerator models for the FractalCloud evaluation.
//!
//! Builds the Table II designs — FractalCloud, PointAcc, Crescent, Mesorasi
//! — plus PNNPU and a TITAN RTX-class GPU baseline, all as cost models over
//! the `fractalcloud-sim` unit library, driven by measured partition
//! structure and analytic point-operation work (cross-validated against the
//! executable implementations).
//!
//! # Example
//!
//! ```
//! use fractalcloud_accel::{Accelerator, DesignModel, DesignParams, GpuModel, Workload};
//! use fractalcloud_pnn::ModelConfig;
//!
//! let w = Workload::prepare(&ModelConfig::pointnext_segmentation(), 8192, 1);
//! let fc = DesignModel::new(DesignParams::fractalcloud()).execute(&w);
//! let gpu = GpuModel::titan_rtx().execute(&w);
//! assert!(fc.speedup_over(&gpu) > 1.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analytic;
mod config;
mod device;
mod gpu;
mod models;
mod segment;
mod workload;

pub use config::{AcceleratorConfig, ChipSpec};
pub use device::{Accelerator, ExecutionReport};
pub use gpu::{GpuConfig, GpuModel};
pub use models::{DesignModel, DesignParams, PartitionKind};
pub use segment::{FpSegment, MlpShape, SaSegment, Segments};
pub use workload::{cloud_for_task, Workload};

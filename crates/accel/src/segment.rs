//! Stage-level view of an [`OpTrace`]: groups the flat op list into the
//! set-abstraction / propagation / head segments that accelerator models
//! reason about (delayed aggregation, per-stage block structure).

use fractalcloud_pnn::{MlpKind, OpTrace, PnnOp};

/// One MLP layer shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MlpShape {
    /// Rows.
    pub rows: usize,
    /// Input channels.
    pub cin: usize,
    /// Output channels.
    pub cout: usize,
}

/// A set-abstraction stage as the hardware sees it.
#[derive(Debug, Clone, PartialEq)]
pub struct SaSegment {
    /// Points entering the stage.
    pub n_in: usize,
    /// Sampled centers.
    pub n_out: usize,
    /// Neighbors per center.
    pub nsample: usize,
    /// Ball-query radius.
    pub radius: f32,
    /// Channels entering (including the +3 relative coordinates).
    pub cin: usize,
    /// Grouped-MLP layer widths.
    pub mlp: Vec<usize>,
    /// Post-pool residual pointwise layers.
    pub blocks: Vec<MlpShape>,
}

impl SaSegment {
    /// Output channel width of the stage.
    pub fn cout(&self) -> usize {
        *self.mlp.last().expect("non-empty MLP")
    }
}

/// A feature-propagation stage.
#[derive(Debug, Clone, PartialEq)]
pub struct FpSegment {
    /// Points being reconstructed.
    pub targets: usize,
    /// Sampled points providing features.
    pub sources: usize,
    /// Interpolation neighbors.
    pub k: usize,
    /// Channels interpolated.
    pub channels: usize,
    /// Post-concat MLP layers.
    pub mlp: Vec<MlpShape>,
}

/// The segmented trace.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Segments {
    /// Stem layers (pointwise, before the first sampling).
    pub stem: Vec<MlpShape>,
    /// Abstraction stages, outermost first.
    pub abstraction: Vec<SaSegment>,
    /// Propagation stages, innermost first.
    pub propagation: Vec<FpSegment>,
    /// Head layers.
    pub head: Vec<MlpShape>,
}

impl Segments {
    /// Parses a trace into segments.
    ///
    /// # Panics
    ///
    /// Panics if the trace does not follow the canonical
    /// stem → (SA)⁺ → (FP)* → head structure every Table I network has.
    pub fn parse(trace: &OpTrace) -> Segments {
        let mut out = Segments::default();
        let mut ops = trace.ops.iter().peekable();
        let mut saw_sample = false;
        let mut saw_interp = false;

        while let Some(op) = ops.next() {
            match *op {
                PnnOp::Mlp { rows, cin, cout, kind: MlpKind::Head } => {
                    out.head.push(MlpShape { rows, cin, cout });
                }
                PnnOp::Mlp { rows, cin, cout, kind: MlpKind::Pointwise } => {
                    let shape = MlpShape { rows, cin, cout };
                    if !saw_sample {
                        out.stem.push(shape);
                    } else if saw_interp {
                        let fp = out.propagation.last_mut().expect("FP exists");
                        debug_assert_eq!(rows, fp.targets);
                        fp.mlp.push(shape);
                    } else {
                        let sa = out.abstraction.last_mut().expect("SA exists");
                        debug_assert_eq!(rows, sa.n_out);
                        sa.blocks.push(shape);
                    }
                }
                PnnOp::Sample { n_in, n_out } => {
                    saw_sample = true;
                    // The following ops must be Group / Gather.
                    let Some(PnnOp::Group { centers, candidates, nsample, radius }) =
                        ops.next().copied()
                    else {
                        panic!("Sample must be followed by Group");
                    };
                    assert_eq!(centers, n_out);
                    assert_eq!(candidates, n_in);
                    let Some(PnnOp::Gather { channels, .. }) = ops.next().copied() else {
                        panic!("Group must be followed by Gather");
                    };
                    let mut mlp = Vec::new();
                    while let Some(PnnOp::Mlp { cout, kind: MlpKind::Grouped { .. }, .. }) =
                        ops.peek()
                    {
                        mlp.push(*cout);
                        ops.next();
                    }
                    let Some(PnnOp::MaxPool { .. }) = ops.next() else {
                        panic!("grouped MLP must end in MaxPool");
                    };
                    out.abstraction.push(SaSegment {
                        n_in,
                        n_out,
                        nsample,
                        radius,
                        cin: channels,
                        mlp,
                        blocks: Vec::new(),
                    });
                }
                PnnOp::Interpolate { targets, sources, k, channels } => {
                    saw_interp = true;
                    out.propagation.push(FpSegment {
                        targets,
                        sources,
                        k,
                        channels,
                        mlp: Vec::new(),
                    });
                }
                other => panic!("unexpected op outside segment: {other:?}"),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractalcloud_pnn::{ModelConfig, OpTrace};

    #[test]
    fn parses_pointnext_segmentation() {
        let m = ModelConfig::pointnext_segmentation();
        let t = OpTrace::build(&m, 4096);
        let s = Segments::parse(&t);
        assert_eq!(s.stem.len(), 1);
        assert_eq!(s.abstraction.len(), 4);
        assert_eq!(s.propagation.len(), 4);
        // PNXt: 1 grouped layer + 1 InvResMLP block (2 layers) per stage.
        assert_eq!(s.abstraction[0].mlp, vec![64]);
        assert_eq!(s.abstraction[0].blocks.len(), 2);
        // Head: 1 hidden + classifier.
        assert_eq!(s.head.len(), 2);
        assert_eq!(s.head.last().unwrap().cout, 13);
        // FP chain reconstructs n.
        assert_eq!(s.propagation.last().unwrap().targets, 4096);
    }

    #[test]
    fn parses_classification_without_propagation() {
        let m = ModelConfig::pointnetpp_classification();
        let t = OpTrace::build(&m, 1024);
        let s = Segments::parse(&t);
        assert!(s.stem.is_empty());
        assert_eq!(s.abstraction.len(), 3);
        assert!(s.propagation.is_empty());
        assert_eq!(s.head.len(), 3);
        assert_eq!(s.head.last().unwrap().cout, 40);
        assert_eq!(s.head[0].rows, 1);
    }

    #[test]
    fn stage_shapes_chain() {
        let m = ModelConfig::pointnetpp_segmentation();
        let t = OpTrace::build(&m, 8192);
        let s = Segments::parse(&t);
        for w in s.abstraction.windows(2) {
            assert_eq!(w[0].n_out, w[1].n_in);
        }
        // FP targets mirror SA inputs.
        let sa_inputs: Vec<usize> = s.abstraction.iter().rev().map(|sa| sa.n_in).collect();
        let fp_targets: Vec<usize> = s.propagation.iter().map(|fp| fp.targets).collect();
        assert_eq!(sa_inputs, fp_targets);
    }

    #[test]
    fn all_table1_models_parse() {
        for m in ModelConfig::table1() {
            let t = OpTrace::build(&m, 2048);
            let s = Segments::parse(&t);
            assert!(!s.abstraction.is_empty(), "{}", m.notation);
            assert!(!s.head.is_empty(), "{}", m.notation);
        }
    }
}

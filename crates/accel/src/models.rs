//! The parametric accelerator engine: one cost model, five designs.
//!
//! Every Table II accelerator differs along a small set of architectural
//! axes (partitioning method, block vs global point operations, window
//! check, data reuse, block parallelism, delayed aggregation, SRAM size).
//! [`DesignParams`] captures those axes; [`DesignModel::execute`] turns a
//! [`Workload`] into a phase [`Timeline`] by composing the unit models of
//! `fractalcloud-sim`.

use crate::analytic::{self, COORD_BYTES, SCALAR_BYTES};
use crate::device::{Accelerator, ExecutionReport};
use crate::segment::{MlpShape, Segments};
use crate::workload::Workload;
use fractalcloud_dram::AccessPattern;
use fractalcloud_sim::{
    Dma, DmaCost, EnergyBreakdown, EnergyCategory, EnergyTable, FractalEngine, FractalEngineConfig,
    Phase, PhaseClass, Rspu, RspuConfig, Sram, SramConfig, SramPattern, Systolic, SystolicConfig,
    Timeline,
};

/// Which partitioning a design performs before point operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionKind {
    /// No partitioning (PointAcc, Mesorasi).
    None,
    /// The fractal shape-aware method (FractalCloud).
    Fractal,
    /// KD-tree median splits (Crescent).
    KdTree,
    /// Space-uniform grid (PNNPU).
    Uniform,
}

/// The architectural axes of a design.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignParams {
    /// Display name.
    pub name: String,
    /// Partitioning strategy.
    pub partition: PartitionKind,
    /// Block-wise sampling (BWS). Crescent and Mesorasi do not support
    /// block-wise FPS; the paper equips them with PointAcc's global FPS
    /// engine (§VI-A), so only FractalCloud/PNNPU set this.
    pub block_sampling: bool,
    /// Block-wise grouping (BWG).
    pub block_grouping: bool,
    /// Block-wise interpolation (BWI).
    pub block_interpolation: bool,
    /// Block-wise gathering (BWGa): gathers confined to on-chip blocks.
    pub block_gathering: bool,
    /// Neighbor search spaces expand to the parent node.
    pub parent_expansion: bool,
    /// RSPU window-check skip for sampling.
    pub window_check: bool,
    /// Intra-block candidate reuse across centers (RSPU shared buffer).
    pub intra_block_reuse: bool,
    /// Point-unit array geometry (cores = inter-block parallelism).
    pub rspu: RspuConfig,
    /// Delayed aggregation (Mesorasi): grouped MLPs run pre-grouping.
    pub delayed_aggregation: bool,
    /// Global buffer configuration.
    pub sram: SramConfig,
    /// Core area (drives static power).
    pub area_mm2: f64,
    /// Memory layout lets block streams read sequentially (DFT order).
    pub streamed_layout: bool,
}

impl DesignParams {
    /// FractalCloud (the paper's design).
    pub fn fractalcloud() -> DesignParams {
        DesignParams {
            name: "FractalCloud".into(),
            partition: PartitionKind::Fractal,
            block_sampling: true,
            block_grouping: true,
            block_interpolation: true,
            block_gathering: true,
            parent_expansion: true,
            window_check: true,
            intra_block_reuse: true,
            rspu: RspuConfig::fractalcloud(),
            delayed_aggregation: true,
            sram: SramConfig::global_buffer_274k(),
            area_mm2: 1.5,
            streamed_layout: true,
        }
    }

    /// PointAcc (MICRO'21): global point ops, 274 KB buffer.
    pub fn pointacc() -> DesignParams {
        DesignParams {
            name: "PointAcc".into(),
            partition: PartitionKind::None,
            block_sampling: false,
            block_grouping: false,
            block_interpolation: false,
            block_gathering: false,
            parent_expansion: false,
            window_check: false,
            intra_block_reuse: false,
            rspu: RspuConfig { cores: 1, lanes: 32 },
            delayed_aggregation: false,
            sram: SramConfig::global_buffer_274k(),
            area_mm2: 1.91,
            streamed_layout: false,
        }
    }

    /// Crescent (ISCA'22): KD-tree partitioning, block-serial point ops,
    /// delayed aggregation, 1.6 MB buffer.
    pub fn crescent() -> DesignParams {
        DesignParams {
            name: "Crescent".into(),
            partition: PartitionKind::KdTree,
            block_sampling: false,
            block_grouping: true,
            block_interpolation: true,
            block_gathering: true,
            parent_expansion: true,
            window_check: false,
            intra_block_reuse: false,
            rspu: RspuConfig { cores: 1, lanes: 16 }, // block-serial
            delayed_aggregation: true,
            sram: SramConfig::crescent_1622k(),
            area_mm2: 4.75,
            streamed_layout: true,
        }
    }

    /// Mesorasi (MICRO'20): no partitioning, delayed aggregation, global
    /// point ops on a PointAcc-style FPS engine (per §VI-A the paper equips
    /// it with PointAcc's sampler).
    pub fn mesorasi() -> DesignParams {
        DesignParams {
            name: "Mesorasi".into(),
            partition: PartitionKind::None,
            block_sampling: false,
            block_grouping: false,
            block_interpolation: false,
            block_gathering: false,
            parent_expansion: false,
            window_check: false,
            intra_block_reuse: false,
            rspu: RspuConfig { cores: 1, lanes: 8 },
            delayed_aggregation: true,
            sram: SramConfig::mesorasi_1624k(),
            area_mm2: 4.59,
            streamed_layout: false,
        }
    }

    /// PNNPU (VLSI'21): uniform-grid partitioning, block processing without
    /// parent expansion.
    pub fn pnnpu() -> DesignParams {
        DesignParams {
            name: "PNNPU".into(),
            partition: PartitionKind::Uniform,
            block_sampling: true,
            block_grouping: true,
            block_interpolation: true,
            block_gathering: true,
            parent_expansion: false,
            window_check: false,
            intra_block_reuse: false,
            rspu: RspuConfig { cores: 8, lanes: 16 },
            delayed_aggregation: false,
            sram: SramConfig::global_buffer_274k(),
            area_mm2: 1.8,
            streamed_layout: false,
        }
    }
}

/// A design bound to its unit models.
#[derive(Debug, Clone)]
pub struct DesignModel {
    params: DesignParams,
    sram: Sram,
    systolic: Systolic,
    rspu: Rspu,
    engine: FractalEngine,
    dma: Dma,
    table: EnergyTable,
}

impl DesignModel {
    /// Builds the unit models for a parameter set.
    pub fn new(params: DesignParams) -> DesignModel {
        let table = EnergyTable::tsmc28();
        DesignModel {
            sram: Sram::new(params.sram, table.clone()),
            systolic: Systolic::new(SystolicConfig::pe16x16(), table.clone()),
            rspu: Rspu::new(params.rspu, table.clone()),
            engine: FractalEngine::new(FractalEngineConfig::fractalcloud(), table.clone()),
            dma: Dma::at_1ghz(),
            table,
            params,
        }
    }

    /// The design parameters.
    pub fn params(&self) -> &DesignParams {
        &self.params
    }

    /// Usable on-chip capacity for streaming data (the rest holds weights,
    /// top-k state, and double buffers).
    fn sram_avail(&self) -> u64 {
        (self.params.sram.bytes as u64) * 3 / 4
    }

    fn seq_pattern(&self) -> AccessPattern {
        if self.params.streamed_layout {
            AccessPattern::Sequential
        } else {
            AccessPattern::Strided { granule: 1024 }
        }
    }

    /// Point-op phase: compute on the RSPU array + SRAM traffic + DRAM.
    #[allow(clippy::too_many_arguments)]
    fn point_phase(
        &self,
        name: String,
        compute_cycles: u64,
        compute_pj: f64,
        sram_bytes: u64,
        sram_pattern: SramPattern,
        dram: DmaCost,
        class: PhaseClass,
    ) -> Phase {
        // Bank ports demanded: every distance lane pulls 6 B/cycle, and a
        // bank port supplies `bank_width` bytes.
        let lanes = (self.params.rspu.cores * self.params.rspu.lanes).max(1);
        let accessors = (lanes * COORD_BYTES as usize)
            .div_ceil(self.params.sram.bank_width)
            .clamp(1, self.params.sram.banks);
        let sram_cost = self.sram.access(sram_bytes, sram_pattern, accessors);
        let mut energy = EnergyBreakdown::new();
        energy.add(EnergyCategory::Compute, compute_pj);
        energy.add(EnergyCategory::Sram, sram_cost.energy_pj);
        energy.add(EnergyCategory::Dram, dram.dram_energy_pj);
        energy.add(EnergyCategory::Noc, dram.bytes as f64 * self.table.noc_pj_per_byte_hop);
        Phase {
            name,
            class,
            compute_cycles: compute_cycles.max(sram_cost.cycles),
            dram_cycles: dram.core_cycles,
            overlapped: true,
            energy,
        }
    }

    /// MLP phase: systolic GEMM + activation streaming.
    fn mlp_phase(&self, name: String, shape: MlpShape) -> Phase {
        let g = self.systolic.gemm(shape.rows as u64, shape.cout as u64, shape.cin as u64);
        let act_bytes = shape.rows as u64 * (shape.cin + shape.cout) as u64 * SCALAR_BYTES;
        let weight_bytes = (shape.cin * shape.cout) as u64 * SCALAR_BYTES;
        let sram_cost = self.sram.access(act_bytes + weight_bytes, SramPattern::Sequential, 16);
        // Activations spill to DRAM when a layer's live set exceeds SRAM.
        let dram = if act_bytes > self.sram_avail() {
            self.dma.read(act_bytes + weight_bytes, AccessPattern::Sequential)
        } else {
            self.dma.read(weight_bytes, AccessPattern::Sequential)
        };
        let mut energy = EnergyBreakdown::new();
        energy.add(EnergyCategory::Compute, g.energy_pj);
        energy.add(EnergyCategory::Sram, sram_cost.energy_pj);
        energy.add(EnergyCategory::Dram, dram.dram_energy_pj);
        Phase {
            name,
            class: PhaseClass::Mlp,
            compute_cycles: g.cycles.max(sram_cost.cycles),
            dram_cycles: dram.core_cycles,
            overlapped: true,
            energy,
        }
    }

    /// Partition phase for this design's strategy.
    fn partition_phase(&self, w: &Workload) -> Option<Phase> {
        let p = &self.params;
        let working = w.n as u64 * COORD_BYTES;
        let (name, cycles, pj, dram_bytes) = match p.partition {
            PartitionKind::None => return None,
            PartitionKind::Fractal => {
                let c = self.engine.traversal_partition(&w.fractal_cost);
                // Each iteration streams the active points; off-chip only
                // when the cloud exceeds the buffer.
                let dram = if working > self.sram_avail() {
                    w.fractal_cost.traversal_elements * COORD_BYTES * 2
                } else {
                    working
                };
                ("fractal".to_string(), c.cycles, c.energy_pj, dram)
            }
            PartitionKind::Uniform => {
                let c = self.engine.traversal_partition(&w.uniform_cost);
                ("uniform-grid".to_string(), c.cycles, c.energy_pj, working)
            }
            PartitionKind::KdTree => {
                // The merge-network model (serial sorts, utilization decay
                // on the final passes) — kd_tree_from_cost underestimates
                // because measured compare counts assume full lanes.
                let c = self.engine.kd_tree_partition(w.n as u64, w.threshold as u64);
                // Every sort pass streams keys + payload; off-chip once the
                // working set outgrows the buffer.
                let dram = if working * 2 > self.sram_avail() {
                    w.kd_cost.sorted_elements * 10 * 2
                } else {
                    working
                };
                ("kd-tree".to_string(), c.cycles, c.energy_pj, dram)
            }
        };
        let sram_bytes = match p.partition {
            PartitionKind::KdTree => w.kd_cost.sorted_elements * 10,
            PartitionKind::Fractal => w.fractal_cost.traversal_elements * COORD_BYTES,
            _ => working,
        };
        let dram = self.dma.read(dram_bytes, self.seq_pattern());
        Some(self.point_phase(
            name,
            cycles,
            pj,
            sram_bytes,
            SramPattern::Sequential,
            dram,
            PhaseClass::Partition,
        ))
    }

    fn base_blocks<'w>(&self, w: &'w Workload) -> &'w [usize] {
        match self.params.partition {
            PartitionKind::Fractal => &w.fractal_blocks,
            PartitionKind::KdTree => &w.kd_blocks,
            PartitionKind::Uniform => &w.uniform_blocks,
            PartitionKind::None => &[],
        }
    }
}

impl Accelerator for DesignModel {
    fn name(&self) -> String {
        self.params.name.clone()
    }

    fn execute(&self, w: &Workload) -> ExecutionReport {
        let p = &self.params;
        let segs = Segments::parse(&w.trace);
        let mut timeline = Timeline::new();
        let mut dram_total = 0u64;
        let avail = self.sram_avail();

        if let Some(phase) = self.partition_phase(w) {
            dram_total += phase.dram_cycles; // placeholder corrected below
            timeline.push(phase);
        }

        // Stem.
        for (i, &shape) in segs.stem.iter().enumerate() {
            timeline.push(self.mlp_phase(format!("stem{i}"), shape));
        }

        // ---- Abstraction stages ----
        for (s, sa) in segs.abstraction.iter().enumerate() {
            let rate = sa.n_out as f64 / sa.n_in as f64;
            let coord_working = sa.n_in as u64 * COORD_BYTES;
            let sizes = analytic::stage_block_sizes(self.base_blocks(w), 0.25, s as u32);
            let have_blocks = !sizes.is_empty();

            // -- Sampling --
            let (cost, sram_bytes, pattern, dram) = if p.block_sampling && have_blocks {
                let (total, critical, _) = analytic::block_fps(&sizes, rate, p.window_check);
                let cost = self.rspu.block_parallel_from_aggregate(&total, &critical);
                let dram = self.dma.read(coord_working, self.seq_pattern());
                (cost, total.distance_evals * COORD_BYTES, SramPattern::BankAligned, dram)
            } else {
                let counters = analytic::global_fps_with_window(sa.n_in, sa.n_out, p.window_check);
                let cost = self.rspu.global_op(&counters);
                // When the working set exceeds the buffer, every FPS
                // iteration re-streams the non-resident fraction — the
                // O(n²) DRAM traffic of §II-B (partial-fit: a larger buffer
                // keeps more of the cloud resident, which is exactly why
                // Crescent's 1.6 MB buffer degrades later than PointAcc's
                // 274 KB).
                let spill = coord_working.saturating_sub(avail);
                let bytes = coord_working + (sa.n_out.saturating_sub(1) as u64) * spill;
                let dram = self.dma.read(bytes, self.seq_pattern());
                // FPS scans candidates in address order: sequential SRAM.
                (cost, counters.distance_evals * COORD_BYTES, SramPattern::Sequential, dram)
            };
            dram_total += dram.bytes;
            timeline.push(self.point_phase(
                format!("sa{s}-fps"),
                cost.cycles,
                cost.energy_pj,
                sram_bytes,
                pattern,
                dram,
                PhaseClass::PointOp,
            ));

            // -- Grouping --
            let (cost, sram_bytes, pattern, dram) = if p.block_grouping && have_blocks {
                let factor = if p.parent_expansion { 2.0 } else { 1.0 };
                let (total, critical, _) =
                    analytic::block_neighbor(&sizes, rate, factor, sa.nsample);
                let cost = self.rspu.block_parallel_from_aggregate(&total, &critical);
                let sram_bytes = if p.intra_block_reuse {
                    // Candidates loaded once per block, shared by centers.
                    (factor * sa.n_in as f64) as u64 * COORD_BYTES
                } else {
                    total.distance_evals * COORD_BYTES
                };
                let dram = self.dma.read(coord_working, self.seq_pattern());
                (cost, sram_bytes, SramPattern::BankAligned, dram)
            } else {
                let counters = analytic::global_neighbor(sa.n_out, sa.n_in, sa.nsample);
                let cost = self.rspu.global_op(&counters);
                let spill = coord_working.saturating_sub(avail);
                let tiles = (sa.n_out as u64).div_ceil(4096).saturating_sub(1);
                let bytes = coord_working + tiles * spill;
                let dram = self.dma.read(bytes, self.seq_pattern());
                // With RSPU-style reuse, a batch of centers (one per core)
                // shares each candidate fetch.
                let share = if p.intra_block_reuse { p.rspu.cores.max(1) as u64 } else { 1 };
                (cost, counters.distance_evals * COORD_BYTES / share, SramPattern::Sequential, dram)
            };
            dram_total += dram.bytes;
            timeline.push(self.point_phase(
                format!("sa{s}-group"),
                cost.cycles,
                cost.energy_pj,
                sram_bytes,
                pattern,
                dram,
                PhaseClass::PointOp,
            ));

            // -- MLP + gather (+ pool), order set by delayed aggregation --
            let gather_channels = if p.delayed_aggregation { sa.cout() } else { sa.cin };
            if p.delayed_aggregation {
                let mut cin = sa.cin;
                for (l, &cout) in sa.mlp.iter().enumerate() {
                    timeline.push(
                        self.mlp_phase(
                            format!("sa{s}-mlp{l}"),
                            MlpShape { rows: sa.n_in, cin, cout },
                        ),
                    );
                    cin = cout;
                }
            }
            // Gather.
            let accesses = (sa.n_out * sa.nsample) as u64;
            let row_bytes = gather_channels as u64 * SCALAR_BYTES;
            let feature_table = sa.n_in as u64 * row_bytes;
            let gather_bytes = accesses * row_bytes;
            let (g_pattern, g_dram) = if p.block_gathering && have_blocks {
                // Block-wise gathering: blocks in their own banks, one
                // streamed feature pass off-chip.
                (
                    SramPattern::BankAligned,
                    self.dma.read(
                        feature_table.min(gather_bytes.max(feature_table)),
                        self.seq_pattern(),
                    ),
                )
            } else if feature_table > avail {
                // Conventional gathering: random 64 B bursts per access.
                (SramPattern::Random, self.dma.read(accesses * 64, AccessPattern::Random))
            } else {
                (SramPattern::Random, self.dma.read(feature_table, self.seq_pattern()))
            };
            dram_total += g_dram.bytes;
            let g_cycles = accesses.div_ceil(self.params.rspu.cores.max(1) as u64 * 4);
            timeline.push(self.point_phase(
                format!("sa{s}-gather"),
                g_cycles,
                accesses as f64 * self.table.alu_fp16_pj,
                gather_bytes,
                g_pattern,
                g_dram,
                PhaseClass::PointOp,
            ));
            if !p.delayed_aggregation {
                let mut cin = sa.cin;
                for (l, &cout) in sa.mlp.iter().enumerate() {
                    timeline.push(self.mlp_phase(
                        format!("sa{s}-mlp{l}"),
                        MlpShape { rows: sa.n_out * sa.nsample, cin, cout },
                    ));
                    cin = cout;
                }
            }
            // Pool.
            let pool = self.systolic.max_pool(sa.n_out as u64, sa.nsample as u64, sa.cout() as u64);
            let mut energy = EnergyBreakdown::new();
            energy.add(EnergyCategory::Compute, pool.energy_pj);
            timeline.push(Phase {
                name: format!("sa{s}-pool"),
                class: PhaseClass::Mlp,
                compute_cycles: pool.cycles,
                dram_cycles: 0,
                overlapped: true,
                energy,
            });
            // Residual blocks.
            for (l, &shape) in sa.blocks.iter().enumerate() {
                timeline.push(self.mlp_phase(format!("sa{s}-block{l}"), shape));
            }
        }

        // ---- Propagation stages ----
        let n_stages = segs.abstraction.len();
        for (f, fp) in segs.propagation.iter().enumerate() {
            // The FP stage operating at target level `t` reuses the block
            // structure of abstraction stage `t`.
            let level = n_stages - 1 - f;
            let sizes = analytic::stage_block_sizes(self.base_blocks(w), 0.25, level as u32);
            let have_blocks = !sizes.is_empty();
            let coord_working = (fp.targets + fp.sources) as u64 * COORD_BYTES;

            let (cost, sram_bytes, pattern, dram) = if p.block_interpolation && have_blocks {
                let src_frac = fp.sources as f64 / fp.targets as f64;
                let factor = if p.parent_expansion { 2.0 * src_frac } else { src_frac };
                let (total, critical, _) =
                    analytic::block_neighbor(&sizes, 1.0, factor.max(1e-6), fp.k);
                let cost = self.rspu.block_parallel_from_aggregate(&total, &critical);
                let sram_bytes = if p.intra_block_reuse {
                    (factor * fp.targets as f64) as u64 * COORD_BYTES
                } else {
                    total.distance_evals * COORD_BYTES
                };
                let dram = self.dma.read(coord_working, self.seq_pattern());
                (cost, sram_bytes, SramPattern::BankAligned, dram)
            } else {
                let counters = analytic::global_neighbor(fp.targets, fp.sources, fp.k);
                let cost = self.rspu.global_op(&counters);
                let src_bytes = fp.sources as u64 * COORD_BYTES;
                let spill = src_bytes.saturating_sub(avail);
                let tiles = (fp.targets as u64).div_ceil(4096).saturating_sub(1);
                let bytes = coord_working + tiles * spill;
                let dram = self.dma.read(bytes, self.seq_pattern());
                let share = if p.intra_block_reuse { p.rspu.cores.max(1) as u64 } else { 1 };
                (cost, counters.distance_evals * COORD_BYTES / share, SramPattern::Sequential, dram)
            };
            dram_total += dram.bytes;
            timeline.push(self.point_phase(
                format!("fp{f}-interp"),
                cost.cycles,
                cost.energy_pj,
                sram_bytes,
                pattern,
                dram,
                PhaseClass::PointOp,
            ));

            // Interpolation gather: targets × k feature rows.
            let accesses = (fp.targets * fp.k) as u64;
            let row_bytes = fp.channels as u64 * SCALAR_BYTES;
            let table_bytes = fp.sources as u64 * row_bytes;
            let (g_pattern, g_dram) = if p.block_gathering && have_blocks {
                (SramPattern::BankAligned, self.dma.read(table_bytes, self.seq_pattern()))
            } else if table_bytes > avail {
                (SramPattern::Random, self.dma.read(accesses * 64, AccessPattern::Random))
            } else {
                (SramPattern::Random, self.dma.read(table_bytes, self.seq_pattern()))
            };
            dram_total += g_dram.bytes;
            timeline.push(self.point_phase(
                format!("fp{f}-gather"),
                accesses.div_ceil(self.params.rspu.cores.max(1) as u64 * 4),
                accesses as f64 * 3.0 * self.table.mac_fp16_pj, // idw weights
                accesses * row_bytes,
                g_pattern,
                g_dram,
                PhaseClass::PointOp,
            ));

            for (l, &shape) in fp.mlp.iter().enumerate() {
                timeline.push(self.mlp_phase(format!("fp{f}-mlp{l}"), shape));
            }
        }

        // ---- Head ----
        for (i, &shape) in segs.head.iter().enumerate() {
            timeline.push(self.mlp_phase(format!("head{i}"), shape));
        }

        // ---- Static energy over the whole run ----
        let total_cycles = timeline.total_cycles();
        let static_pj = self.table.static_mw_per_mm2 * p.area_mm2 * total_cycles as f64; // mW × ns = pJ (1 GHz)
        let mut energy = EnergyBreakdown::new();
        energy.add(EnergyCategory::Static, static_pj);
        timeline.push(Phase {
            name: "static".into(),
            class: PhaseClass::Other,
            compute_cycles: 0,
            dram_cycles: 0,
            overlapped: true,
            energy,
        });

        ExecutionReport {
            accelerator: p.name.clone(),
            timeline,
            freq_ghz: 1.0,
            dram_bytes: dram_total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractalcloud_pnn::ModelConfig;

    fn workload(n: usize) -> Workload {
        Workload::prepare(&ModelConfig::pointnext_segmentation(), n, 1)
    }

    #[test]
    fn all_designs_execute() {
        let w = workload(4096);
        for params in [
            DesignParams::fractalcloud(),
            DesignParams::pointacc(),
            DesignParams::crescent(),
            DesignParams::mesorasi(),
            DesignParams::pnnpu(),
        ] {
            let model = DesignModel::new(params);
            let r = model.execute(&w);
            assert!(r.latency_ms() > 0.0, "{}", r.accelerator);
            assert!(r.energy_mj() > 0.0, "{}", r.accelerator);
        }
    }

    #[test]
    fn fractalcloud_beats_pointacc_at_scale() {
        let w = workload(33_000);
        let fc = DesignModel::new(DesignParams::fractalcloud()).execute(&w);
        let pa = DesignModel::new(DesignParams::pointacc()).execute(&w);
        let speedup = fc.speedup_over(&pa);
        assert!(speedup > 4.0, "FC vs PointAcc at 33K: {speedup}×");
        assert!(fc.energy_saving_over(&pa) > 4.0);
    }

    #[test]
    fn fractalcloud_beats_crescent_at_scale() {
        let small = workload(8192);
        let big = workload(66_000);
        let gap_small = DesignModel::new(DesignParams::fractalcloud())
            .execute(&small)
            .speedup_over(&DesignModel::new(DesignParams::crescent()).execute(&small));
        let gap_big = DesignModel::new(DesignParams::fractalcloud())
            .execute(&big)
            .speedup_over(&DesignModel::new(DesignParams::crescent()).execute(&big));
        assert!(gap_small > 1.2, "FC vs Crescent at 8K: {gap_small}");
        assert!(gap_big > 2.0, "FC vs Crescent at 66K: {gap_big}");
        assert!(gap_big > gap_small, "gap must widen with scale");
    }

    #[test]
    fn crescent_close_to_fractalcloud_at_small_scale() {
        // §III-B: at 1K points Crescent is only ~20% slower.
        let w = Workload::prepare(&ModelConfig::pointnetpp_classification(), 1024, 2);
        let fc = DesignModel::new(DesignParams::fractalcloud()).execute(&w);
        let cr = DesignModel::new(DesignParams::crescent()).execute(&w);
        let gap = fc.speedup_over(&cr);
        assert!((1.0..4.0).contains(&gap), "small-scale Crescent gap should be modest, got {gap}×");
    }

    #[test]
    fn pointacc_point_ops_dominate_at_large_scale() {
        let w = workload(66_000);
        let pa = DesignModel::new(DesignParams::pointacc()).execute(&w);
        let share = pa.point_op_ms() / pa.latency_ms();
        assert!(share > 0.6, "point-op share {share}");
        // And the share grows with scale (Fig. 4's trend).
        let small = workload(4096);
        let pa_s = DesignModel::new(DesignParams::pointacc()).execute(&small);
        assert!(share > pa_s.point_op_ms() / pa_s.latency_ms());
    }

    #[test]
    fn fractalcloud_partition_overhead_is_tiny() {
        // §III-B: < 0.8% of latency.
        let w = workload(33_000);
        let fc = DesignModel::new(DesignParams::fractalcloud()).execute(&w);
        let frac = fc.class_ms(PhaseClass::Partition) / fc.latency_ms();
        assert!(frac < 0.02, "fractal partition share {frac}");
    }

    #[test]
    fn kd_partitioning_dwarfs_fractal_partitioning() {
        // Fig. 16: Fractal partitions orders of magnitude faster than the
        // KD-tree (133× in the paper).
        let w = workload(33_000);
        let cr = DesignModel::new(DesignParams::crescent()).execute(&w);
        let fc = DesignModel::new(DesignParams::fractalcloud()).execute(&w);
        let kd_ms = cr.class_ms(PhaseClass::Partition);
        let fr_ms = fc.class_ms(PhaseClass::Partition);
        assert!(kd_ms > 20.0 * fr_ms, "kd {kd_ms} ms should be ≫ fractal {fr_ms} ms");
    }

    #[test]
    fn crescent_trades_dram_for_sram_energy() {
        // Fig. 15(b): Crescent's 1.6 MB buffer cuts DRAM energy relative to
        // PointAcc but SRAM becomes a much larger share of its budget.
        let w = workload(33_000);
        let cr = DesignModel::new(DesignParams::crescent()).execute(&w);
        let pa = DesignModel::new(DesignParams::pointacc()).execute(&w);
        let cr_e = cr.energy();
        let pa_e = pa.energy();
        assert!(cr_e.dram_pj < pa_e.dram_pj, "Crescent must spill less");
        let cr_share = cr_e.sram_pj / cr_e.total_pj();
        let pa_share = pa_e.sram_pj / pa_e.total_pj();
        assert!(cr_share > pa_share, "SRAM share: Crescent {cr_share} vs PointAcc {pa_share}");
    }

    #[test]
    fn pointacc_dram_energy_dominates_its_breakdown() {
        let w = workload(66_000);
        let pa = DesignModel::new(DesignParams::pointacc()).execute(&w);
        let e = pa.energy();
        assert!(
            e.dram_pj > e.compute_pj,
            "global search must be DRAM-bound: dram {} vs compute {}",
            e.dram_pj,
            e.compute_pj
        );
    }

    #[test]
    fn ablation_ladder_is_monotone() {
        // Fig. 18's regression guard: enabling each BPPO feature must never
        // slow the design down, and the full ladder must deliver a large
        // cumulative gain.
        let w = workload(16_384);
        let mut p = DesignParams::fractalcloud();
        p.partition = PartitionKind::None;
        p.block_sampling = false;
        p.block_grouping = false;
        p.block_interpolation = false;
        p.block_gathering = false;
        p.window_check = false;
        p.intra_block_reuse = false;
        p.delayed_aggregation = false;
        let mut prev = DesignModel::new(p.clone()).execute(&w).latency_ms();
        let base = prev;
        type Step = Box<dyn Fn(&mut DesignParams)>;
        let steps: Vec<Step> = vec![
            Box::new(|p| p.delayed_aggregation = true),
            Box::new(|p| {
                p.window_check = true;
                p.intra_block_reuse = true;
            }),
            Box::new(|p| {
                p.partition = PartitionKind::Fractal;
                p.block_sampling = true;
            }),
            Box::new(|p| p.block_grouping = true),
            Box::new(|p| p.block_interpolation = true),
            Box::new(|p| p.block_gathering = true),
        ];
        for (i, step) in steps.iter().enumerate() {
            step(&mut p);
            let lat = DesignModel::new(p.clone()).execute(&w).latency_ms();
            assert!(lat <= prev * 1.02, "ablation step {i} regressed: {prev} -> {lat} ms");
            prev = lat;
        }
        // At 16K the gain is modest (~3×); it reaches ~90× at 289K
        // (fig18_bppo_ablation). Monotonicity above is the real guard.
        assert!(base / prev > 2.5, "full ladder gain {} too small", base / prev);
    }

    #[test]
    fn scaling_gap_grows_with_input() {
        let small = workload(4096);
        let big = workload(65_536);
        let fc_s = DesignModel::new(DesignParams::fractalcloud()).execute(&small);
        let pa_s = DesignModel::new(DesignParams::pointacc()).execute(&small);
        let fc_b = DesignModel::new(DesignParams::fractalcloud()).execute(&big);
        let pa_b = DesignModel::new(DesignParams::pointacc()).execute(&big);
        let gap_small = fc_s.speedup_over(&pa_s);
        let gap_big = fc_b.speedup_over(&pa_b);
        assert!(
            gap_big > 2.0 * gap_small,
            "the FC advantage must grow with scale: {gap_small}× → {gap_big}×"
        );
    }
}

//! Table II accelerator configurations and the FractalCloud chip summary
//! (Fig. 12).

use serde::{Deserialize, Serialize};

/// Hardware configuration of one accelerator (one column of Table II).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorConfig {
    /// Design name.
    pub name: &'static str,
    /// PE-array geometry (all designs: 16×16).
    pub pe_array: (usize, usize),
    /// On-chip SRAM in KB.
    pub sram_kb: f64,
    /// Clock frequency in GHz.
    pub freq_ghz: f64,
    /// Core area in mm² (28 nm).
    pub area_mm2: f64,
    /// DRAM interface description.
    pub dram: &'static str,
    /// DRAM peak bandwidth in GB/s.
    pub dram_gbps: f64,
    /// Technology node in nm.
    pub tech_nm: u32,
    /// Peak throughput in GOPS.
    pub peak_gops: f64,
}

impl AcceleratorConfig {
    /// Mesorasi (MICRO'20), Table II column 1.
    pub fn mesorasi() -> AcceleratorConfig {
        AcceleratorConfig {
            name: "Mesorasi",
            pe_array: (16, 16),
            sram_kb: 1624.0,
            freq_ghz: 1.0,
            area_mm2: 4.59,
            dram: "DDR4-2133",
            dram_gbps: 17.0,
            tech_nm: 28,
            peak_gops: 512.0,
        }
    }

    /// PointAcc (MICRO'21), Table II column 2.
    pub fn pointacc() -> AcceleratorConfig {
        AcceleratorConfig {
            name: "PointAcc",
            pe_array: (16, 16),
            sram_kb: 274.0,
            freq_ghz: 1.0,
            area_mm2: 1.91,
            dram: "DDR4-2133",
            dram_gbps: 17.0,
            tech_nm: 28,
            peak_gops: 512.0,
        }
    }

    /// Crescent (ISCA'22), Table II column 3.
    pub fn crescent() -> AcceleratorConfig {
        AcceleratorConfig {
            name: "Crescent",
            pe_array: (16, 16),
            sram_kb: 1622.8,
            freq_ghz: 1.0,
            area_mm2: 4.75,
            dram: "DDR4-2133",
            dram_gbps: 17.0,
            tech_nm: 28,
            peak_gops: 512.0,
        }
    }

    /// FractalCloud (this paper), Table II column 4.
    pub fn fractalcloud() -> AcceleratorConfig {
        AcceleratorConfig {
            name: "FractalCloud",
            pe_array: (16, 16),
            sram_kb: 274.0,
            freq_ghz: 1.0,
            area_mm2: 1.5,
            dram: "DDR4-2133",
            dram_gbps: 17.0,
            tech_nm: 28,
            peak_gops: 512.0,
        }
    }

    /// All Table II rows, in column order.
    pub fn table2() -> Vec<AcceleratorConfig> {
        vec![
            AcceleratorConfig::mesorasi(),
            AcceleratorConfig::pointacc(),
            AcceleratorConfig::crescent(),
            AcceleratorConfig::fractalcloud(),
        ]
    }
}

/// The FractalCloud chip summary of Fig. 12.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipSpec {
    /// Die area in mm².
    pub die_area_mm2: f64,
    /// Core area in mm².
    pub core_area_mm2: f64,
    /// SRAM capacity in KB.
    pub sram_kb: f64,
    /// Clock in GHz.
    pub freq_ghz: f64,
    /// Average power in watts.
    pub avg_power_w: f64,
    /// Technology node.
    pub tech: &'static str,
}

impl ChipSpec {
    /// The published FractalCloud layout numbers.
    pub fn fractalcloud() -> ChipSpec {
        ChipSpec {
            die_area_mm2: 3.0,
            core_area_mm2: 1.5,
            sram_kb: 274.0,
            freq_ghz: 1.0,
            avg_power_w: 0.58,
            tech: "TSMC 28nm",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_paper() {
        let t = AcceleratorConfig::table2();
        assert_eq!(t.len(), 4);
        assert!(t.iter().all(|c| c.pe_array == (16, 16)));
        assert!(t.iter().all(|c| c.freq_ghz == 1.0));
        assert!(t.iter().all(|c| c.tech_nm == 28));
        assert!(t.iter().all(|c| c.peak_gops == 512.0));
        assert!(t.iter().all(|c| c.dram_gbps == 17.0));
        let fc = &t[3];
        assert_eq!(fc.area_mm2, 1.5);
        assert_eq!(fc.sram_kb, 274.0);
        // FractalCloud is the smallest design.
        assert!(t.iter().all(|c| c.area_mm2 >= fc.area_mm2));
    }

    #[test]
    fn chip_spec_matches_fig12() {
        let s = ChipSpec::fractalcloud();
        assert_eq!(s.core_area_mm2, 1.5);
        assert_eq!(s.avg_power_w, 0.58);
        assert_eq!(s.die_area_mm2, 3.0);
    }
}

//! Criterion micro-benchmarks: the cycle-level DRAM controller vs the
//! analytic stream model.

use criterion::{criterion_group, criterion_main, Criterion};
use fractalcloud_dram::{AccessPattern, Controller, DramConfig, Request, StreamModel};

fn bench_dram(c: &mut Criterion) {
    let cfg = DramConfig::ddr4_2133();
    let seq: Vec<Request> = (0..4096u64).map(|i| Request::read(i * 64)).collect();
    let stride = 786_433u64 * 64;
    let rnd: Vec<Request> = (0..4096u64).map(|i| Request::read((i * stride) % (1 << 32))).collect();

    let mut group = c.benchmark_group("dram");
    group.bench_function("controller-sequential-4k-bursts", |b| {
        b.iter(|| Controller::new(cfg.clone()).run_trace(&seq))
    });
    group.bench_function("controller-random-4k-bursts", |b| {
        b.iter(|| Controller::new(cfg.clone()).run_trace(&rnd))
    });
    group.bench_function("stream-model-1GB", |b| {
        let m = StreamModel::new(cfg.clone());
        b.iter(|| m.read(1 << 30, AccessPattern::Sequential))
    });
    group.finish();
}

criterion_group!(benches, bench_dram);
criterion_main!(benches);

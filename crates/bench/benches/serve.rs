//! Criterion micro-benchmarks for the serving layer: engine round-trips
//! (cold partition vs LRU hit) against the direct pipeline call they must
//! match, and batched submission of compatible frames.

use criterion::{criterion_group, criterion_main, Criterion};
use fractalcloud_core::{Pipeline, PipelineConfig};
use fractalcloud_pointcloud::generate::{scene_cloud, SceneConfig};
use fractalcloud_serve::{Engine, ServeConfig};

fn bench_serve_roundtrip(c: &mut Criterion) {
    let n = 4096;
    let cloud = scene_cloud(&SceneConfig::default(), n, 42);
    let cfg = PipelineConfig::default();
    let pipeline = Pipeline::new(cfg).unwrap();

    let mut group = c.benchmark_group("serve_4k");
    group.bench_function("direct-pipeline", |b| b.iter(|| pipeline.run(&cloud, true).unwrap()));

    // Cache disabled: every round-trip pays queueing + partition + BPPO.
    let cold = Engine::start(ServeConfig::default().cache_capacity(0));
    group.bench_function("engine-process-cold", |b| {
        b.iter(|| cold.process(cloud.clone(), cfg).unwrap())
    });
    cold.shutdown();

    // Cache enabled: identical frame bytes reuse the partition.
    let warm = Engine::start(ServeConfig::default());
    warm.process(cloud.clone(), cfg).unwrap(); // prime the LRU
    group.bench_function("engine-process-cached", |b| {
        b.iter(|| {
            let r = warm.process(cloud.clone(), cfg).unwrap();
            assert!(r.cache_hit);
            r
        })
    });
    warm.shutdown();
    group.finish();
}

fn bench_serve_batching(c: &mut Criterion) {
    let frames: Vec<_> = (0..8).map(|s| scene_cloud(&SceneConfig::default(), 1024, s)).collect();
    let cfg = PipelineConfig::default();

    let mut group = c.benchmark_group("serve_batching_1k");
    // A/B: cross-frame block batching (one parallel map over the union of
    // the batch's fused sample+group block tasks) vs the legacy
    // one-sequential-lane-per-frame schedule. Results are bit-identical;
    // only scheduling differs. The budget is forced above 1 so the block
    // schedule genuinely engages even on single-CPU hosts.
    let budget = fractalcloud_parallel::workers().max(2);
    for (label, batch_blocks) in
        [("submit-8-compatible-frames", true), ("submit-8-legacy-frame-lanes", false)]
    {
        let engine = Engine::start(
            ServeConfig::default()
                .cache_capacity(0)
                .max_batch(8)
                .thread_budget(budget)
                .batch_blocks(batch_blocks),
        );
        group.bench_function(label, |b| {
            b.iter(|| {
                let tickets: Vec<_> =
                    frames.iter().map(|f| engine.submit(f.clone(), cfg).unwrap()).collect();
                tickets.into_iter().map(|t| t.wait().unwrap()).collect::<Vec<_>>().len()
            })
        });
        engine.shutdown();
    }
    group.finish();
}

fn bench_serve_inference(c: &mut Criterion) {
    use fractalcloud_serve::{Aggregation, InferRequest, ModelConfig};
    use std::sync::Arc;
    let cloud = Arc::new(scene_cloud(&SceneConfig::default(), 1024, 42));

    let mut group = c.benchmark_group("serve_infer_1k");
    // Warm cache-hit INFER frames: the partition comes from the LRU and
    // the executor/weights from the engine's cache, so the two schedules
    // differ only in where the stage MLPs run — eager on gathered
    // centers × nsample rows, delayed once per unique point (bit-identical
    // logits). Response buffers recycle through the engine's pool.
    for (label, agg) in
        [("engine-infer-eager", Aggregation::Eager), ("engine-infer-delayed", Aggregation::Delayed)]
    {
        let engine = Engine::start(ServeConfig::default().workers(1));
        let request = || InferRequest {
            aggregation: Some(agg),
            ..InferRequest::new(ModelConfig::table1().remove(0))
        };
        let warm = engine.process_infer(Arc::clone(&cloud), request()).unwrap();
        engine.recycle_infer(warm);
        group.bench_function(label, |b| {
            b.iter(|| {
                let r = engine.process_infer(Arc::clone(&cloud), request()).unwrap();
                assert!(r.cache_hit);
                engine.recycle_infer(r);
            })
        });
        engine.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench_serve_roundtrip, bench_serve_batching, bench_serve_inference);
criterion_main!(benches);

//! Criterion micro-benchmarks: partitioning strategies (software builders)
//! and the sequential vs level-synchronous-parallel Fractal build.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fractalcloud_core::{Fractal, FractalConfig};
use fractalcloud_pointcloud::generate::{scene_cloud, SceneConfig};
use fractalcloud_pointcloud::partition::{
    KdTreePartitioner, OctreePartitioner, Partitioner, UniformPartitioner,
};

fn bench_partitioners(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition");
    for &n in &[4096usize, 16_384] {
        let cloud = scene_cloud(&SceneConfig::default(), n, 42);
        group.bench_with_input(BenchmarkId::new("fractal-th256", n), &cloud, |b, cl| {
            b.iter(|| Fractal::with_threshold(256).build(cl).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("kdtree-bs256", n), &cloud, |b, cl| {
            b.iter(|| KdTreePartitioner::new(256).partition(cl).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("octree-bs256", n), &cloud, |b, cl| {
            b.iter(|| OctreePartitioner::new(256).partition(cl).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("uniform-t256", n), &cloud, |b, cl| {
            b.iter(|| UniformPartitioner::with_target_block_size(256).partition(cl).unwrap())
        });
    }
    group.finish();
}

/// Sequential vs level-synchronous parallel Fractal build (identical
/// results; the gap is pure scheduling and scales with available cores).
fn bench_build_scheduling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fractal_build_scheduling");
    for &n in &[16_384usize, 65_536] {
        let cloud = scene_cloud(&SceneConfig::default(), n, 42);
        let cfg = FractalConfig::new(256);
        group.bench_with_input(BenchmarkId::new("sequential", n), &cloud, |b, cl| {
            b.iter(|| Fractal::new(cfg.sequential()).build(cl).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("parallel-frontier", n), &cloud, |b, cl| {
            b.iter(|| Fractal::new(cfg).build(cl).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_partitioners, bench_build_scheduling);
criterion_main!(benches);

//! Criterion micro-benchmarks: global vs block-parallel point operations.

use criterion::{criterion_group, criterion_main, Criterion};
use fractalcloud_core::{block_ball_query, block_fps, BppoConfig, Fractal};
use fractalcloud_pointcloud::generate::{scene_cloud, SceneConfig};
use fractalcloud_pointcloud::ops::{ball_query, farthest_point_sample};
use fractalcloud_pointcloud::Point3;

fn bench_point_ops(c: &mut Criterion) {
    let n = 4096;
    let cloud = scene_cloud(&SceneConfig::default(), n, 42);
    let part = Fractal::with_threshold(256).build(&cloud).unwrap().partition;
    let fps = block_fps(&cloud, &part, 0.25, &BppoConfig::sequential()).unwrap();
    let centers: Vec<Point3> = fps.indices.iter().map(|&i| cloud.point(i)).collect();

    let mut group = c.benchmark_group("point_ops_4k");
    group.bench_function("fps-global", |b| {
        b.iter(|| farthest_point_sample(&cloud, n / 4, 0).unwrap())
    });
    group.bench_function("fps-block-parallel", |b| {
        b.iter(|| block_fps(&cloud, &part, 0.25, &BppoConfig::default()).unwrap())
    });
    group.bench_function("fps-block-sequential", |b| {
        b.iter(|| block_fps(&cloud, &part, 0.25, &BppoConfig::sequential()).unwrap())
    });
    group.bench_function("ballquery-global", |b| {
        b.iter(|| ball_query(&cloud, &centers, 0.4, 16).unwrap())
    });
    group.bench_function("ballquery-block", |b| {
        b.iter(|| {
            block_ball_query(&cloud, &part, &fps.per_block, 0.4, 16, &BppoConfig::sequential())
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_point_ops);
criterion_main!(benches);

//! Criterion micro-benchmarks: global vs block-parallel point operations,
//! and the chunked SoA kernel path vs the retained scalar references.

use criterion::{criterion_group, criterion_main, Criterion};
use fractalcloud_core::bppo::reference as bppo_reference;
use fractalcloud_core::{block_ball_query, block_fps, BppoConfig, Fractal};
use fractalcloud_pointcloud::generate::{scene_cloud, SceneConfig};
use fractalcloud_pointcloud::kernels::{self, Backend};
use fractalcloud_pointcloud::ops::{
    ball_query, farthest_point_sample, k_nearest_neighbors, reference,
};
use fractalcloud_pointcloud::Point3;

fn bench_point_ops(c: &mut Criterion) {
    let n = 4096;
    let cloud = scene_cloud(&SceneConfig::default(), n, 42);
    let part = Fractal::with_threshold(256).build(&cloud).unwrap().partition;
    let fps = block_fps(&cloud, &part, 0.25, &BppoConfig::sequential()).unwrap();
    let centers: Vec<Point3> = fps.indices.iter().map(|&i| cloud.point(i)).collect();

    let mut group = c.benchmark_group("point_ops_4k");
    group.bench_function("fps-global", |b| {
        b.iter(|| farthest_point_sample(&cloud, n / 4, 0).unwrap())
    });
    group.bench_function("fps-block-parallel", |b| {
        b.iter(|| block_fps(&cloud, &part, 0.25, &BppoConfig::default()).unwrap())
    });
    group.bench_function("fps-block-sequential", |b| {
        b.iter(|| block_fps(&cloud, &part, 0.25, &BppoConfig::sequential()).unwrap())
    });
    group.bench_function("ballquery-global", |b| {
        b.iter(|| ball_query(&cloud, &centers, 0.4, 16).unwrap())
    });
    group.bench_function("ballquery-block", |b| {
        b.iter(|| {
            block_ball_query(&cloud, &part, &fps.per_block, 0.4, 16, &BppoConfig::sequential())
                .unwrap()
        })
    });
    group.finish();
}

/// Chunked SoA kernel path vs the retained scalar references, same inputs.
fn bench_scalar_vs_kernel(c: &mut Criterion) {
    let n = 4096;
    let cloud = scene_cloud(&SceneConfig::default(), n, 42);
    let part = Fractal::with_threshold(256).build(&cloud).unwrap().partition;
    let centers: Vec<Point3> = (0..256).map(|i| cloud.point(i * (n / 256))).collect();

    let mut group = c.benchmark_group("scalar_vs_kernel_4k");
    group.bench_function("fps-scalar-reference", |b| {
        b.iter(|| reference::farthest_point_sample(&cloud, n / 4, 0).unwrap())
    });
    group.bench_function("fps-soa-kernel", |b| {
        b.iter(|| farthest_point_sample(&cloud, n / 4, 0).unwrap())
    });
    group.bench_function("knn-scalar-reference", |b| {
        b.iter(|| reference::k_nearest_neighbors(&cloud, &centers, 16).unwrap())
    });
    group.bench_function("knn-soa-kernel", |b| {
        b.iter(|| k_nearest_neighbors(&cloud, &centers, 16).unwrap())
    });
    group.bench_function("ballquery-scalar-reference", |b| {
        b.iter(|| reference::ball_query(&cloud, &centers, 0.4, 16).unwrap())
    });
    group.bench_function("ballquery-soa-kernel", |b| {
        b.iter(|| ball_query(&cloud, &centers, 0.4, 16).unwrap())
    });
    group.bench_function("blockfps-scalar-reference", |b| {
        b.iter(|| {
            bppo_reference::block_fps(&cloud, &part, 0.25, &BppoConfig::sequential()).unwrap()
        })
    });
    group.bench_function("blockfps-soa-kernel", |b| {
        b.iter(|| block_fps(&cloud, &part, 0.25, &BppoConfig::sequential()).unwrap())
    });
    group.finish();
}

/// Batched selection kernels across every available backend: tiles of
/// `QUERY_TILE` queries per candidate pass vs one query at a time (the
/// `per-query` rows call the same driver with single-query tiles, so only
/// the coordinate-load amortization differs).
fn bench_batched_selection(c: &mut Criterion) {
    let n = 4096;
    let cloud = scene_cloud(&SceneConfig::default(), n, 42);
    let queries: Vec<[f32; 3]> = (0..256)
        .map(|i| {
            let p = cloud.point(i * (n / 256));
            [p.x, p.y, p.z]
        })
        .collect();
    let (xs, ys, zs) = (cloud.xs(), cloud.ys(), cloud.zs());
    let (k, r_sq, num) = (16, 0.16f32, 16);

    let mut group = c.benchmark_group("batched_selection_4k");
    for backend in Backend::ALL {
        if !backend.is_available() {
            continue;
        }
        let name = backend.name();
        group.bench_function(format!("knn-batched-{name}"), |b| {
            b.iter(|| {
                let mut rows = 0usize;
                kernels::knn_select_batch_with(
                    backend,
                    xs,
                    ys,
                    zs,
                    &queries,
                    k,
                    |_, best| rows += best.len(),
                    |_| {},
                );
                rows
            })
        });
        group.bench_function(format!("knn-per-query-{name}"), |b| {
            b.iter(|| {
                let mut rows = 0usize;
                for q in &queries {
                    kernels::knn_select_batch_with(
                        backend,
                        xs,
                        ys,
                        zs,
                        std::slice::from_ref(q),
                        k,
                        |_, best| rows += best.len(),
                        |_| {},
                    );
                }
                rows
            })
        });
        group.bench_function(format!("ballquery-batched-{name}"), |b| {
            b.iter(|| {
                let mut hits = 0usize;
                kernels::ball_select_batch_with(
                    backend,
                    xs,
                    ys,
                    zs,
                    &queries,
                    r_sq,
                    num,
                    |_, best, _| hits += best.len(),
                );
                hits
            })
        });
        group.bench_function(format!("ballquery-per-query-{name}"), |b| {
            b.iter(|| {
                let mut hits = 0usize;
                for q in &queries {
                    kernels::ball_select_batch_with(
                        backend,
                        xs,
                        ys,
                        zs,
                        std::slice::from_ref(q),
                        r_sq,
                        num,
                        |_, best, _| hits += best.len(),
                    );
                }
                hits
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_point_ops, bench_scalar_vs_kernel, bench_batched_selection);
criterion_main!(benches);

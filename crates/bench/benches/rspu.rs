//! Criterion micro-benchmarks: RSPU window-check and the LOD mask.

use criterion::{criterion_group, criterion_main, Criterion};
use fractalcloud_core::{block_fps, BppoConfig, Fractal, WindowCheck};
use fractalcloud_pointcloud::generate::{scene_cloud, SceneConfig};

fn bench_rspu(c: &mut Criterion) {
    let cloud = scene_cloud(&SceneConfig::default(), 8192, 42);
    let part = Fractal::with_threshold(256).build(&cloud).unwrap().partition;

    let mut group = c.benchmark_group("rspu");
    group.bench_function("block-fps-window-check", |b| {
        b.iter(|| block_fps(&cloud, &part, 0.5, &BppoConfig::sequential()).unwrap())
    });
    group.bench_function("block-fps-no-window-check", |b| {
        let cfg = BppoConfig { window_check: false, ..BppoConfig::sequential() };
        b.iter(|| block_fps(&cloud, &part, 0.5, &cfg).unwrap())
    });
    group.bench_function("lod-mask-traversal-64k", |b| {
        let mut wc = WindowCheck::new(65_536);
        for i in (0..65_536).step_by(3) {
            wc.mark_sampled(i);
        }
        b.iter(|| wc.iter_valid().count())
    });
    group.finish();
}

criterion_group!(benches, bench_rspu);
criterion_main!(benches);

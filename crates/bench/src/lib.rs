//! Shared harness utilities for the figure/table reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper:
//! it runs the corresponding experiment on the simulator stack and prints
//! the measured series next to the paper's reported values, so agreement in
//! *shape* (orderings, growth rates, crossovers) can be checked at a glance.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use fractalcloud_accel::{
    Accelerator, DesignModel, DesignParams, ExecutionReport, GpuModel, Workload,
};
use fractalcloud_pnn::ModelConfig;

/// The deterministic seed every harness uses.
pub const SEED: u64 = 42;

/// Input scales for the small-scale sweep (Fig. 13 left).
pub const SMALL_SCALES: [usize; 3] = [1024, 2048, 4096];

/// Input scales for the large-scale sweep (Fig. 13 right / Fig. 4). The
/// paper uses 8K/33K/131K/289K; pass `--quick` to any binary to cap at 33K.
pub const LARGE_SCALES: [usize; 4] = [8192, 33_000, 131_000, 289_000];

/// Returns the large-scale list honoring a `--quick` CLI flag.
pub fn large_scales() -> Vec<usize> {
    if quick() {
        LARGE_SCALES.iter().copied().filter(|&n| n <= 33_000).collect()
    } else {
        LARGE_SCALES.to_vec()
    }
}

/// True if `--quick` was passed (trims the largest inputs for fast runs).
pub fn quick() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Prints a figure/table header.
pub fn header(id: &str, caption: &str) {
    println!("================================================================");
    println!("{id}: {caption}");
    println!("================================================================");
}

/// Prints a labelled row of f64 values.
pub fn row(label: &str, values: &[f64]) {
    print!("{label:<26}");
    for v in values {
        print!(" {:>10}", format_value(*v));
    }
    println!();
}

/// Prints a labelled row of strings.
pub fn row_str(label: &str, values: &[String]) {
    print!("{label:<26}");
    for v in values {
        print!(" {v:>10}");
    }
    println!();
}

/// Compact value formatting: 3 significant digits, engineering style.
pub fn format_value(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

/// Executes one workload on every Table II design plus the GPU.
pub struct FleetReports {
    /// GPU baseline.
    pub gpu: ExecutionReport,
    /// Mesorasi.
    pub mesorasi: ExecutionReport,
    /// PointAcc.
    pub pointacc: ExecutionReport,
    /// Crescent.
    pub crescent: ExecutionReport,
    /// FractalCloud.
    pub fractalcloud: ExecutionReport,
}

impl FleetReports {
    /// Runs the whole fleet on `model` at `n` points.
    pub fn run(model: &ModelConfig, n: usize) -> FleetReports {
        let w = Workload::prepare(model, n, SEED);
        FleetReports {
            gpu: GpuModel::titan_rtx().execute(&w),
            mesorasi: DesignModel::new(DesignParams::mesorasi()).execute(&w),
            pointacc: DesignModel::new(DesignParams::pointacc()).execute(&w),
            crescent: DesignModel::new(DesignParams::crescent()).execute(&w),
            fractalcloud: DesignModel::new(DesignParams::fractalcloud()).execute(&w),
        }
    }

    /// Speedups over the GPU, in Fig. 13 row order
    /// (Mesorasi, PointAcc, Crescent, FractalCloud).
    pub fn speedups(&self) -> [f64; 4] {
        [
            self.mesorasi.speedup_over(&self.gpu),
            self.pointacc.speedup_over(&self.gpu),
            self.crescent.speedup_over(&self.gpu),
            self.fractalcloud.speedup_over(&self.gpu),
        ]
    }

    /// Energy savings over the GPU, same order.
    pub fn energy_savings(&self) -> [f64; 4] {
        [
            self.mesorasi.energy_saving_over(&self.gpu),
            self.pointacc.energy_saving_over(&self.gpu),
            self.crescent.energy_saving_over(&self.gpu),
            self.fractalcloud.energy_saving_over(&self.gpu),
        ]
    }
}

/// The seven Table I workloads with their representative scales.
pub fn table1_workloads() -> Vec<(ModelConfig, usize)> {
    vec![
        (ModelConfig::pointnetpp_classification(), 1024),
        (ModelConfig::pointnext_classification(), 2048),
        (ModelConfig::pointnetpp_part_segmentation(), 2048),
        (ModelConfig::pointnext_part_segmentation(), 4096),
        (ModelConfig::pointnetpp_segmentation(), 4096),
        (ModelConfig::pointnext_segmentation(), 16_384),
        (ModelConfig::pointvector_segmentation(), 16_384),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_runs_a_small_workload() {
        let f = FleetReports::run(&ModelConfig::pointnetpp_classification(), 512);
        let s = f.speedups();
        assert!(s.iter().all(|&v| v > 0.0));
        // FractalCloud leads the fleet.
        assert!(s[3] >= s[0] && s[3] >= s[1] && s[3] >= s[2]);
    }

    #[test]
    fn formatting_is_compact() {
        assert_eq!(format_value(0.0), "0");
        assert_eq!(format_value(2.34159), "2.34");
        assert_eq!(format_value(27.4), "27.4");
        assert_eq!(format_value(1893.0), "1893");
    }

    #[test]
    fn seven_workloads() {
        assert_eq!(table1_workloads().len(), 7);
    }
}

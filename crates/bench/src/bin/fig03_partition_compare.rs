//! Fig. 3: comparison of partitioning strategies — none (PointAcc), uniform
//! (PNNPU), KD-tree (Crescent), Fractal — on partition latency, balance,
//! and the accuracy proxy.

use fractalcloud_bench::{format_value, header, row_str, SEED};
use fractalcloud_core::{evaluate_quality, Fractal, QualityConfig};
use fractalcloud_pointcloud::generate::{scene_cloud, SceneConfig};
use fractalcloud_pointcloud::partition::{
    KdTreePartitioner, Partition, Partitioner, UniformPartitioner,
};
use fractalcloud_sim::{EnergyTable, FractalEngine, FractalEngineConfig};

fn main() {
    header("Fig. 3", "partitioning strategies: latency, balance, accuracy proxy");
    let n = 16_384;
    let th = 256;
    let cloud = scene_cloud(&SceneConfig::default(), n, SEED);
    let engine = FractalEngine::new(FractalEngineConfig::fractalcloud(), EnergyTable::tsmc28());

    let uniform = UniformPartitioner::with_target_block_size(th).partition(&cloud).unwrap();
    let kd = KdTreePartitioner::new(th).partition(&cloud).unwrap();
    let fractal = Fractal::with_threshold(th).build(&cloud).unwrap().partition;

    let lat_ms = |p: &Partition| -> f64 {
        let cycles = match p.method {
            "kd-tree" => engine.kd_tree_partition(n as u64, th as u64).cycles,
            _ => engine.traversal_partition(&p.cost).cycles,
        };
        cycles as f64 / 1e6 // 1 GHz → ms
    };

    let quality = |p: &Partition, equal: bool| -> f64 {
        let cfg = QualityConfig { equal_allocation: equal, ..QualityConfig::default() };
        let q = evaluate_quality(&cloud, p, &cfg).expect("quality evaluates");
        q.proxy.estimated_accuracy_loss_pp()
    };

    row_str("strategy", &["baseline".into(), "uniform".into(), "kd-tree".into(), "fractal".into()]);
    row_str(
        "partition latency (ms)",
        &[
            "0".into(),
            format_value(lat_ms(&uniform)),
            format_value(lat_ms(&kd)),
            format_value(lat_ms(&fractal)),
        ],
    );
    row_str(
        "imbalance (max/mean)",
        &[
            "-".into(),
            format_value(uniform.balance().imbalance()),
            format_value(kd.balance().imbalance()),
            format_value(fractal.balance().imbalance()),
        ],
    );
    row_str(
        "est. accuracy loss (pp)",
        &[
            "0".into(),
            format_value(quality(&uniform, true)),
            format_value(quality(&kd, false)),
            format_value(quality(&fractal, false)),
        ],
    );
    println!();
    println!("Paper (Fig. 3, PointNeXt on S3DIS): baseline 62.59% mIoU / no");
    println!("partition; uniform 53.79% (−8.8pp), 0.03 ms; kd-tree 62.30%,");
    println!("4.03 ms; fractal 62.03% (−0.6pp), 0.04 ms. Expected shape:");
    println!("kd-tree strictly balanced but ~100× slower; uniform fastest but");
    println!("imbalanced and inaccurate; fractal near-uniform speed, near-kd");
    println!("balance, sub-1pp proxy loss.");
}

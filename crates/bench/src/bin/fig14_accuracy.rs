//! Fig. 14: network-accuracy comparison across designs.
//!
//! We cannot retrain networks (no datasets/GPUs here); instead the harness
//! reports the paper's published accuracies alongside our *accuracy-proxy*
//! estimates (neighbor recall / sampling coverage → estimated loss, see
//! DESIGN.md §3). The proxy is computed for the designs whose loss comes
//! from partition-induced search changes (PNNPU, FractalCloud); Mesorasi's
//! and Crescent's losses stem from delayed aggregation and approximation,
//! which are orthogonal to partitioning and quoted from the paper.

use fractalcloud_bench::{format_value, header, row_str, SEED};
use fractalcloud_core::{evaluate_quality, Fractal, QualityConfig};
use fractalcloud_pointcloud::generate::{scene_cloud, SceneConfig};
use fractalcloud_pointcloud::partition::{Partitioner, UniformPartitioner};

fn main() {
    header("Fig. 14", "accuracy (proxy) comparison across designs");
    let cloud = scene_cloud(&SceneConfig::default(), 16_384, SEED);

    let fractal = Fractal::with_threshold(256).build(&cloud).unwrap().partition;
    let uniform = UniformPartitioner::with_target_block_size(256).partition(&cloud).unwrap();

    let q_fc = evaluate_quality(&cloud, &fractal, &QualityConfig::default()).unwrap();
    let q_pnnpu = evaluate_quality(
        &cloud,
        &uniform,
        &QualityConfig { equal_allocation: true, ..QualityConfig::default() },
    )
    .unwrap();

    row_str(
        "design",
        &[
            "Original".into(),
            "Mesorasi".into(),
            "Crescent".into(),
            "PNNPU".into(),
            "FractalCloud".into(),
        ],
    );
    row_str(
        "paper loss (pp)",
        &["0.0".into(), "0.9".into(), "2.0".into(), "8.8".into(), "<0.7".into()],
    );
    row_str(
        "our proxy loss (pp)",
        &[
            "0.0".into(),
            "(quoted)".into(),
            "(quoted)".into(),
            format_value(q_pnnpu.proxy.estimated_accuracy_loss_pp()),
            format_value(q_fc.proxy.estimated_accuracy_loss_pp()),
        ],
    );
    row_str(
        "grouping recall",
        &[
            "1.00".into(),
            "-".into(),
            "-".into(),
            format_value(q_pnnpu.proxy.grouping_recall),
            format_value(q_fc.proxy.grouping_recall),
        ],
    );
    row_str(
        "coverage ratio",
        &[
            "1.00".into(),
            "-".into(),
            "-".into(),
            format_value(q_pnnpu.proxy.sampling_coverage_ratio),
            format_value(q_fc.proxy.sampling_coverage_ratio),
        ],
    );
    println!();
    println!("Paper (PointNeXt (s), mIoU): original 62.6, PNNPU 53.8 (−8.8pp),");
    println!("FractalCloud 62.0 (−0.6pp). Expected shape: FractalCloud proxy");
    println!("loss ≪ PNNPU proxy loss, both ordered as in the paper.");
}

//! Fig. 4: GPU inference latency and point-operation share across the
//! Table I workloads and input scales — the bottleneck-shift motivation.

use fractalcloud_accel::{Accelerator, GpuModel, Workload};
use fractalcloud_bench::{format_value, header, large_scales, row_str, SEED};
use fractalcloud_pnn::ModelConfig;

fn main() {
    header("Fig. 4", "GPU latency (ms) and point-op share across scales");

    // Left half: the 7 workloads at their representative scales.
    let workloads = [
        (ModelConfig::pointnetpp_classification(), 1024),
        (ModelConfig::pointnext_classification(), 2048),
        (ModelConfig::pointnetpp_segmentation(), 4096),
        (ModelConfig::pointnext_segmentation(), 16_384),
        (ModelConfig::pointvector_segmentation(), 16_384),
    ];
    println!("--- representative scales ---");
    row_str(
        "workload",
        &workloads.iter().map(|(m, n)| format!("{}@{}", m.notation, n)).collect::<Vec<_>>(),
    );
    let gpu = GpuModel::titan_rtx();
    let mut lat = Vec::new();
    let mut share = Vec::new();
    for (model, n) in &workloads {
        let r = gpu.execute(&Workload::prepare(model, *n, SEED));
        lat.push(format_value(r.latency_ms()));
        share.push(format!("{:.0}%", 100.0 * r.point_op_ms() / r.latency_ms()));
    }
    row_str("latency (ms)", &lat);
    row_str("point-op share", &share);

    // Right half: PNXt(s) scale sweep (the S3DIS-Test columns).
    println!();
    println!("--- PointNeXt (s) scale sweep ---");
    let model = ModelConfig::pointnext_segmentation();
    let scales = large_scales();
    row_str("points", &scales.iter().map(|n| format!("{}K", n / 1024)).collect::<Vec<_>>());
    let mut lat = Vec::new();
    let mut share = Vec::new();
    for &n in &scales {
        let r = gpu.execute(&Workload::prepare(&model, n, SEED));
        lat.push(format_value(r.latency_ms()));
        share.push(format!("{:.0}%", 100.0 * r.point_op_ms() / r.latency_ms()));
    }
    row_str("latency (ms)", &lat);
    row_str("point-op share", &share);
    println!();
    println!("Paper shape: point-op share rises from ~30-45% at 1K-4K to 78%");
    println!("at 16K and >97% at 131K-289K, while absolute latency grows");
    println!("super-linearly (Fig. 4 reports 10⁰–10⁴ ms over this range).");
}

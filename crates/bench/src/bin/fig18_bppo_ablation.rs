//! Fig. 18: incremental ablation of the FractalCloud optimizations —
//! Baseline → +delayed-aggregation (Meso) → +RSPU (window check + reuse) →
//! +BWS → +BWG → +BWI → +BWGa — on PointNeXt (s).

use fractalcloud_accel::{Accelerator, DesignModel, DesignParams, PartitionKind, Workload};
use fractalcloud_bench::{format_value, header, quick, row_str, SEED};
use fractalcloud_pnn::ModelConfig;

/// The ablation ladder: every step enables one more optimization.
fn steps() -> Vec<(&'static str, DesignParams)> {
    let mut p = DesignParams::fractalcloud();
    p.partition = PartitionKind::None;
    p.block_sampling = false;
    p.block_grouping = false;
    p.block_interpolation = false;
    p.block_gathering = false;
    p.window_check = false;
    p.intra_block_reuse = false;
    p.delayed_aggregation = false;
    p.name = "Baseline".into();
    let base = p.clone();

    let mut meso = base.clone();
    meso.delayed_aggregation = true;
    meso.name = "Baseline(Meso)".into();

    let mut rspu = meso.clone();
    rspu.window_check = true;
    rspu.intra_block_reuse = true;
    rspu.name = "+RSPU".into();

    let mut bws = rspu.clone();
    bws.partition = PartitionKind::Fractal;
    bws.block_sampling = true;
    bws.name = "+BWS".into();

    let mut bwg = bws.clone();
    bwg.block_grouping = true;
    bwg.name = "+BWG".into();

    let mut bwi = bwg.clone();
    bwi.block_interpolation = true;
    bwi.name = "+BWI".into();

    let mut bwga = bwi.clone();
    bwga.block_gathering = true;
    bwga.name = "+BWGa".into();

    vec![
        ("Baseline", base),
        ("Baseline(Meso)", meso),
        ("+RSPU", rspu),
        ("+BWS", bws),
        ("+BWG", bwg),
        ("+BWI", bwi),
        ("+BWGa", bwga),
    ]
}

fn main() {
    header("Fig. 18", "incremental speedup & energy savings of RSPU + BPPO");
    let n = if quick() { 33_000 } else { 289_000 };
    println!("(PointNeXt (s) @ {n} points)");
    let w = Workload::prepare(&ModelConfig::pointnext_segmentation(), n, SEED);

    let ladder = steps();
    let reports: Vec<_> =
        ladder.iter().map(|(name, p)| (*name, DesignModel::new(p.clone()).execute(&w))).collect();
    let base = &reports[0].1;

    row_str("step", &reports.iter().map(|(n, _)| n.to_string()).collect::<Vec<_>>());
    row_str(
        "latency (ms)",
        &reports.iter().map(|(_, r)| format_value(r.latency_ms())).collect::<Vec<_>>(),
    );
    row_str(
        "cum. speedup",
        &reports.iter().map(|(_, r)| format_value(r.speedup_over(base))).collect::<Vec<_>>(),
    );
    row_str(
        "cum. energy saving",
        &reports.iter().map(|(_, r)| format_value(r.energy_saving_over(base))).collect::<Vec<_>>(),
    );
    println!();
    println!("Paper: Meso ≈ 1.004×; +RSPU 1.37× (1.48× energy); +BWS 2.3×;");
    println!("+BWG 2.2×; +BWI 20×; +BWGa 1.5× — compounding to ≈209× speedup");
    println!("and 192× energy saving over the unoptimized baseline at 289K.");
    println!("Expected shape: the block-wise interpolation step is the largest");
    println!("single contributor; every step is ≥1×.");
}

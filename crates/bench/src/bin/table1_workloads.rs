//! Table I: the evaluated networks and datasets.

use fractalcloud_bench::header;
use fractalcloud_pnn::{ModelConfig, OpTrace, Task};

fn main() {
    header("Table I", "evaluated networks and datasets");
    println!(
        "{:<14} {:<10} {:<18} {:<12} {:<8} {:>12} {:>10}",
        "model", "notation", "task", "dataset", "scene", "MACs @4K", "point-ops"
    );
    for m in ModelConfig::table1() {
        let (dataset, scene) = match m.task {
            Task::Classification => ("ModelNet40", "object"),
            Task::PartSegmentation => ("ShapeNet", "object"),
            Task::Segmentation => ("S3DIS", "indoor"),
        };
        let task = match m.task {
            Task::Classification => "classification",
            Task::PartSegmentation => "part segment.",
            Task::Segmentation => "segmentation",
        };
        let trace = OpTrace::build(&m, 4096);
        println!(
            "{:<14} {:<10} {:<18} {:<12} {:<8} {:>11}M {:>10}",
            m.family,
            m.notation,
            task,
            dataset,
            scene,
            trace.total_macs() / 1_000_000,
            trace.point_ops()
        );
    }
    println!();
    println!("Datasets are synthetic equivalents (see DESIGN.md §3): objects");
    println!("with surface-sampled points, indoor rooms with coplanar structure,");
    println!("dense clusters, and 0.5-2.5% outliers.");
}

//! Fig. 13: speedup and energy saving over the GPU for Mesorasi, PointAcc,
//! Crescent, and FractalCloud across the Table I workloads and input
//! scales — the paper's headline result.

use fractalcloud_bench::{
    format_value, header, large_scales, quick, row_str, FleetReports, SMALL_SCALES,
};
use fractalcloud_pnn::ModelConfig;

fn print_block(title: &str, runs: &[(String, FleetReports)]) {
    println!("--- {title} ---");
    row_str("workload", &runs.iter().map(|(l, _)| l.clone()).collect::<Vec<_>>());
    for (i, name) in ["Mesorasi", "PointAcc", "Crescent", "FractalCloud"].iter().enumerate() {
        row_str(
            &format!("speedup {name}"),
            &runs.iter().map(|(_, f)| format_value(f.speedups()[i])).collect::<Vec<_>>(),
        );
    }
    for (i, name) in ["Mesorasi", "PointAcc", "Crescent", "FractalCloud"].iter().enumerate() {
        row_str(
            &format!("energy-sav {name}"),
            &runs.iter().map(|(_, f)| format_value(f.energy_savings()[i])).collect::<Vec<_>>(),
        );
    }
    println!();
}

fn main() {
    header("Fig. 13", "speedup & energy saving vs GPU (higher is better)");

    // Small-scale: classification / part segmentation at 1K-4K.
    let small: Vec<(ModelConfig, usize)> = vec![
        (ModelConfig::pointnetpp_classification(), SMALL_SCALES[0]),
        (ModelConfig::pointnext_classification(), SMALL_SCALES[1]),
        (ModelConfig::pointnetpp_part_segmentation(), SMALL_SCALES[2]),
        (ModelConfig::pointnext_part_segmentation(), SMALL_SCALES[2]),
        (ModelConfig::pointnetpp_segmentation(), SMALL_SCALES[2]),
    ];
    let runs: Vec<(String, FleetReports)> = small
        .iter()
        .map(|(m, n)| (format!("{}@{}", m.notation, n), FleetReports::run(m, *n)))
        .collect();
    print_block("small-scale inputs", &runs);

    // Large-scale: PNXt (s) and PVr (s) sweeps (the S3DIS-Test columns).
    for model in [ModelConfig::pointnext_segmentation(), ModelConfig::pointvector_segmentation()] {
        let runs: Vec<(String, FleetReports)> = large_scales()
            .iter()
            .map(|&n| (format!("{}K", n / 1024), FleetReports::run(&model, n)))
            .collect();
        print_block(&format!("{} on S3DIS-Test", model.notation), &runs);
    }

    if quick() {
        println!("(--quick: 131K/289K omitted)");
    }
    println!("Paper shape: small-scale FractalCloud ≈ 19× GPU and leads every");
    println!("baseline; at 131K-289K PointAcc/Mesorasi drop below 1× GPU,");
    println!("Crescent hovers near 1×, FractalCloud reaches 23-68× with");
    println!("energy savings in the 10²-10³ range.");
}

//! Fig. 5: the workload structure of KD-tree construction (exclusive,
//! serial sorts) versus Fractal (inclusive traversals), with the paper's two
//! anchor configurations measured on the real implementations.

use fractalcloud_bench::{header, row_str, SEED};
use fractalcloud_core::Fractal;
use fractalcloud_pointcloud::generate::{scene_cloud, uniform_cube, SceneConfig};
use fractalcloud_pointcloud::partition::{KdTreePartitioner, Partitioner};
use fractalcloud_sim::Sorter;

fn main() {
    header("Fig. 5", "KD-tree sorts vs Fractal traversals");

    // Anchor 1: BS = 64, 1K points.
    let cloud = uniform_cube(1024, SEED);
    let kd = KdTreePartitioner::new(64).partition(&cloud).unwrap();
    let fr = Fractal::with_threshold(64).build(&cloud).unwrap();
    row_str(
        "config",
        &["paper sorts".into(), "measured".into(), "paper trav.".into(), "measured".into()],
    );
    row_str(
        "BS=64, 1K points",
        &["15".into(), kd.cost.sort_invocations.to_string(), "4".into(), fr.iterations.to_string()],
    );

    // Anchor 2: BS = 256, 289K points (analytic count + measured fractal).
    let big = scene_cloud(&SceneConfig::default(), 289_000, SEED);
    let fr_big = Fractal::with_threshold(256).build(&big).unwrap();
    row_str(
        "BS=256, 289K points",
        &[
            "2047".into(),
            Sorter::kd_tree_sorts(289_000, 256).to_string(),
            "11".into(),
            fr_big.iterations.to_string(),
        ],
    );
    println!();
    println!("Complexity: KD-tree O(n/BS) serial sorts; Fractal O(log2 n/BS)");
    println!("traversals. Measured fractal iterations may exceed the balanced");
    println!("bound by 1-3 levels on skewed scenes (dense clusters split deeper).");
}

//! Table II + Fig. 12: the evaluated hardware accelerators and the
//! FractalCloud chip summary.

use fractalcloud_accel::{AcceleratorConfig, ChipSpec};
use fractalcloud_bench::header;

fn main() {
    header("Table II", "evaluated hardware accelerators");
    println!(
        "{:<14} {:>7} {:>10} {:>7} {:>10} {:>12} {:>6} {:>10}",
        "accelerator", "cores", "SRAM (KB)", "freq", "area (mm²)", "DRAM", "tech", "peak GOPS"
    );
    for c in AcceleratorConfig::table2() {
        println!(
            "{:<14} {:>7} {:>10} {:>6}G {:>10} {:>12} {:>4}nm {:>10}",
            c.name,
            format!("{}x{}", c.pe_array.0, c.pe_array.1),
            c.sram_kb,
            c.freq_ghz,
            c.area_mm2,
            c.dram,
            c.tech_nm,
            c.peak_gops
        );
    }

    println!();
    header("Fig. 12", "FractalCloud chip summary (paper layout numbers)");
    let s = ChipSpec::fractalcloud();
    println!("die area      {:>8} mm²", s.die_area_mm2);
    println!("core area     {:>8} mm²", s.core_area_mm2);
    println!("SRAM          {:>8} KB", s.sram_kb);
    println!("frequency     {:>8} GHz", s.freq_ghz);
    println!("avg power     {:>8} W", s.avg_power_w);
    println!("technology    {:>10}", s.tech);
}

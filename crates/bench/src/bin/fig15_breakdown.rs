//! Fig. 15: latency and energy breakdowns for PointAcc, Crescent, and
//! FractalCloud running PointNeXt (s) on a 33K-point scene.

use fractalcloud_accel::{Accelerator, DesignModel, DesignParams, Workload};
use fractalcloud_bench::{format_value, header, row_str, SEED};
use fractalcloud_pnn::ModelConfig;
use fractalcloud_sim::PhaseClass;

fn main() {
    header("Fig. 15", "latency & energy breakdown, PNXt (s) @ 33K");
    let w = Workload::prepare(&ModelConfig::pointnext_segmentation(), 33_000, SEED);

    let reports = [
        DesignModel::new(DesignParams::pointacc()).execute(&w),
        DesignModel::new(DesignParams::crescent()).execute(&w),
        DesignModel::new(DesignParams::fractalcloud()).execute(&w),
    ];

    println!("--- latency breakdown (ms) ---");
    row_str("design", &reports.iter().map(|r| r.accelerator.clone()).collect::<Vec<_>>());
    row_str(
        "point ops",
        &reports
            .iter()
            .map(|r| {
                format_value(r.class_ms(PhaseClass::PointOp) + r.class_ms(PhaseClass::Partition))
            })
            .collect::<Vec<_>>(),
    );
    row_str(
        "  (partitioning)",
        &reports
            .iter()
            .map(|r| format_value(r.class_ms(PhaseClass::Partition)))
            .collect::<Vec<_>>(),
    );
    row_str("MLPs", &reports.iter().map(|r| format_value(r.mlp_ms())).collect::<Vec<_>>());
    row_str("total", &reports.iter().map(|r| format_value(r.latency_ms())).collect::<Vec<_>>());

    println!();
    println!("--- energy breakdown (mJ) ---");
    row_str("design", &reports.iter().map(|r| r.accelerator.clone()).collect::<Vec<_>>());
    for (label, pick) in [("compute", 0usize), ("SRAM", 1), ("DRAM", 2), ("total", 3)] {
        row_str(
            label,
            &reports
                .iter()
                .map(|r| {
                    let e = r.energy();
                    let v = match pick {
                        0 => e.compute_pj,
                        1 => e.sram_pj,
                        2 => e.dram_pj,
                        _ => e.total_pj(),
                    };
                    format_value(v * 1e-9)
                })
                .collect::<Vec<_>>(),
        );
    }
    println!();
    println!("--- DRAM traffic (MB) ---");
    row_str(
        "bytes",
        &reports.iter().map(|r| format_value(r.dram_bytes as f64 / 1e6)).collect::<Vec<_>>(),
    );
    println!();
    println!("Paper shape (Fig. 15): point ops dominate PointAcc and Crescent");
    println!("latency; FractalCloud total is ~16× lower. PointAcc's energy is");
    println!("DRAM-heavy; Crescent trades DRAM for SRAM energy (1.6 MB buffer)");
    println!("and lands near or above PointAcc's total; FractalCloud is ~10×");
    println!("below both with a small-buffer, streamed-DRAM profile.");
}

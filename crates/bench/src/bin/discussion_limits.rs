//! §VI-D discussion experiments: the asymptotic limit (1M points) and the
//! imbalance effect of Fractal partitioning.
//!
//! ```text
//! cargo run --release -p fractalcloud-bench --bin discussion_limits
//! ```

use fractalcloud_accel::{Accelerator, DesignModel, DesignParams, GpuModel, Workload};
use fractalcloud_bench::{format_value, header, quick, row_str, SEED};
use fractalcloud_core::Fractal;
use fractalcloud_pnn::ModelConfig;
use fractalcloud_pointcloud::generate::{scene_cloud, SceneConfig};
use fractalcloud_sim::{EnergyTable, Rspu, RspuConfig};

fn main() {
    header("§VI-D", "asymptotic limit and imbalance effect");
    let model = ModelConfig::pointnext_segmentation();

    // --- Asymptotic speedup at very large scale ---
    let n = if quick() { 131_000 } else { 1_000_000 };
    println!("--- asymptotic scaling (PNXt (s) @ {n}) ---");
    let cloud = scene_cloud(&SceneConfig::default(), n, SEED);
    let w = Workload::prepare_with_threshold(&model, &cloud, 256);
    let gpu = GpuModel::titan_rtx().execute(&w);
    let fc = DesignModel::new(DesignParams::fractalcloud()).execute(&w);
    println!(
        "GPU {:.0} ms, FractalCloud {:.1} ms -> {:.1}x speedup (paper: 105.7x at 1M)",
        gpu.latency_ms(),
        fc.latency_ms(),
        fc.speedup_over(&gpu)
    );
    println!(
        "DRAM working set: coords {:.1} MB (a 24 GB DRAM handles 3M-point PNXt per the paper)",
        n as f64 * 6.0 / 1e6
    );

    // --- Imbalance effect: fractal blocks vs a strictly balanced split ---
    println!();
    println!("--- imbalance effect (point-op makespan, 33K scene) ---");
    let cloud = scene_cloud(&SceneConfig::default(), 33_000, SEED);
    let fr = Fractal::with_threshold(256).build(&cloud).unwrap();
    let sizes: Vec<usize> = fr.partition.blocks.iter().map(|b| b.len()).collect();
    let rspu = Rspu::new(RspuConfig::fractalcloud(), EnergyTable::tsmc28());

    // Makespan of block FPS work with the real (partially imbalanced)
    // fractal blocks versus a hypothetical strictly balanced partition of
    // the same block count.
    let work = |sizes: &[usize]| -> u64 {
        let (total, critical, _) = fractalcloud_accel::analytic::block_fps(sizes, 0.25, true);
        rspu.block_parallel_from_aggregate(&total, &critical).cycles
    };
    let real = work(&sizes);
    let even = vec![33_000 / sizes.len(); sizes.len()];
    let balanced = work(&even);
    let overhead = 100.0 * (real as f64 / balanced as f64 - 1.0);
    row_str(
        "blocks / min / max",
        &[
            sizes.len().to_string(),
            sizes.iter().min().unwrap().to_string(),
            sizes.iter().max().unwrap().to_string(),
        ],
    );
    row_str("point-op makespan vs strictly balanced", &[format!("+{}%", format_value(overhead))]);
    // End-to-end impact scales by the point-op share of total latency.
    let w33 = Workload::prepare_with_threshold(&model, &cloud, 256);
    let fc33 = DesignModel::new(DesignParams::fractalcloud()).execute(&w33);
    let share = fc33.point_op_ms() / fc33.latency_ms();
    row_str("end-to-end latency impact", &[format!("+{}%", format_value(overhead * share))]);
    println!();
    println!("Paper: partial imbalance adds only 3.0% (PointNeXt) / 2.8%");
    println!("(PointVector) end-to-end latency because the threshold bounds");
    println!("the largest block. Expected: single-digit percent end-to-end.");
}

//! Fig. 17: the Fractal threshold (`th`) trade-off between hardware speedup
//! and network accuracy (proxy) for PointNeXt (s).

use fractalcloud_accel::{Accelerator, DesignModel, DesignParams, Workload};
use fractalcloud_bench::{format_value, header, quick, row_str, SEED};
use fractalcloud_core::{evaluate_quality, Fractal, QualityConfig};
use fractalcloud_pnn::ModelConfig;
use fractalcloud_pointcloud::generate::{scene_cloud, SceneConfig};

fn main() {
    header("Fig. 17", "threshold sweep: speedup vs accuracy proxy, PNXt (s)");
    let n = if quick() { 16_384 } else { 33_000 };
    let model = ModelConfig::pointnext_segmentation();
    let cloud = scene_cloud(&SceneConfig::default(), n, SEED);

    // The "no fractal" baseline: global ops on the same hardware.
    let mut base_params = DesignParams::fractalcloud();
    base_params.name = "no-fractal".into();
    base_params.partition = fractalcloud_accel::PartitionKind::None;
    base_params.block_sampling = false;
    base_params.block_grouping = false;
    base_params.block_interpolation = false;
    base_params.block_gathering = false;
    let w0 = Workload::prepare(&model, n, SEED);
    let base = DesignModel::new(base_params).execute(&w0);

    let thresholds = [8usize, 64, 256, 512, 1024, 4096];
    row_str("th", &thresholds.iter().map(|t| t.to_string()).collect::<Vec<_>>());

    let mut speedups = Vec::new();
    let mut point_speedups = Vec::new();
    let mut losses = Vec::new();
    for &th in &thresholds {
        let w = Workload::prepare_with_threshold(&model, &cloud, th);
        let fc = DesignModel::new(DesignParams::fractalcloud()).execute(&w);
        speedups.push(format_value(fc.speedup_over(&base)));
        point_speedups.push(format_value(base.point_op_ms() / fc.point_op_ms()));

        // Quality proxy on a sub-sampled cloud (the proxy is O(n·m)).
        let qc_cloud = scene_cloud(&SceneConfig::default(), 8192, SEED);
        let part = Fractal::with_threshold(th).build(&qc_cloud).unwrap().partition;
        let q = evaluate_quality(&qc_cloud, &part, &QualityConfig::default()).unwrap();
        losses.push(format_value(q.proxy.estimated_accuracy_loss_pp()));
    }
    row_str("speedup vs no-fractal", &speedups);
    row_str("point-op speedup", &point_speedups);
    row_str("est. accuracy loss (pp)", &losses);
    println!();
    println!("Note: our FractalCloud model is MLP-bound at this scale, so the");
    println!("end-to-end sensitivity to th is weaker than the paper's; the");
    println!("point-op row isolates the effect the paper plots.");
    println!("Paper: th=8 over-partitions (>8pp loss despite ~21× speedup);");
    println!("th=4096 preserves accuracy but only ~4.6× speedup; th=256 is the");
    println!("chosen operating point (~0.6pp, ~15×). Expected shape: speedup");
    println!("decreases and accuracy improves monotonically with th.");
}

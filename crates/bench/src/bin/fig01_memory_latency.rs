//! Fig. 1: memory access (MB) and inference latency (ms) of the original
//! baseline structure (global search, PointAcc-style) versus FractalCloud,
//! across 1K → 289K input points.

use fractalcloud_accel::{Accelerator, DesignModel, DesignParams, Workload};
use fractalcloud_bench::{format_value, header, large_scales, row_str, SEED};
use fractalcloud_pnn::ModelConfig;

fn main() {
    header("Fig. 1", "memory access (MB) and latency (ms): original vs FractalCloud");
    let model = ModelConfig::pointnext_segmentation();
    let mut scales = vec![1024, 4096, 16_384];
    scales.extend(large_scales().into_iter().filter(|&n| n > 16_384));

    let labels: Vec<String> = scales.iter().map(|n| format!("{}K", n / 1024)).collect();
    row_str("points", &labels);

    let mut base_mem = Vec::new();
    let mut our_mem = Vec::new();
    let mut base_lat = Vec::new();
    let mut our_lat = Vec::new();
    for &n in &scales {
        let w = Workload::prepare(&model, n, SEED);
        let base = DesignModel::new(DesignParams::pointacc()).execute(&w);
        let ours = DesignModel::new(DesignParams::fractalcloud()).execute(&w);
        base_mem.push(format_value(base.dram_bytes as f64 / 1e6));
        our_mem.push(format_value(ours.dram_bytes as f64 / 1e6));
        base_lat.push(format_value(base.latency_ms()));
        our_lat.push(format_value(ours.latency_ms()));
    }
    println!("--- memory access (MB) ---");
    row_str("base (global search)", &base_mem);
    row_str("FractalCloud", &our_mem);
    println!("--- latency (ms) ---");
    row_str("base (global search)", &base_lat);
    row_str("FractalCloud", &our_lat);
    println!();
    println!("Paper shape: both curves grow ~quadratically for the baseline and");
    println!("~linearly for FractalCloud; the gap exceeds 100× at 289K points.");
}

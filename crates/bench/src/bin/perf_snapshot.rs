//! `perf_snapshot` — the repo's perf trajectory anchor.
//!
//! Times the software hot paths end-to-end — global FPS at 4k/16k points
//! (scalar reference vs the chunked SoA kernel path), the Fractal build at
//! 64k points (sequential vs level-synchronous parallel), and block-parallel
//! FPS over the 64k partition (sequential vs parallel blocks) — verifying
//! result equivalence in the same run, and writes `BENCH_point_ops.json`.
//!
//! ```text
//! cargo run --release -p fractalcloud-bench --bin perf_snapshot
//! cargo run --release -p fractalcloud-bench --bin perf_snapshot -- --quick
//! ```
//!
//! `--quick` shrinks the inputs for CI smoke runs (the JSON is still
//! written, flagged `"mode": "quick"`); committed snapshots should come
//! from a full run.

use fractalcloud_core::bppo::reference as bppo_reference;
use fractalcloud_core::{block_fps, BppoConfig, Fractal, FractalConfig};
use fractalcloud_pointcloud::generate::{scene_cloud, SceneConfig};
use fractalcloud_pointcloud::ops::{farthest_point_sample, reference};
use std::time::Instant;

/// One baseline-vs-optimized measurement.
struct Comparison {
    name: &'static str,
    baseline: &'static str,
    optimized: &'static str,
    baseline_ms: f64,
    optimized_ms: f64,
}

impl Comparison {
    fn speedup(&self) -> f64 {
        self.baseline_ms / self.optimized_ms
    }
}

/// Median wall-clock milliseconds over `reps` runs of `f`.
fn time_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        std::hint::black_box(f());
        samples.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (fps_small, fps_large, build_n, reps) =
        if quick { (1024, 4096, 16_384, 3) } else { (4096, 16_384, 65_536, 9) };
    let seed = 42;

    println!(
        "perf_snapshot ({} mode, {} worker threads)",
        if quick { "quick" } else { "full" },
        fractalcloud_parallel_workers()
    );
    let mut comparisons: Vec<Comparison> = Vec::new();

    // --- Global FPS: scalar reference vs SoA kernel path ---
    for (label_idx, n) in [fps_small, fps_large].into_iter().enumerate() {
        let cloud = scene_cloud(&SceneConfig::default(), n, seed);
        let m = n / 4;
        let kernel = farthest_point_sample(&cloud, m, 0).unwrap();
        let scalar = reference::farthest_point_sample(&cloud, m, 0).unwrap();
        assert_eq!(kernel.indices, scalar.indices, "kernel FPS must match the reference");
        assert_eq!(kernel.counters, scalar.counters, "analytic counters must match");
        let baseline_ms = time_ms(reps, || reference::farthest_point_sample(&cloud, m, 0).unwrap());
        let optimized_ms = time_ms(reps, || farthest_point_sample(&cloud, m, 0).unwrap());
        comparisons.push(Comparison {
            name: if label_idx == 0 { "fps_global_small" } else { "fps_global_large" },
            baseline: "scalar_reference",
            optimized: "soa_kernel",
            baseline_ms,
            optimized_ms,
        });
    }

    // --- Fractal build: sequential vs level-synchronous parallel ---
    let cloud = scene_cloud(&SceneConfig::default(), build_n, seed);
    let cfg = FractalConfig::new(256);
    let par = Fractal::new(cfg).build(&cloud).unwrap();
    let seq = Fractal::new(cfg.sequential()).build(&cloud).unwrap();
    assert_eq!(par, seq, "parallel build must be bit-identical to sequential");
    let baseline_ms = time_ms(reps, || Fractal::new(cfg.sequential()).build(&cloud).unwrap());
    let optimized_ms = time_ms(reps, || Fractal::new(cfg).build(&cloud).unwrap());
    comparisons.push(Comparison {
        name: "fractal_build",
        baseline: "sequential",
        optimized: "parallel_frontier",
        baseline_ms,
        optimized_ms,
    });

    // --- Block-parallel FPS over the build's partition ---
    // First the kernel win at fixed (sequential) scheduling: scalar
    // reference blocks vs chunked SoA blocks.
    let part = par.partition;
    let scalar = bppo_reference::block_fps(&cloud, &part, 0.25, &BppoConfig::sequential()).unwrap();
    let bseq = block_fps(&cloud, &part, 0.25, &BppoConfig::sequential()).unwrap();
    let bpar = block_fps(&cloud, &part, 0.25, &BppoConfig::default()).unwrap();
    assert_eq!(scalar.indices, bseq.indices, "kernel block FPS must match the reference");
    assert_eq!(scalar.counters, bseq.counters, "analytic block counters must match");
    assert_eq!(bseq.indices, bpar.indices, "block scheduling must not change samples");
    let baseline_ms = time_ms(reps, || {
        bppo_reference::block_fps(&cloud, &part, 0.25, &BppoConfig::sequential()).unwrap()
    });
    let optimized_ms =
        time_ms(reps, || block_fps(&cloud, &part, 0.25, &BppoConfig::sequential()).unwrap());
    comparisons.push(Comparison {
        name: "block_fps",
        baseline: "scalar_reference_blocks",
        optimized: "soa_kernel_blocks",
        baseline_ms,
        optimized_ms,
    });
    // Then the scheduling win on top of the kernel path (≈1× on a 1-CPU
    // host; scales with cores).
    let baseline_ms =
        time_ms(reps, || block_fps(&cloud, &part, 0.25, &BppoConfig::sequential()).unwrap());
    let optimized_ms =
        time_ms(reps, || block_fps(&cloud, &part, 0.25, &BppoConfig::default()).unwrap());
    comparisons.push(Comparison {
        name: "block_fps_scheduling",
        baseline: "sequential_blocks",
        optimized: "parallel_blocks",
        baseline_ms,
        optimized_ms,
    });

    // --- Report ---
    println!("{:<18} {:>18} {:>18} {:>9}", "measurement", "baseline ms", "optimized ms", "speedup");
    for c in &comparisons {
        println!(
            "{:<18} {:>18} {:>18} {:>8.2}x",
            c.name,
            format!("{:.3} ({})", c.baseline_ms, c.baseline),
            format!("{:.3} ({})", c.optimized_ms, c.optimized),
            c.speedup()
        );
    }

    let json = render_json(quick, build_n, fps_small, fps_large, &comparisons);
    std::fs::write("BENCH_point_ops.json", &json).expect("write BENCH_point_ops.json");
    println!("wrote BENCH_point_ops.json");
}

fn fractalcloud_parallel_workers() -> usize {
    fractalcloud_parallel::workers()
}

fn render_json(
    quick: bool,
    build_n: usize,
    fps_small: usize,
    fps_large: usize,
    comparisons: &[Comparison],
) -> String {
    // Hand-rolled JSON: the workspace intentionally has no serde machinery
    // (see vendor/README.md).
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"point_ops\",\n");
    out.push_str(&format!("  \"mode\": \"{}\",\n", if quick { "quick" } else { "full" }));
    out.push_str(&format!("  \"threads\": {},\n", fractalcloud_parallel_workers()));
    out.push_str(&format!(
        "  \"scales\": {{ \"fps_global_small\": {fps_small}, \"fps_global_large\": {fps_large}, \"fractal_build\": {build_n}, \"block_fps\": {build_n}, \"block_fps_scheduling\": {build_n} }},\n"
    ));
    out.push_str("  \"results\": [\n");
    for (i, c) in comparisons.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"name\": \"{}\", \"baseline\": \"{}\", \"optimized\": \"{}\", \"baseline_ms\": {:.4}, \"optimized_ms\": {:.4}, \"speedup\": {:.3} }}{}\n",
            c.name,
            c.baseline,
            c.optimized,
            c.baseline_ms,
            c.optimized_ms,
            c.speedup(),
            if i + 1 == comparisons.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

//! `perf_snapshot` — the repo's perf trajectory anchor.
//!
//! Times the software hot paths end-to-end — global FPS at 4k/16k points,
//! global KNN / ball query / interpolation at 4k points (scalar reference vs
//! the dispatched kernel path, whose backend is recorded in the JSON), the
//! Fractal build at 64k points (sequential vs level-synchronous parallel),
//! and block-parallel FPS over the 64k partition (sequential vs parallel
//! blocks) — verifying result equivalence in the same run, and writes
//! `BENCH_point_ops.json`.
//!
//! ```text
//! cargo run --release -p fractalcloud-bench --bin perf_snapshot
//! cargo run --release -p fractalcloud-bench --bin perf_snapshot -- --quick
//! ```
//!
//! `--quick` shrinks the inputs for CI smoke runs (the JSON is still
//! written, flagged `"mode": "quick"`); committed snapshots should come
//! from a full run.
//!
//! The thread-scheduling rows (`fractal_build`, `block_fps_scheduling`)
//! measure ~1× on a single-CPU host by construction; they are skipped there
//! and recorded with `"status": "skipped_single_cpu"` instead of reporting
//! a misleading speedup.

use fractalcloud_core::bppo::reference as bppo_reference;
use fractalcloud_core::{
    block_fps, BppoConfig, Fractal, FractalConfig, Pipeline, PipelineConfig, PipelineOutput,
    Workspace,
};
use fractalcloud_pointcloud::generate::{scene_cloud, with_random_features, SceneConfig};
use fractalcloud_pointcloud::kernels;
use fractalcloud_pointcloud::ops::{
    ball_query, farthest_point_sample, interpolate_features, k_nearest_neighbors, reference,
};
use fractalcloud_pointcloud::Point3;
use std::time::Instant;

/// With the `bench` feature (default), heap traffic is counted by the
/// workspace-layer measurement allocator so the `allocs_per_frame` rows
/// report real numbers; the counter is one relaxed atomic per allocation.
#[cfg(feature = "bench")]
#[global_allocator]
static ALLOC: fractalcloud_pointcloud::count_alloc::CountingAllocator =
    fractalcloud_pointcloud::count_alloc::CountingAllocator;

/// One baseline-vs-optimized measurement (or a skipped row).
struct Comparison {
    name: &'static str,
    baseline: &'static str,
    optimized: &'static str,
    /// `Some((baseline_ms, optimized_ms))`, or `None` when skipped.
    times: Option<(f64, f64)>,
    status: &'static str,
}

impl Comparison {
    fn measured(
        name: &'static str,
        baseline: &'static str,
        optimized: &'static str,
        baseline_ms: f64,
        optimized_ms: f64,
    ) -> Comparison {
        Comparison {
            name,
            baseline,
            optimized,
            times: Some((baseline_ms, optimized_ms)),
            status: "ok",
        }
    }

    fn skipped(
        name: &'static str,
        baseline: &'static str,
        optimized: &'static str,
        status: &'static str,
    ) -> Comparison {
        Comparison { name, baseline, optimized, times: None, status }
    }

    fn speedup(&self) -> Option<f64> {
        self.times.map(|(b, o)| b / o)
    }
}

/// Median wall-clock milliseconds over `reps` runs of `f`.
fn time_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        std::hint::black_box(f());
        samples.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (fps_small, fps_large, build_n, reps) =
        if quick { (1024, 4096, 16_384, 3) } else { (4096, 16_384, 65_536, 9) };
    let seed = 42;
    let workers = fractalcloud_parallel::workers();
    let backend = kernels::active_backend();

    println!(
        "perf_snapshot ({} mode, {} worker threads, {} kernel backend)",
        if quick { "quick" } else { "full" },
        workers,
        backend.name()
    );
    let mut comparisons: Vec<Comparison> = Vec::new();

    // --- Global FPS: scalar reference vs dispatched kernel path ---
    for (label_idx, n) in [fps_small, fps_large].into_iter().enumerate() {
        let cloud = scene_cloud(&SceneConfig::default(), n, seed);
        let m = n / 4;
        let kernel = farthest_point_sample(&cloud, m, 0).unwrap();
        let scalar = reference::farthest_point_sample(&cloud, m, 0).unwrap();
        assert_eq!(kernel.indices, scalar.indices, "kernel FPS must match the reference");
        assert_eq!(kernel.counters, scalar.counters, "analytic counters must match");
        let baseline_ms = time_ms(reps, || reference::farthest_point_sample(&cloud, m, 0).unwrap());
        let optimized_ms = time_ms(reps, || farthest_point_sample(&cloud, m, 0).unwrap());
        comparisons.push(Comparison::measured(
            if label_idx == 0 { "fps_global_small" } else { "fps_global_large" },
            "scalar_reference",
            "dispatched_kernel",
            baseline_ms,
            optimized_ms,
        ));
    }

    // --- Global selection ops at 4k: scalar reference vs batched kernels ---
    let n = fps_small.max(4096);
    let cloud = with_random_features(scene_cloud(&SceneConfig::default(), n, seed), 16, seed);
    let centers: Vec<Point3> = (0..n / 4).map(|i| cloud.point(i * 4)).collect();
    let (knn_k, bq_radius, bq_num) = (16, 0.4f32, 16);

    let kernel = k_nearest_neighbors(&cloud, &centers, knn_k).unwrap();
    let scalar = reference::k_nearest_neighbors(&cloud, &centers, knn_k).unwrap();
    assert_eq!(kernel.indices, scalar.indices, "kernel KNN must match the reference");
    assert_eq!(kernel.counters, scalar.counters, "analytic KNN counters must match");
    let baseline_ms =
        time_ms(reps, || reference::k_nearest_neighbors(&cloud, &centers, knn_k).unwrap());
    let optimized_ms = time_ms(reps, || k_nearest_neighbors(&cloud, &centers, knn_k).unwrap());
    comparisons.push(Comparison::measured(
        "knn",
        "scalar_reference",
        "batched_kernel",
        baseline_ms,
        optimized_ms,
    ));

    let kernel = ball_query(&cloud, &centers, bq_radius, bq_num).unwrap();
    let scalar = reference::ball_query(&cloud, &centers, bq_radius, bq_num).unwrap();
    assert_eq!(kernel.indices, scalar.indices, "kernel ball query must match the reference");
    assert_eq!(kernel.counters, scalar.counters, "analytic ball-query counters must match");
    let baseline_ms =
        time_ms(reps, || reference::ball_query(&cloud, &centers, bq_radius, bq_num).unwrap());
    let optimized_ms = time_ms(reps, || ball_query(&cloud, &centers, bq_radius, bq_num).unwrap());
    comparisons.push(Comparison::measured(
        "ball_query",
        "scalar_reference",
        "batched_kernel",
        baseline_ms,
        optimized_ms,
    ));

    let targets: Vec<Point3> =
        (0..n / 4).map(|i| cloud.point(i * 3) + Point3::splat(0.01)).collect();
    let kernel = interpolate_features(&cloud, &targets, 3).unwrap();
    let scalar = reference::interpolate_features(&cloud, &targets, 3).unwrap();
    assert_eq!(kernel.features, scalar.features, "kernel interpolation must match the reference");
    assert_eq!(kernel.counters, scalar.counters, "analytic interpolation counters must match");
    let baseline_ms =
        time_ms(reps, || reference::interpolate_features(&cloud, &targets, 3).unwrap());
    let optimized_ms = time_ms(reps, || interpolate_features(&cloud, &targets, 3).unwrap());
    comparisons.push(Comparison::measured(
        "interpolate",
        "scalar_reference",
        "batched_kernel",
        baseline_ms,
        optimized_ms,
    ));

    // --- Fractal build: sequential vs level-synchronous parallel ---
    let cloud = scene_cloud(&SceneConfig::default(), build_n, seed);
    let cfg = FractalConfig::new(256);
    let par = Fractal::new(cfg).build(&cloud).unwrap();
    let seq = Fractal::new(cfg.sequential()).build(&cloud).unwrap();
    assert_eq!(par, seq, "parallel build must be bit-identical to sequential");
    if workers > 1 {
        let baseline_ms = time_ms(reps, || Fractal::new(cfg.sequential()).build(&cloud).unwrap());
        let optimized_ms = time_ms(reps, || Fractal::new(cfg).build(&cloud).unwrap());
        comparisons.push(Comparison::measured(
            "fractal_build",
            "sequential",
            "parallel_frontier",
            baseline_ms,
            optimized_ms,
        ));
    } else {
        comparisons.push(Comparison::skipped(
            "fractal_build",
            "sequential",
            "parallel_frontier",
            "skipped_single_cpu",
        ));
    }

    // --- Block-parallel FPS over the build's partition ---
    // First the kernel win at fixed (sequential) scheduling: scalar
    // reference blocks vs dispatched kernel blocks.
    let part = par.partition;
    let scalar = bppo_reference::block_fps(&cloud, &part, 0.25, &BppoConfig::sequential()).unwrap();
    let bseq = block_fps(&cloud, &part, 0.25, &BppoConfig::sequential()).unwrap();
    let bpar = block_fps(&cloud, &part, 0.25, &BppoConfig::default()).unwrap();
    assert_eq!(scalar.indices, bseq.indices, "kernel block FPS must match the reference");
    assert_eq!(scalar.counters, bseq.counters, "analytic block counters must match");
    assert_eq!(bseq.indices, bpar.indices, "block scheduling must not change samples");
    let baseline_ms = time_ms(reps, || {
        bppo_reference::block_fps(&cloud, &part, 0.25, &BppoConfig::sequential()).unwrap()
    });
    let optimized_ms =
        time_ms(reps, || block_fps(&cloud, &part, 0.25, &BppoConfig::sequential()).unwrap());
    comparisons.push(Comparison::measured(
        "block_fps",
        "scalar_reference_blocks",
        "dispatched_kernel_blocks",
        baseline_ms,
        optimized_ms,
    ));
    // Then the scheduling win on top of the kernel path (skipped on a
    // single-CPU host, where it is ~1× by construction).
    if workers > 1 {
        let baseline_ms =
            time_ms(reps, || block_fps(&cloud, &part, 0.25, &BppoConfig::sequential()).unwrap());
        let optimized_ms =
            time_ms(reps, || block_fps(&cloud, &part, 0.25, &BppoConfig::default()).unwrap());
        comparisons.push(Comparison::measured(
            "block_fps_scheduling",
            "sequential_blocks",
            "parallel_blocks",
            baseline_ms,
            optimized_ms,
        ));
    } else {
        comparisons.push(Comparison::skipped(
            "block_fps_scheduling",
            "sequential_blocks",
            "parallel_blocks",
            "skipped_single_cpu",
        ));
    }

    // --- Allocations per frame on the warmed core hot path ---
    // The tentpole's zero-allocation claim, measured: a cache-hit-style
    // frame (partition prebuilt, BPPO half re-run) through one reused
    // workspace + output staging. Cold = the first frame (buffers grow);
    // warm = the worst of the next five (must be 0 in reuse mode).
    let allocs = measure_allocs_per_frame(4096);

    // --- Serve throughput: in-process engine, fixed frame size ---
    // Distinct frames with the cache off, so the row measures the full
    // admission → batch → partition → BPPO → response path per frame.
    // Both rows share one methodology (up-front submission, so batches
    // genuinely fuse to mean ≈ max_batch) and differ ONLY in the
    // `batch_blocks` schedule, so their ratio isolates the tentpole.
    let serve = measure_serve_throughput(if quick { 24 } else { 192 }, 4096, reps.min(7), false);
    let serve_blocks =
        measure_serve_throughput(if quick { 24 } else { 192 }, 4096, reps.min(7), true);

    // --- Streaming time-to-first-byte: warm first paint vs full frame ---
    // The progressive-LOD claim in one number: with the ordering cached, a
    // viewer's first chunk lands well before a monolithic response could.
    let stream_ttfb = measure_stream_ttfb(4096, reps.min(7));

    // --- Inference serving: eager vs Mesorasi delayed aggregation ---
    // Warm cache-hit frames through the engine's INFER path, so the rows
    // isolate the network-forward schedule (eager runs the stage-1 MLP on
    // centers × nsample gathered rows; delayed runs it once per unique
    // point and max-aggregates afterwards — bit-identical logits).
    let infer_points = if quick { 2048 } else { 4096 };
    let infer_eager =
        measure_inference(infer_points, reps.min(7), fractalcloud_serve::Aggregation::Eager);
    let infer_delayed =
        measure_inference(infer_points, reps.min(7), fractalcloud_serve::Aggregation::Delayed);

    // --- Per-stage latency breakdown from the flight recorder ---
    // Runs LAST: it enables tracing process-wide, and the rows above must
    // measure the tracing-off hot path. Each phase's stage times plus the
    // explicit `unattributed` remainder sum to its end-to-end latency.
    let breakdown = measure_stage_breakdown(infer_points, if quick { 4 } else { 12 });

    // --- Report ---
    println!("{:<18} {:>20} {:>20} {:>9}", "measurement", "baseline ms", "optimized ms", "speedup");
    for c in &comparisons {
        match c.times {
            Some((baseline_ms, optimized_ms)) => println!(
                "{:<18} {:>20} {:>20} {:>8.2}x",
                c.name,
                format!("{:.3} ({})", baseline_ms, c.baseline),
                format!("{:.3} ({})", optimized_ms, c.optimized),
                c.speedup().unwrap()
            ),
            None => println!("{:<18} {:>20}", c.name, c.status),
        }
    }
    println!(
        "{:<18} {:>20}",
        "serve_throughput",
        format!("{:.1} frames/s ({} pts)", serve.frames_per_s, serve.frame_points)
    );
    println!(
        "{:<26} {:>20}",
        "serve_throughput_batched_blocks",
        format!(
            "{:.1} frames/s ({} pts, mean batch {:.1})",
            serve_blocks.frames_per_s, serve_blocks.frame_points, serve_blocks.mean_batch
        )
    );
    println!(
        "{:<18} {:>20}",
        "serve_stream_ttfb",
        format!(
            "{:.3} ms first paint ({} of {} pts) vs {:.3} ms full frame",
            stream_ttfb.ttfb_ms,
            stream_ttfb.first_paint,
            stream_ttfb.frame_points,
            stream_ttfb.full_ms
        )
    );
    match allocs.measured {
        true => println!(
            "{:<18} {:>20}",
            "allocs_per_frame",
            format!(
                "cold {} / warm {} ({} pts, {} mode)",
                allocs.cold,
                allocs.warm,
                allocs.frame_points,
                fractalcloud_core::workspace::workspace_mode().name()
            )
        ),
        false => println!("{:<18} {:>20}", "allocs_per_frame", "skipped_alloc_counter_off"),
    }
    println!(
        "{:<18} {:>20}",
        "inference_eager",
        format!(
            "{:.3} ms ({} pts, {} gather bytes, {} allocs/frame)",
            infer_eager.ms,
            infer_eager.frame_points,
            infer_eager.gather_bytes,
            infer_eager.allocs_per_frame
        )
    );
    println!(
        "{:<18} {:>20} {:>8.2}x",
        "inference_delayed",
        format!(
            "{:.3} ms ({} pts, {} MACs saved, {} allocs/frame)",
            infer_delayed.ms,
            infer_delayed.frame_points,
            infer_delayed.macs_saved,
            infer_delayed.allocs_per_frame
        ),
        infer_eager.ms / infer_delayed.ms
    );
    for phase in &breakdown {
        let stages: Vec<String> = phase
            .stages
            .iter()
            .map(|(name, us)| format!("{name} {us:.0}"))
            .chain(std::iter::once(format!("unattributed {:.0}", phase.unattributed_us)))
            .collect();
        println!(
            "{:<26} {}: {:.0} us = {}",
            "serve_stage_breakdown",
            phase.phase,
            phase.end_to_end_us,
            stages.join(" + ")
        );
    }

    let json = render_json(
        quick,
        build_n,
        fps_small,
        fps_large,
        backend.name(),
        &comparisons,
        &serve,
        &serve_blocks,
        &stream_ttfb,
        &allocs,
        &infer_eager,
        &infer_delayed,
        &breakdown,
    );
    std::fs::write("BENCH_point_ops.json", &json).expect("write BENCH_point_ops.json");
    println!("wrote BENCH_point_ops.json");
}

/// One inference-serving measurement: warm cache-hit frames through the
/// engine's INFER path under one aggregation schedule.
struct InferenceRow {
    /// Median wall-clock per warm frame.
    ms: f64,
    frame_points: usize,
    macs_moved: u64,
    macs_saved: u64,
    gather_bytes: u64,
    /// Heap allocations per warm frame (pooled response recycled each
    /// round); vacuously 0 without the `bench` feature.
    allocs_per_frame: u64,
}

/// Times warm INFER frames (partition LRU hit, pooled buffers recycled via
/// [`fractalcloud_serve::Engine::recycle_infer`]) under `agg`, and counts
/// per-frame heap traffic the same way `measure_allocs_per_frame` does.
fn measure_inference(
    frame_points: usize,
    reps: usize,
    agg: fractalcloud_serve::Aggregation,
) -> InferenceRow {
    use fractalcloud_pointcloud::count_alloc::allocation_count;
    use fractalcloud_serve::{Engine, InferRequest, ModelConfig, ServeConfig};
    let cloud = std::sync::Arc::new(scene_cloud(&SceneConfig::default(), frame_points, 4242));
    let engine = Engine::start(ServeConfig::default().workers(1));
    let request = || InferRequest {
        aggregation: Some(agg),
        ..InferRequest::new(ModelConfig::table1().remove(0))
    };
    // Warm everything the steady state reuses: the partition LRU entry,
    // the cached executor/weights, and the slot/response/workspace pools.
    let mut counters = fractalcloud_pointcloud::ops::OpCounters::default();
    for _ in 0..3 {
        let r = engine.process_infer(std::sync::Arc::clone(&cloud), request()).expect("warm infer");
        counters = r.output.counters;
        engine.recycle_infer(r);
    }
    let ms = time_ms(reps, || {
        let r = engine.process_infer(std::sync::Arc::clone(&cloud), request()).expect("infer");
        engine.recycle_infer(r);
    });
    // Requests are pre-built so the window counts the serve path alone,
    // not the caller's model-zoo construction.
    let alloc_frames = 8u64;
    let mut requests: Vec<InferRequest> = (0..alloc_frames).map(|_| request()).collect();
    let before = allocation_count();
    for req in requests.drain(..) {
        let r = engine.process_infer(std::sync::Arc::clone(&cloud), req).expect("infer");
        engine.recycle_infer(r);
    }
    let allocs_per_frame = (allocation_count() - before) / alloc_frames;
    engine.shutdown();
    InferenceRow {
        ms,
        frame_points,
        macs_moved: counters.macs_moved,
        macs_saved: counters.macs_saved,
        gather_bytes: counters.gather_bytes,
        allocs_per_frame,
    }
}

/// The allocs-per-frame measurement on the warmed core hot path.
struct AllocsPerFrame {
    cold: u64,
    warm: u64,
    frame_points: usize,
    /// False when built without the `bench` feature (no counting
    /// allocator installed — the counters would read zero vacuously).
    measured: bool,
}

/// Counts heap allocations for one cache-hit-style frame through a reused
/// workspace + output staging: cold (first frame, buffers grow) vs warm
/// (worst of the next five; zero in reuse mode). Runs sequentially on the
/// calling thread so the process-global counter attributes cleanly.
fn measure_allocs_per_frame(frame_points: usize) -> AllocsPerFrame {
    use fractalcloud_pointcloud::count_alloc::allocation_count;
    let cloud = scene_cloud(&SceneConfig::default(), frame_points, 777);
    let pipe = Pipeline::new(PipelineConfig::default()).expect("default config is valid");
    let mut ws = Workspace::new();
    let built = pipe.partition_ws(&cloud, false, &mut ws).expect("partition");
    let mut staging = PipelineOutput::default();
    let before = allocation_count();
    pipe.run_with_partition_into(&cloud, &built, false, &mut ws, &mut staging).expect("cold run");
    let cold = allocation_count() - before;
    let mut warm = 0u64;
    for _ in 0..5 {
        let before = allocation_count();
        pipe.run_with_partition_into(&cloud, &built, false, &mut ws, &mut staging)
            .expect("warm run");
        warm = warm.max(allocation_count() - before);
    }
    AllocsPerFrame { cold, warm, frame_points, measured: cfg!(feature = "bench") }
}

/// The serve-throughput measurement: frames/s through the in-process
/// engine at a fixed frame size.
struct ServeThroughput {
    frames: usize,
    frame_points: usize,
    frames_per_s: f64,
    mean_batch: f64,
}

/// Pushes `frames` distinct `frame_points`-sized frames through a serving
/// engine (cache off: every frame pays the full pipeline), submitted up
/// front so the adaptive batcher genuinely fuses (mean batch ≈ the
/// engine's `max_batch`), `reps` times, reporting the best sustained
/// frames/s.
///
/// With `batch_blocks` the fused batches execute as ONE budgeted
/// `parallel_map` over the union of their sample+group `(frame, block)`
/// tasks — the tentpole schedule — otherwise as the legacy sequential lane
/// per frame. The block-*parallel* win scales with cores; on a single-CPU
/// host (thread budget 1) the engine falls back to the frame-at-a-time
/// order, so the two rows then measure the same schedule and should agree
/// within noise. Results are bit-identical in every case.
fn measure_serve_throughput(
    frames: usize,
    frame_points: usize,
    reps: usize,
    batch_blocks: bool,
) -> ServeThroughput {
    use fractalcloud_serve::{Engine, ServeConfig};
    let clouds: Vec<_> = (0..frames)
        .map(|s| scene_cloud(&SceneConfig::default(), frame_points, s as u64 + 1000))
        .collect();
    let engine = std::sync::Arc::new(Engine::start(
        ServeConfig::default().cache_capacity(0).queue_capacity(frames).batch_blocks(batch_blocks),
    ));
    let config = fractalcloud_core::PipelineConfig::default();
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let tickets: Vec<_> = clouds
            .iter()
            .map(|c| engine.submit(c.clone(), config).expect("queue sized for all frames"))
            .collect();
        for t in tickets {
            t.wait().expect("serve frame");
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    let m = engine.metrics();
    let mean_batch = m.mean_batch();
    engine.shutdown();
    ServeThroughput { frames, frame_points, frames_per_s: frames as f64 / best, mean_batch }
}

/// The streaming time-to-first-byte measurement: how much sooner a viewer
/// sees the first-paint chunk than the full monolithic response, both warm.
struct StreamTtfb {
    frame_points: usize,
    first_paint: usize,
    ttfb_ms: f64,
    full_ms: f64,
}

/// Measures warm first-chunk latency against warm full-response latency
/// through the in-process engine. Warm means the partition LRU and the
/// frame's cached coarse-to-fine FPS ordering are both populated, so the
/// rows isolate the chunk-slicing win — the first paint ships `first_paint`
/// samples of an already-known ordering instead of the whole frame.
fn measure_stream_ttfb(frame_points: usize, reps: usize) -> StreamTtfb {
    use fractalcloud_serve::{Engine, Priority, ServeConfig};
    let engine = Engine::start(ServeConfig::default().workers(1));
    let cloud = std::sync::Arc::new(scene_cloud(&SceneConfig::default(), frame_points, 777));
    let config = fractalcloud_core::PipelineConfig::default();
    let first_paint = 512usize;
    // Warm both paths: the first chunk computes and caches the full FPS
    // ordering; the direct request warms the partition LRU.
    engine
        .submit_stream_chunk(
            std::sync::Arc::clone(&cloud),
            config,
            0,
            first_paint,
            Priority::Normal,
            None,
        )
        .expect("submit warm chunk")
        .wait()
        .expect("warm chunk");
    let r = engine.process_shared(std::sync::Arc::clone(&cloud), config).expect("warm frame");
    engine.recycle(r);
    let mut ttfb = f64::INFINITY;
    let mut full = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        engine
            .submit_stream_chunk(
                std::sync::Arc::clone(&cloud),
                config,
                0,
                first_paint,
                Priority::Normal,
                None,
            )
            .expect("submit chunk")
            .wait()
            .expect("first-paint chunk");
        ttfb = ttfb.min(t0.elapsed().as_secs_f64() * 1e3);
        let t0 = Instant::now();
        let r = engine.process_shared(std::sync::Arc::clone(&cloud), config).expect("full frame");
        full = full.min(t0.elapsed().as_secs_f64() * 1e3);
        engine.recycle(r);
    }
    engine.shutdown();
    StreamTtfb { frame_points, first_paint, ttfb_ms: ttfb, full_ms: full }
}

/// Per-stage share of end-to-end latency for one serving phase, measured
/// from drained flight-recorder spans.
struct StageBreakdown {
    phase: &'static str,
    /// `(stage name, mean µs per request)`, recorder order.
    stages: Vec<(&'static str, f64)>,
    /// End-to-end time not covered by any span (dispatch, channel hops,
    /// response copies). Kept explicit so the stages sum to `end_to_end_us`.
    unattributed_us: f64,
    end_to_end_us: f64,
}

/// Enables the flight recorder and attributes end-to-end serving latency to
/// pipeline stages for three phases: cold frames (cache off, every request
/// pays partition + BPPO), and warm eager/delayed inference. Stage means
/// come from drained spans; whatever the spans don't cover lands in the
/// explicit `unattributed` stage, so per-stage times sum to end-to-end.
fn measure_stage_breakdown(frame_points: usize, requests: usize) -> Vec<StageBreakdown> {
    use fractalcloud_obs as obs;
    use fractalcloud_serve::{Aggregation, Engine, InferRequest, ModelConfig, ServeConfig};
    obs::enable(1 << 16);
    let cloud = scene_cloud(&SceneConfig::default(), frame_points, 4242);
    let shared = std::sync::Arc::new(cloud.clone());
    let config = PipelineConfig::default();

    // Aggregate one phase's drained spans into mean-µs-per-request stages.
    // The whole-frame sample/group spans (aux == u32::MAX) wrap the
    // per-block ones, so when present only they count — summing both would
    // attribute the same wall time twice.
    let aggregate = |phase: &'static str, spans: &[obs::SpanEvent], e2e_total_us: f64| {
        let mut stages: Vec<(&'static str, f64)> = Vec::new();
        for kind in obs::SpanKind::ALL {
            let nested = matches!(kind, obs::SpanKind::BlockSample | obs::SpanKind::BlockGroup)
                && spans.iter().any(|s| s.kind == kind && s.aux == u32::MAX);
            let sum: u64 = spans
                .iter()
                .filter(|s| s.kind == kind && (!nested || s.aux == u32::MAX))
                .map(|s| s.dur_us)
                .sum();
            if sum > 0 {
                stages.push((kind.name(), sum as f64 / requests as f64));
            }
        }
        let attributed: f64 = stages.iter().map(|(_, us)| us).sum();
        let end_to_end_us = e2e_total_us / requests as f64;
        StageBreakdown {
            phase,
            stages,
            unattributed_us: (end_to_end_us - attributed).max(0.0),
            end_to_end_us,
        }
    };

    let mut rows = Vec::new();

    // Phase 1: cold frames — cache off, so every request rebuilds the
    // partition and runs both BPPO halves.
    let engine = Engine::start(ServeConfig::default().workers(1).cache_capacity(0));
    engine.process(cloud.clone(), config).expect("warm frame");
    let _ = obs::drain();
    let t0 = Instant::now();
    for _ in 0..requests {
        engine.process(cloud.clone(), config).expect("frame");
    }
    let e2e = t0.elapsed().as_secs_f64() * 1e6;
    rows.push(aggregate("frame", &obs::drain(), e2e));
    engine.shutdown();

    // Phases 2–3: warm inference under each aggregation schedule (partition
    // LRU hit; the MLP + aggregate stages dominate).
    for (phase, agg) in
        [("infer_eager", Aggregation::Eager), ("infer_delayed", Aggregation::Delayed)]
    {
        let engine = Engine::start(ServeConfig::default().workers(1));
        let request = || InferRequest {
            aggregation: Some(agg),
            ..InferRequest::new(ModelConfig::table1().remove(0))
        };
        for _ in 0..2 {
            let r = engine
                .process_infer(std::sync::Arc::clone(&shared), request())
                .expect("warm infer");
            engine.recycle_infer(r);
        }
        let _ = obs::drain();
        let t0 = Instant::now();
        for _ in 0..requests {
            let r = engine.process_infer(std::sync::Arc::clone(&shared), request()).expect("infer");
            engine.recycle_infer(r);
        }
        let e2e = t0.elapsed().as_secs_f64() * 1e6;
        rows.push(aggregate(phase, &obs::drain(), e2e));
        engine.shutdown();
    }
    obs::disable();
    rows
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    quick: bool,
    build_n: usize,
    fps_small: usize,
    fps_large: usize,
    backend: &str,
    comparisons: &[Comparison],
    serve: &ServeThroughput,
    serve_blocks: &ServeThroughput,
    stream_ttfb: &StreamTtfb,
    allocs: &AllocsPerFrame,
    infer_eager: &InferenceRow,
    infer_delayed: &InferenceRow,
    breakdown: &[StageBreakdown],
) -> String {
    // Hand-rolled JSON: the workspace intentionally has no serde machinery
    // (see vendor/README.md).
    let sel_n = fps_small.max(4096);
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"point_ops\",\n");
    out.push_str(&format!("  \"mode\": \"{}\",\n", if quick { "quick" } else { "full" }));
    out.push_str(&format!("  \"threads\": {},\n", fractalcloud_parallel::workers()));
    out.push_str(&format!("  \"backend\": \"{backend}\",\n"));
    out.push_str(&format!(
        "  \"scales\": {{ \"fps_global_small\": {fps_small}, \"fps_global_large\": {fps_large}, \"knn\": {sel_n}, \"ball_query\": {sel_n}, \"interpolate\": {sel_n}, \"fractal_build\": {build_n}, \"block_fps\": {build_n}, \"block_fps_scheduling\": {build_n} }},\n"
    ));
    out.push_str("  \"results\": [\n");
    for c in comparisons {
        // The serve_throughput row always follows, so every comparison row
        // takes a trailing comma.
        let tail = ",";
        match c.times {
            Some((baseline_ms, optimized_ms)) => out.push_str(&format!(
                "    {{ \"name\": \"{}\", \"baseline\": \"{}\", \"optimized\": \"{}\", \"baseline_ms\": {:.4}, \"optimized_ms\": {:.4}, \"speedup\": {:.3}, \"status\": \"{}\" }}{}\n",
                c.name,
                c.baseline,
                c.optimized,
                baseline_ms,
                optimized_ms,
                c.speedup().unwrap(),
                c.status,
                tail
            )),
            None => out.push_str(&format!(
                "    {{ \"name\": \"{}\", \"baseline\": \"{}\", \"optimized\": \"{}\", \"baseline_ms\": null, \"optimized_ms\": null, \"speedup\": null, \"status\": \"{}\" }}{}\n",
                c.name, c.baseline, c.optimized, c.status, tail
            )),
        }
    }
    out.push_str(&format!(
        "    {{ \"name\": \"serve_throughput\", \"backend\": \"{}\", \"frames\": {}, \"frame_points\": {}, \"frames_per_s\": {:.1}, \"mean_batch\": {:.2}, \"status\": \"ok\" }},\n",
        backend, serve.frames, serve.frame_points, serve.frames_per_s, serve.mean_batch
    ));
    out.push_str(&format!(
        "    {{ \"name\": \"serve_throughput_batched_blocks\", \"backend\": \"{}\", \"frames\": {}, \"frame_points\": {}, \"frames_per_s\": {:.1}, \"mean_batch\": {:.2}, \"status\": \"ok\" }},\n",
        backend, serve_blocks.frames, serve_blocks.frame_points, serve_blocks.frames_per_s,
        serve_blocks.mean_batch
    ));
    out.push_str(&format!(
        "    {{ \"name\": \"serve_stream_ttfb\", \"backend\": \"{}\", \"frame_points\": {}, \"first_paint\": {}, \"ttfb_ms\": {:.4}, \"full_ms\": {:.4}, \"speedup\": {:.3}, \"status\": \"ok\" }},\n",
        backend, stream_ttfb.frame_points, stream_ttfb.first_paint, stream_ttfb.ttfb_ms,
        stream_ttfb.full_ms, stream_ttfb.full_ms / stream_ttfb.ttfb_ms
    ));
    match allocs.measured {
        true => out.push_str(&format!(
            "    {{ \"name\": \"allocs_per_frame\", \"cold\": {}, \"warm\": {}, \"frame_points\": {}, \"workspace_mode\": \"{}\", \"status\": \"ok\" }},\n",
            allocs.cold,
            allocs.warm,
            allocs.frame_points,
            fractalcloud_core::workspace::workspace_mode().name()
        )),
        false => out.push_str(&format!(
            "    {{ \"name\": \"allocs_per_frame\", \"cold\": null, \"warm\": null, \"frame_points\": {}, \"status\": \"skipped_alloc_counter_off\" }},\n",
            allocs.frame_points
        )),
    }
    out.push_str(&format!(
        "    {{ \"name\": \"inference_eager\", \"ms\": {:.4}, \"frame_points\": {}, \"macs_moved\": {}, \"macs_saved\": {}, \"gather_bytes\": {}, \"allocs_per_frame\": {}, \"status\": \"ok\" }},\n",
        infer_eager.ms, infer_eager.frame_points, infer_eager.macs_moved, infer_eager.macs_saved,
        infer_eager.gather_bytes, infer_eager.allocs_per_frame
    ));
    out.push_str(&format!(
        "    {{ \"name\": \"inference_delayed\", \"ms\": {:.4}, \"frame_points\": {}, \"macs_moved\": {}, \"macs_saved\": {}, \"gather_bytes\": {}, \"allocs_per_frame\": {}, \"speedup_vs_eager\": {:.3}, \"status\": \"ok\" }},\n",
        infer_delayed.ms, infer_delayed.frame_points, infer_delayed.macs_moved,
        infer_delayed.macs_saved, infer_delayed.gather_bytes, infer_delayed.allocs_per_frame,
        infer_eager.ms / infer_delayed.ms
    ));
    out.push_str("    { \"name\": \"serve_stage_breakdown\", \"phases\": [\n");
    for (i, phase) in breakdown.iter().enumerate() {
        let stages: Vec<String> = phase
            .stages
            .iter()
            .map(|(name, us)| format!("\"{name}_us\": {us:.1}"))
            .chain(std::iter::once(format!("\"unattributed_us\": {:.1}", phase.unattributed_us)))
            .collect();
        out.push_str(&format!(
            "      {{ \"phase\": \"{}\", {}, \"end_to_end_us\": {:.1} }}{}\n",
            phase.phase,
            stages.join(", "),
            phase.end_to_end_us,
            if i + 1 == breakdown.len() { "" } else { "," }
        ));
    }
    out.push_str("    ], \"status\": \"ok\" }\n");
    out.push_str("  ]\n}\n");
    out
}

//! Fig. 16: partitioning speedup (dots, normalized to KD-tree) and point-
//! operation speedup (bars, normalized to uniform) for uniform, octree,
//! KD-tree, and Fractal across the three dataset families.

use fractalcloud_accel::analytic;
use fractalcloud_bench::{format_value, header, row_str, SEED};
use fractalcloud_core::Fractal;
use fractalcloud_pointcloud::generate::DatasetKind;
use fractalcloud_pointcloud::partition::{
    KdTreePartitioner, OctreePartitioner, Partition, Partitioner, UniformPartitioner,
};
use fractalcloud_sim::{EnergyTable, FractalEngine, FractalEngineConfig, Rspu, RspuConfig};

/// Mean neighbor-search expansion factor measured from the partition: the
/// ratio of a block's parent search-space population to its own population.
/// Binary trees give ≈2, octrees up to 8, self-only methods 1.
fn search_factor(p: &Partition) -> f64 {
    let mut acc = 0.0;
    for b in &p.blocks {
        let space: usize = b.parent_group.iter().map(|&g| p.blocks[g].len()).sum();
        acc += space as f64 / b.len().max(1) as f64;
    }
    acc / p.blocks.len().max(1) as f64
}

/// Point-op cycles for one abstraction stage under a partition, on the
/// FractalCloud RSPU array (isolates the partition's effect). The neighbor
/// search pays the partition's own measured expansion factor.
fn point_op_cycles(p: &Partition, rspu: &Rspu) -> u64 {
    let sizes: Vec<usize> = p.blocks.iter().map(|b| b.len()).collect();
    let factor = search_factor(p);
    let (fps_t, fps_c, _) = analytic::block_fps(&sizes, 0.25, true);
    let (bq_t, bq_c, _) = analytic::block_neighbor(&sizes, 0.25, factor, 32);
    rspu.block_parallel_from_aggregate(&fps_t, &fps_c).cycles
        + rspu.block_parallel_from_aggregate(&bq_t, &bq_c).cycles
}

fn main() {
    header("Fig. 16", "partition speedup (vs kd-tree) & point-op speedup (vs uniform)");
    let engine = FractalEngine::new(FractalEngineConfig::fractalcloud(), EnergyTable::tsmc28());
    let rspu = Rspu::new(RspuConfig::fractalcloud(), EnergyTable::tsmc28());
    let n = 16_384;
    let th = 256;

    let datasets = [DatasetKind::ModelNet, DatasetKind::ShapeNet, DatasetKind::S3dis];
    row_str("dataset", &datasets.iter().map(|d| d.name().to_string()).collect::<Vec<_>>());

    let mut part_speedups: Vec<Vec<f64>> = vec![Vec::new(); 4];
    let mut op_speedups: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for kind in datasets {
        let cloud = kind.generate(n, SEED);
        let uniform = UniformPartitioner::with_target_block_size(th).partition(&cloud).unwrap();
        let octree = OctreePartitioner::new(th).partition(&cloud).unwrap();
        let kd = KdTreePartitioner::new(th).partition(&cloud).unwrap();
        let fractal = Fractal::with_threshold(th).build(&cloud).unwrap().partition;

        let kd_cycles = engine.kd_tree_partition(n as u64, th as u64).cycles.max(1);
        let part_cycles = [
            engine.traversal_partition(&uniform.cost).cycles.max(1),
            engine.traversal_partition(&octree.cost).cycles.max(1),
            kd_cycles,
            engine.traversal_partition(&fractal.cost).cycles.max(1),
        ];
        let base_ops = point_op_cycles(&uniform, &rspu).max(1);
        let ops = [
            base_ops,
            point_op_cycles(&octree, &rspu).max(1),
            point_op_cycles(&kd, &rspu).max(1),
            point_op_cycles(&fractal, &rspu).max(1),
        ];
        for i in 0..4 {
            part_speedups[i].push(kd_cycles as f64 / part_cycles[i] as f64);
            op_speedups[i].push(base_ops as f64 / ops[i] as f64);
        }
    }

    let names = ["uniform", "octree", "kd-tree", "fractal"];
    println!("--- partitioning speedup (normalized to kd-tree) ---");
    for (i, name) in names.iter().enumerate() {
        row_str(name, &part_speedups[i].iter().map(|&v| format_value(v)).collect::<Vec<_>>());
    }
    println!("--- point-operation speedup (normalized to uniform) ---");
    for (i, name) in names.iter().enumerate() {
        row_str(name, &op_speedups[i].iter().map(|&v| format_value(v)).collect::<Vec<_>>());
    }
    println!();
    println!("Paper: fractal partitions 133× faster than kd-tree and 14.9×");
    println!("faster than octree; its balanced blocks speed point operations");
    println!("4.4× over uniform and 2.1× over octree. Expected shape: fractal");
    println!("within ~2× of uniform's partition cost but with kd-class balance,");
    println!("hence the best point-op column.");
}

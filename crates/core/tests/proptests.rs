//! Property-based tests for Fractal and the block-parallel operations.

use fractalcloud_core::bppo::reference as bppo_reference;
use fractalcloud_core::{
    block_ball_query, block_fps, block_gather, block_interpolate, BppoConfig, Fractal,
    FractalConfig,
};
use fractalcloud_pointcloud::{Point3, PointCloud};
use proptest::prelude::*;

fn arb_cloud(max_n: usize) -> impl Strategy<Value = PointCloud> {
    proptest::collection::vec((-50.0f32..50.0, -50.0f32..50.0, -20.0f32..20.0), 4..max_n).prop_map(
        |v| PointCloud::from_points(v.into_iter().map(|(x, y, z)| Point3::new(x, y, z)).collect()),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The fractal tree's DFT layout groups each leaf contiguously and the
    /// node ranges nest correctly.
    #[test]
    fn fractal_tree_ranges_nest((cloud, th) in (arb_cloud(300), 4usize..64)) {
        let r = Fractal::with_threshold(th).build(&cloud).unwrap();
        r.tree.validate().map_err(TestCaseError::fail)?;
        // Every leaf's points (via partition) sit inside its node AABB.
        for (&leaf, block) in r.tree.leaves().iter().zip(&r.partition.blocks) {
            let node = r.tree.node(leaf);
            for &i in &block.indices {
                prop_assert!(node.aabb.contains(cloud.point(i)));
            }
        }
    }

    /// Parent search spaces always include the block itself and cover at
    /// least as many points.
    #[test]
    fn search_spaces_contain_self((cloud, th) in (arb_cloud(250), 4usize..48)) {
        let r = Fractal::with_threshold(th).build(&cloud).unwrap();
        for (b, block) in r.partition.blocks.iter().enumerate() {
            prop_assert!(block.parent_group.contains(&b));
            let space: usize =
                block.parent_group.iter().map(|&g| r.partition.blocks[g].len()).sum();
            prop_assert!(space >= block.len());
        }
    }

    /// Block FPS at any rate returns sorted-unique indices drawn from the
    /// right blocks, and parallel == sequential.
    #[test]
    fn block_fps_properties(
        (cloud, th) in (arb_cloud(300), 8usize..64),
        rate in 0.05f64..0.95,
    ) {
        let part = Fractal::with_threshold(th).build(&cloud).unwrap().partition;
        let seq = block_fps(&cloud, &part, rate, &BppoConfig::sequential()).unwrap();
        let par = block_fps(&cloud, &part, rate, &BppoConfig::default()).unwrap();
        prop_assert_eq!(&seq.indices, &par.indices);
        let mut sorted = seq.indices.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), seq.indices.len());
        for (b, samples) in seq.per_block.iter().enumerate() {
            for s in samples {
                prop_assert!(part.blocks[b].indices.contains(s));
            }
        }
    }

    /// Block ball query neighbors always come from the block's search
    /// space, and rows are fully padded.
    #[test]
    fn block_bq_stays_in_search_space(
        (cloud, th) in (arb_cloud(200), 8usize..48),
        radius in 0.5f32..20.0,
    ) {
        let part = Fractal::with_threshold(th).build(&cloud).unwrap().partition;
        let fps = block_fps(&cloud, &part, 0.25, &BppoConfig::sequential()).unwrap();
        let num = 4;
        let bq = block_ball_query(&cloud, &part, &fps.per_block, radius, num,
                                  &BppoConfig::sequential()).unwrap();
        prop_assert_eq!(bq.indices.len(), bq.center_indices.len() * num);
        let mut row = 0usize;
        for (b, centers) in fps.per_block.iter().enumerate() {
            let allowed: std::collections::BTreeSet<usize> = part.blocks[b]
                .parent_group
                .iter()
                .flat_map(|&g| part.blocks[g].indices.iter().copied())
                .collect();
            for _ in centers {
                for &nb in &bq.indices[row * num..(row + 1) * num] {
                    prop_assert!(allowed.contains(&nb));
                }
                row += 1;
            }
        }
    }

    /// Block gather of block-generated indices is always fully on-chip and
    /// bit-identical to the global gather.
    #[test]
    fn block_gather_matches_global((cloud, th) in (arb_cloud(200), 8usize..48)) {
        use fractalcloud_pointcloud::generate::with_random_features;
        use fractalcloud_pointcloud::ops::gather_features;
        let cloud = with_random_features(cloud, 4, 1);
        let part = Fractal::with_threshold(th).build(&cloud).unwrap().partition;
        let fps = block_fps(&cloud, &part, 0.25, &BppoConfig::sequential()).unwrap();
        let num = 4;
        let bq = block_ball_query(&cloud, &part, &fps.per_block, 5.0, num,
                                  &BppoConfig::sequential()).unwrap();
        let mut per_block = Vec::new();
        let mut row = 0usize;
        for centers in &fps.per_block {
            per_block.push(bq.indices[row * num..(row + centers.len()) * num].to_vec());
            row += centers.len();
        }
        let bg = block_gather(&cloud, &part, &per_block, num, &BppoConfig::sequential()).unwrap();
        prop_assert_eq!(bg.locality.remote, 0);
        let global = gather_features(&cloud, &bq.indices, num).unwrap();
        prop_assert_eq!(bg.data, global.data);
    }

    /// Block interpolation always produces finite features for every
    /// original point exactly once.
    #[test]
    fn block_interpolation_total((cloud, th) in (arb_cloud(200), 8usize..48)) {
        let part = Fractal::with_threshold(th).build(&cloud).unwrap().partition;
        let fps = block_fps(&cloud, &part, 0.5, &BppoConfig::sequential()).unwrap();
        prop_assume!(!fps.indices.is_empty());
        let pts: Vec<Point3> = fps.indices.iter().map(|&i| cloud.point(i)).collect();
        let feats: Vec<f32> = pts.iter().map(|p| p.x).collect();
        let sources = PointCloud::from_points_features(pts, feats, 1).unwrap();
        let mut rows = Vec::new();
        let mut cursor = 0usize;
        for b in &fps.per_block {
            rows.push((cursor..cursor + b.len()).collect::<Vec<usize>>());
            cursor += b.len();
        }
        let out = block_interpolate(&cloud, &part, &sources, &rows, 3,
                                    &BppoConfig::sequential()).unwrap();
        prop_assert_eq!(out.target_indices.len(), cloud.len());
        let mut seen = out.target_indices.clone();
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(seen.len(), cloud.len());
        prop_assert!(out.features.iter().all(|f| f.is_finite()));
    }
}

// Scheduling- and path-equivalence properties for the optimized hot paths.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The parallel (level-synchronous) Fractal build is bit-identical to
    /// the sequential build: same tree, blocks, layout, and cost counters.
    #[test]
    fn fractal_parallel_build_equals_sequential((cloud, th) in (arb_cloud(400), 4usize..64)) {
        let par = Fractal::new(FractalConfig::new(th)).build(&cloud).unwrap();
        let seq = Fractal::new(FractalConfig::new(th).sequential()).build(&cloud).unwrap();
        prop_assert_eq!(par, seq);
    }

    /// Kernel block FPS equals the retained scalar reference — indices and
    /// counters — with and without the window check.
    #[test]
    fn block_fps_kernel_equals_scalar_reference(
        (cloud, th) in (arb_cloud(300), 8usize..64),
        rate in 0.05f64..0.95,
    ) {
        let part = Fractal::with_threshold(th).build(&cloud).unwrap().partition;
        for window_check in [true, false] {
            let cfg = BppoConfig { window_check, ..BppoConfig::sequential() };
            let scalar = bppo_reference::block_fps(&cloud, &part, rate, &cfg).unwrap();
            let kernel = block_fps(&cloud, &part, rate, &cfg).unwrap();
            prop_assert_eq!(&scalar.indices, &kernel.indices);
            prop_assert_eq!(&scalar.per_block, &kernel.per_block);
            prop_assert_eq!(scalar.counters, kernel.counters);
            prop_assert_eq!(scalar.critical_path, kernel.critical_path);
        }
    }
}

/// Runs `f` once per kernel backend (sequential block scheduling, so the
/// thread-local override reaches the block loops) and asserts every result
/// equals the scalar backend's.
fn assert_all_backends_equal<T: PartialEq + std::fmt::Debug>(f: impl Fn() -> T) {
    use fractalcloud_pointcloud::kernels::{with_backend, Backend};
    let baseline = with_backend(Backend::Scalar, &f);
    for b in [Backend::Soa, Backend::Avx2] {
        let got = with_backend(b, &f);
        assert_eq!(got, baseline, "backend {} diverged from scalar", b.name());
    }
}

// Cross-backend equivalence of the block-parallel operations: the kernel
// dispatch layer must be invisible in every result and counter.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Block FPS: identical samples and counters on every backend.
    #[test]
    fn block_fps_identical_across_backends(
        (cloud, th) in (arb_cloud(250), 8usize..64),
        rate in 0.05f64..0.95,
    ) {
        let part = Fractal::with_threshold(th).build(&cloud).unwrap().partition;
        assert_all_backends_equal(|| {
            let r = block_fps(&cloud, &part, rate, &BppoConfig::sequential()).unwrap();
            (r.indices, r.counters, r.critical_path)
        });
    }

    /// Block ball query: identical neighbor rows, found counts, and
    /// counters on every backend (small radii exercise the empty-ball
    /// fallback path).
    #[test]
    fn block_bq_identical_across_backends(
        (cloud, th) in (arb_cloud(250), 8usize..48),
        radius in 0.05f32..20.0,
    ) {
        let part = Fractal::with_threshold(th).build(&cloud).unwrap().partition;
        let fps = block_fps(&cloud, &part, 0.25, &BppoConfig::sequential()).unwrap();
        assert_all_backends_equal(|| {
            let r = block_ball_query(&cloud, &part, &fps.per_block, radius, 4,
                                     &BppoConfig::sequential()).unwrap();
            (r.indices, r.found, r.counters)
        });
    }

    /// Block interpolation: identical features, neighbors, and counters on
    /// every backend — `k` may exceed the per-search-space sample count
    /// (the clamped-`k` tiling edge case).
    #[test]
    fn block_interpolation_identical_across_backends(
        (cloud, th) in (arb_cloud(200), 8usize..48),
        k in 1usize..12,
    ) {
        let part = Fractal::with_threshold(th).build(&cloud).unwrap().partition;
        let fps = block_fps(&cloud, &part, 0.25, &BppoConfig::sequential()).unwrap();
        prop_assume!(!fps.indices.is_empty());
        let pts: Vec<Point3> = fps.indices.iter().map(|&i| cloud.point(i)).collect();
        let feats: Vec<f32> = pts.iter().map(|p| p.x + p.y).collect();
        let sources = PointCloud::from_points_features(pts, feats, 1).unwrap();
        let mut rows = Vec::new();
        let mut cursor = 0usize;
        for b in &fps.per_block {
            rows.push((cursor..cursor + b.len()).collect::<Vec<usize>>());
            cursor += b.len();
        }
        assert_all_backends_equal(|| {
            let r = block_interpolate(&cloud, &part, &sources, &rows, k,
                                      &BppoConfig::sequential()).unwrap();
            (r.features, r.neighbor_indices, r.counters)
        });
    }
}

// Progressive LOD: any prefix of a full run is a valid smaller-budget run.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `PipelineOutput::prefix(k)` is bit-identical — indices, per-block
    /// rows, found counts, OpCounters, critical path, reuse, ordering — to
    /// actually running the pipeline with a sample budget of `k`, on every
    /// kernel backend, over ragged partitions, and across cache-hit
    /// repeats (the same built partition reused for both runs and for a
    /// second identical run).
    #[test]
    fn prefix_is_bit_identical_to_budget_run(
        (cloud, th) in (arb_cloud(250), 8usize..64),
        rate in 0.1f64..0.95,
        frac in 0.0f64..=1.0,
    ) {
        use fractalcloud_core::{Pipeline, PipelineConfig};
        let cfg = PipelineConfig {
            threshold: th,
            sample_rate: rate,
            radius: 0.8,
            neighbors: 4,
        };
        let pipe = Pipeline::new(cfg).unwrap();
        assert_all_backends_equal(|| {
            let built = pipe.partition(&cloud, false).unwrap();
            let full = pipe.run_with_partition(&cloud, &built, false).unwrap();
            let k = ((full.total_samples() as f64) * frac).floor() as usize;
            let view = full.prefix(k);
            // Cache-hit repeat: the same `built` serves the budget run...
            let direct = pipe.run_with_partition_budget(&cloud, &built, k, false).unwrap();
            assert_eq!(view, direct, "prefix({k}) diverged from a budget-{k} run");
            // ...and a second identical budget run must not drift.
            let again = pipe.run_with_partition_budget(&cloud, &built, k, false).unwrap();
            assert_eq!(direct, again, "budget-{k} repeat drifted");
            (view, direct)
        });
    }
}

//! Workspace-reuse bit-identity: a *dirty* reused [`Workspace`] (and dirty
//! reused output staging) must produce output bit-identical to fresh
//! allocation — indices, distances-derived features, `OpCounters`,
//! critical paths, reuse statistics, everything — on every kernel backend,
//! for ragged block shapes, and for cache-hit-style repeated runs.
//!
//! This is the contract the serving engine's zero-allocation steady state
//! stands on: scratch arenas carry no results between frames.

use fractalcloud_core::workspace::Workspace;
use fractalcloud_core::{
    ball_query_block_task, ball_query_block_task_ws, block_ball_query, block_fps, block_fps_pinned,
    fps_block_task, fps_block_task_ws, BppoConfig, Fractal, Pipeline, PipelineConfig,
    PipelineOutput,
};
use fractalcloud_pointcloud::kernels::{self, Backend};
use fractalcloud_pointcloud::{Point3, PointCloud};
use proptest::prelude::*;

fn arb_cloud(max_n: usize) -> impl Strategy<Value = PointCloud> {
    proptest::collection::vec((-50.0f32..50.0, -50.0f32..50.0, -20.0f32..20.0), 8..max_n).prop_map(
        |v| PointCloud::from_points(v.into_iter().map(|(x, y, z)| Point3::new(x, y, z)).collect()),
    )
}

/// Runs `f` on every backend available on this host.
fn on_every_backend(mut f: impl FnMut(Backend)) {
    for b in Backend::ALL {
        if b.is_available() {
            f(b);
        }
    }
}

/// A workspace deliberately left dirty by running unrelated work through
/// it: different cloud, different threshold, different radii.
fn dirty_workspace(seed_cloud: &PointCloud) -> Workspace {
    let mut ws = Workspace::new();
    let pipe = Pipeline::new(PipelineConfig::new(13, 0.5, 0.9, 3)).unwrap();
    let built = pipe.partition_ws(seed_cloud, false, &mut ws).unwrap();
    let mut staging = PipelineOutput::default();
    pipe.run_with_partition_into(seed_cloud, &built, false, &mut ws, &mut staging).unwrap();
    ws
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Full pipeline (partition + FPS + ball query) through a dirty
    /// workspace + dirty output staging equals fresh allocation, on every
    /// backend, including every counter.
    #[test]
    fn dirty_workspace_pipeline_is_bit_identical(
        (cloud, th) in (arb_cloud(400), 4usize..96),
        rate in 0.05f64..0.95,
        radius in 0.2f32..4.0,
        num in 1usize..12,
    ) {
        let seed = PointCloud::from_points(
            (0..97).map(|i| Point3::new(i as f32 * 0.31, (i % 7) as f32, -(i as f32) * 0.05)).collect(),
        );
        let config = PipelineConfig::new(th, rate, radius, num);
        let pipe = Pipeline::new(config).unwrap();
        let mut results: Vec<PipelineOutput> = Vec::new();
        on_every_backend(|backend| {
            kernels::with_backend(backend, || {
                // Fresh path: plain entry points (transient pool state).
                let built = pipe.partition(&cloud, false).unwrap();
                let fresh = pipe.run_with_partition(&cloud, &built, false).unwrap();
                // Dirty path: reused workspace + reused (dirty) staging.
                let mut ws = dirty_workspace(&seed);
                let built_ws = pipe.partition_ws(&cloud, false, &mut ws).unwrap();
                assert_eq!(built_ws, built, "dirty-workspace build diverged");
                let mut staging = PipelineOutput::default();
                // Dirty the staging with a different frame first.
                pipe.run_with_partition_into(&seed, &pipe.partition(&seed, false).unwrap(), false, &mut ws, &mut staging).unwrap();
                pipe.run_with_partition_into(&cloud, &built_ws, false, &mut ws, &mut staging).unwrap();
                assert_eq!(staging, fresh, "dirty-staging output diverged");
                results.push(fresh);
            });
        });
        // All backends agree with one another as well.
        for w in results.windows(2) {
            prop_assert_eq!(&w[0], &w[1]);
        }
    }

    /// Per-block task entry points: the `_ws` forms on a dirty workspace
    /// equal the no-workspace wrappers, block by block (ragged blocks
    /// included by construction — Fractal leaves are unevenly sized).
    #[test]
    fn dirty_workspace_block_tasks_match_wrappers(
        (cloud, th) in (arb_cloud(300), 4usize..48),
        count in 1usize..64,
        radius in 0.3f32..3.0,
        num in 1usize..8,
    ) {
        let built = Fractal::with_threshold(th).build(&cloud).unwrap();
        let seed = PointCloud::from_points(
            (0..61).map(|i| Point3::new(-(i as f32) * 0.7, (i % 5) as f32 * 1.3, 0.2)).collect(),
        );
        let mut ws = dirty_workspace(&seed);
        for b in 0..built.partition.blocks.len() {
            let block = &built.partition.blocks[b].indices;
            let plain = fps_block_task(&cloud, block, count, true);
            let via_ws = fps_block_task_ws(&cloud, block, count, true, &mut ws);
            prop_assert_eq!(&plain, &via_ws);
            let centers = &plain.0;
            let plain_bq =
                ball_query_block_task(&cloud, &built.partition, b, centers, radius, num, true);
            let ws_bq = ball_query_block_task_ws(
                &cloud, &built.partition, b, centers, radius, num, true, &mut ws,
            );
            prop_assert_eq!(&plain_bq, &ws_bq);
        }
    }

    /// Repeating the same frame through one workspace (the cache-hit serve
    /// pattern: partition built once, BPPO half re-run) never drifts.
    #[test]
    fn repeated_cache_hit_runs_are_stable(
        (cloud, th) in (arb_cloud(300), 8usize..64),
    ) {
        let config = PipelineConfig::new(th, 0.25, 0.6, 8);
        let pipe = Pipeline::new(config).unwrap();
        let mut ws = Workspace::new();
        let built = pipe.partition_ws(&cloud, false, &mut ws).unwrap();
        let first = pipe.run_with_partition(&cloud, &built, false).unwrap();
        let mut staging = PipelineOutput::default();
        for _round in 0..3 {
            pipe.run_with_partition_into(&cloud, &built, false, &mut ws, &mut staging).unwrap();
            prop_assert_eq!(&staging, &first);
        }
    }

    /// Pinned block FPS through a dirty workspace equals a fresh run on
    /// every backend (the fused pin-mask kernel shares the workspace SoA
    /// staging with plain FPS).
    #[test]
    fn dirty_workspace_pinned_fps_is_stable(
        (cloud, th) in (arb_cloud(250), 8usize..64),
        radius in 0.2f32..2.0,
    ) {
        let part = Fractal::with_threshold(th).build(&cloud).unwrap().partition;
        let fresh = block_fps_pinned(&cloud, &part, 0.5, radius, &BppoConfig::sequential()).unwrap();
        on_every_backend(|backend| {
            kernels::with_backend(backend, || {
                let again =
                    block_fps_pinned(&cloud, &part, 0.5, radius, &BppoConfig::sequential()).unwrap();
                if backend == kernels::active_backend() {
                    assert_eq!(again, fresh);
                }
            });
        });
        // Plain and pinned runs interleaved through the shared global pool
        // must not disturb one another.
        let plain = block_fps(&cloud, &part, 0.5, &BppoConfig::sequential()).unwrap();
        let pinned2 = block_fps_pinned(&cloud, &part, 0.5, radius, &BppoConfig::sequential()).unwrap();
        let plain2 = block_fps(&cloud, &part, 0.5, &BppoConfig::sequential()).unwrap();
        prop_assert_eq!(pinned2, fresh);
        prop_assert_eq!(plain2, plain);
    }
}

/// An injected mid-stage panic with a pooled workspace live must not
/// contaminate later frames: the unwind-aware [`PoolGuard`] discards the
/// arena instead of re-pooling it, so the next clean frame through the
/// global pool is bit-identical to a run through brand-new workspaces.
#[test]
fn pool_survives_injected_mid_stage_panic() {
    let cloud = PointCloud::from_points(
        (0..300)
            .map(|i| Point3::new((i % 17) as f32 * 0.7, (i % 5) as f32, i as f32 * 0.01))
            .collect::<Vec<_>>(),
    );
    let config = PipelineConfig::new(24, 0.3, 0.8, 6);
    let pipe = Pipeline::new(config).unwrap();
    // Panic mid-stage with a pooled workspace checked out and dirtied: the
    // partition half has run, FPS/ball-query scratch is in a torn state.
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut ws = fractalcloud_core::workspace::global_pool().checkout();
        let _built = pipe.partition_ws(&cloud, false, &mut ws).unwrap();
        panic!("injected mid-stage panic");
    }));
    assert!(r.is_err());
    // A clean frame via the pooled entry points equals a run through a
    // never-pooled workspace, bit for bit.
    let built = pipe.partition(&cloud, false).unwrap();
    let pooled = pipe.run_with_partition(&cloud, &built, false).unwrap();
    let mut fresh_ws = Workspace::new();
    let built_fresh = pipe.partition_ws(&cloud, false, &mut fresh_ws).unwrap();
    assert_eq!(built_fresh, built, "post-panic pooled build diverged");
    let mut staging = PipelineOutput::default();
    pipe.run_with_partition_into(&cloud, &built_fresh, false, &mut fresh_ws, &mut staging).unwrap();
    assert_eq!(staging, pooled, "post-panic pooled run diverged from fresh workspaces");
}

/// Deterministic (non-property) check that ball queries through a dirty
/// workspace handle the empty-centers and single-block edge shapes.
#[test]
fn dirty_workspace_handles_edge_shapes() {
    let cloud = PointCloud::from_points(
        (0..40).map(|i| Point3::new(i as f32, 0.0, 0.0)).collect::<Vec<_>>(),
    );
    let built = Fractal::with_threshold(64).build(&cloud).unwrap(); // single block
    let seed = PointCloud::from_points(
        (0..33).map(|i| Point3::new(0.0, i as f32 * 0.5, 1.0)).collect::<Vec<_>>(),
    );
    let mut ws = dirty_workspace(&seed);
    let centers: Vec<Vec<usize>> = vec![Vec::new()]; // no centers at all
    let fresh =
        block_ball_query(&cloud, &built.partition, &centers, 0.5, 4, &BppoConfig::sequential())
            .unwrap();
    let mut out = Default::default();
    fractalcloud_core::block_ball_query_into(
        &cloud,
        &built.partition,
        &centers,
        0.5,
        4,
        &BppoConfig::sequential(),
        &mut ws,
        &mut out,
    )
    .unwrap();
    assert_eq!(out, fresh);
    assert!(out.indices.is_empty());
}

//! Reusable scratch arenas for the partition + BPPO hot paths.
//!
//! FractalCloud's hardware keeps a block's data resident on-chip and
//! touches DRAM once per block; the software analogue of that discipline is
//! to stop asking the heap for fresh intermediate buffers on every block of
//! every frame. A [`Workspace`] owns every scratch buffer the hot paths
//! need — the gathered block SoA coordinates, the FPS running-distance
//! array, candidate/query staging, the batched-selection scratch
//! ([`SelectScratch`]), sample-count scratch, and the Fractal build's
//! order/frontier buffers — and the `*_into` / `*_ws` entry points across
//! `fractal`, `bppo` and `pipeline` reuse them across blocks *and* across
//! frames.
//!
//! # Ownership rules
//!
//! * A `Workspace` is exclusive (`&mut`) for the duration of one operation;
//!   nothing in it survives as a result — every operation fully resets the
//!   portions it reads, so a *dirty* workspace is bit-identical to a fresh
//!   one (property-tested in `tests/workspace_reuse.rs`).
//! * Parallel fan-outs never share scratch: per-lane workspaces are handed
//!   out by [`fractalcloud_parallel::parallel_map_budget_with`], which
//!   calls the checkout hook once per execution lane (scoped threads each
//!   get their own).
//! * The no-workspace entry points (`block_fps`, `Fractal::build`,
//!   `Pipeline::run_with_partition`, …) are thin wrappers that check a
//!   workspace out of the process-wide [`global_pool`] — so even legacy
//!   callers reuse scratch across calls, and results are bit-identical by
//!   shared code.
//!
//! # Pooling
//!
//! [`Pool`] is a trivial free-list: `checkout` pops a recycled value (or
//! creates a `Default` one), the returned [`PoolGuard`] hands it back on
//! drop. Steady state, the pool holds as many workspaces as the maximum
//! number of concurrent lanes ever observed, and checkout is one
//! uncontended mutex pop — no allocation.
//!
//! # `FRACTALCLOUD_WORKSPACE`
//!
//! Setting `FRACTALCLOUD_WORKSPACE=fresh` disables recycling: every
//! checkout constructs a brand-new value and drops it afterwards. This is
//! the A/B switch CI uses to prove reuse changes nothing but allocation
//! traffic (`reuse`, the default, names the recycling mode explicitly).

use fractalcloud_pointcloud::kernels::SelectScratch;
use std::sync::{Mutex, OnceLock};

/// Scratch-buffer arena for one execution lane of the partition + BPPO
/// pipeline. See the [module docs](self) for ownership rules.
///
/// All fields are growable buffers that retain capacity across uses; the
/// struct is cheap to create (no allocation until first use) and carries no
/// results between operations.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Gathered SoA x coordinates of the current block / candidate set.
    pub(crate) sx: Vec<f32>,
    /// Gathered SoA y coordinates.
    pub(crate) sy: Vec<f32>,
    /// Gathered SoA z coordinates.
    pub(crate) sz: Vec<f32>,
    /// FPS running nearest-sample distances (one entry per block point).
    pub(crate) dist: Vec<f32>,
    /// Flattened candidate indices of a search space.
    pub(crate) candidates: Vec<usize>,
    /// Query coordinates staged for batched selection.
    pub(crate) queries: Vec<[f32; 3]>,
    /// Batched-selection scratch: top-k heaps, distance tiles, hit lists.
    pub(crate) select: SelectScratch,
    /// Block sizes staged for sample-count allocation.
    pub(crate) sizes: Vec<usize>,
    /// Per-block sample counts.
    pub(crate) counts: Vec<usize>,
    /// Largest-remainder scratch of the sample-count allocation.
    pub(crate) rems: Vec<(f64, usize)>,
    /// Sorted own-block membership scratch (gather locality).
    pub(crate) own: Vec<usize>,
    /// Sorted search-space membership scratch (gather locality).
    pub(crate) space: Vec<usize>,
    /// Fractal build scratch (order buffer, frontier lists, split runs).
    pub(crate) build: BuildScratch,
    /// LOD schedule scratch: `(rank, count, block)` entries staged for the
    /// [`SampleOrder`](crate::lod::SampleOrder) interleave sort.
    pub(crate) sched: Vec<(u32, u32, u32)>,
    /// Network-inference scratch (per-layer activations, level pyramid).
    pub infer: InferScratch,
}

impl Workspace {
    /// An empty workspace; buffers grow on first use and are then reused.
    pub fn new() -> Workspace {
        Workspace::default()
    }
}

/// Byte-offsets of one level of the inference point pyramid inside
/// [`InferScratch`]'s flat buffers (element offsets, not bytes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevelMeta {
    /// Offset of the level's first point in `lvl_xs`/`lvl_ys`/`lvl_zs`.
    pub coord_off: usize,
    /// Number of points in the level.
    pub len: usize,
    /// Offset of the level's first feature value in `lvl_feat`.
    pub feat_off: usize,
    /// Feature channels per point at this level.
    pub channels: usize,
}

/// Per-layer scratch of the network-inference executor (`fractalcloud-pnn`):
/// the downsampling point pyramid stored as flat concatenated SoA levels,
/// ping-pong MLP activation buffers, grouped-row staging, and the neighbor
/// index lists the aggregation stage reduces over.
///
/// All buffers retain capacity across frames, so a warmed scratch runs a
/// whole forward pass without heap allocation; like every other workspace
/// field it carries no results between operations — each run fully rewrites
/// the portions it reads.
#[derive(Debug, Default)]
pub struct InferScratch {
    /// Concatenated per-level SoA x coordinates of the point pyramid.
    pub lvl_xs: Vec<f32>,
    /// Concatenated per-level SoA y coordinates.
    pub lvl_ys: Vec<f32>,
    /// Concatenated per-level SoA z coordinates.
    pub lvl_zs: Vec<f32>,
    /// Concatenated per-level feature rows (row-major per level).
    pub lvl_feat: Vec<f32>,
    /// Concatenated per-level original-cloud index of each point (grows in
    /// lockstep with the coordinate buffers, so a level's origin slice is
    /// `lvl_origin[meta.coord_off..meta.coord_off + meta.len]`).
    pub lvl_origin: Vec<usize>,
    /// One offsets record per stored level.
    pub lvl_meta: Vec<LevelMeta>,
    /// Staged MLP input rows (grouped rows in eager mode, per-point rows in
    /// delayed mode).
    pub rows: Vec<f32>,
    /// MLP activation ping buffer.
    pub feat_a: Vec<f32>,
    /// MLP activation pong buffer.
    pub feat_b: Vec<f32>,
    /// Aggregated per-centroid features of the current stage.
    pub pooled: Vec<f32>,
    /// Sampled center indices of the current stage.
    pub centers: Vec<usize>,
    /// Flattened neighbor index lists (`centers × nsample`).
    pub neighbors: Vec<usize>,
    /// Per-segment entry counts for the segmented reduction.
    pub counts: Vec<usize>,
    /// Query coordinates staged for batched selection.
    pub queries: Vec<[f32; 3]>,
    /// FPS running nearest-sample distances / interpolation weights scratch.
    pub dist: Vec<f32>,
    /// Batched-selection scratch for the executor's own KNN/ball scans.
    pub select: SelectScratch,
}

/// Scratch of the sequential Fractal build: the global order buffer whose
/// final state is the DFT layout, the level-synchronous frontier lists, and
/// the per-split left/right runs.
#[derive(Debug, Default)]
pub(crate) struct BuildScratch {
    pub order: Vec<usize>,
    pub active: Vec<usize>,
    pub next_active: Vec<usize>,
    pub leaves: Vec<usize>,
    pub left: Vec<usize>,
    pub right: Vec<usize>,
}

/// Whether checked-in values are recycled (`reuse`, default) or discarded
/// with every checkout constructing fresh (`fresh`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkspaceMode {
    /// Pooled values are recycled across checkouts (the default).
    Reuse,
    /// Every checkout constructs a fresh value; returns are discarded.
    Fresh,
}

impl WorkspaceMode {
    /// The mode's `FRACTALCLOUD_WORKSPACE` name.
    pub fn name(self) -> &'static str {
        match self {
            WorkspaceMode::Reuse => "reuse",
            WorkspaceMode::Fresh => "fresh",
        }
    }
}

/// The process-wide workspace mode: `FRACTALCLOUD_WORKSPACE=fresh` disables
/// recycling, anything else (including unset) selects [`WorkspaceMode::Reuse`].
/// Resolved once per process.
pub fn workspace_mode() -> WorkspaceMode {
    static MODE: OnceLock<WorkspaceMode> = OnceLock::new();
    *MODE.get_or_init(|| match std::env::var("FRACTALCLOUD_WORKSPACE") {
        Ok(v) if v.trim().eq_ignore_ascii_case("fresh") => WorkspaceMode::Fresh,
        _ => WorkspaceMode::Reuse,
    })
}

/// A free-list pool of `Default`-constructible values (workspaces, output
/// staging buffers). `checkout` pops a recycled value or constructs one;
/// the guard returns it on drop. Honors [`workspace_mode`]: in `fresh` mode
/// every checkout constructs and every return discards.
#[derive(Debug)]
pub struct Pool<T> {
    slots: Mutex<Vec<T>>,
}

impl<T: Default> Pool<T> {
    /// An empty pool.
    pub const fn new() -> Pool<T> {
        Pool { slots: Mutex::new(Vec::new()) }
    }

    /// Pops a recycled value (or constructs a fresh one); the guard checks
    /// it back in on drop.
    ///
    /// The free-list mutex is recovered if poisoned: the only operations
    /// ever performed under it are `Vec::pop`/`push`/`len`, which cannot
    /// leave the vector in a torn state, so a poisoned lock still guards a
    /// valid-by-construction free list.
    pub fn checkout(&self) -> PoolGuard<'_, T> {
        let value = match workspace_mode() {
            WorkspaceMode::Reuse => lock_unpoisoned(&self.slots).pop().unwrap_or_default(),
            WorkspaceMode::Fresh => T::default(),
        };
        PoolGuard { pool: self, value: Some(value) }
    }

    /// Number of values currently checked in (test/diagnostic hook).
    pub fn idle(&self) -> usize {
        lock_unpoisoned(&self.slots).len()
    }

    /// Pops a recycled value (or constructs a fresh one) *by value* — the
    /// guard-free form for values whose lifetime outlives any scope (e.g.
    /// response buffers handed to a client). Pair with [`Pool::put`]; a
    /// value never returned is simply dropped, which is always safe.
    pub fn take(&self) -> T {
        match workspace_mode() {
            WorkspaceMode::Reuse => lock_unpoisoned(&self.slots).pop().unwrap_or_default(),
            WorkspaceMode::Fresh => T::default(),
        }
    }

    /// Checks a value taken with [`Pool::take`] back in (discarded in
    /// `fresh` mode). The caller vouches the value holds no torn mid-stage
    /// state — unlike [`PoolGuard`], a by-value return has no unwind
    /// tracking, so only return values whose content is valid-by-
    /// construction (e.g. buffers about to be overwritten from scratch).
    pub fn put(&self, value: T) {
        if workspace_mode() == WorkspaceMode::Reuse {
            lock_unpoisoned(&self.slots).push(value);
        }
    }
}

impl<T: Default> Default for Pool<T> {
    fn default() -> Pool<T> {
        Pool::new()
    }
}

/// Exclusive access to a pooled value; checks it back in on drop (unless
/// the process runs in `fresh` mode, which discards it).
///
/// The guard is unwind-aware: when dropped *during panic unwinding* the
/// value is discarded instead of returned, because a panic can strike
/// mid-stage and leave scratch state (staged counts, partially moved
/// buffers) that no later frame may be allowed to observe. The next
/// checkout simply constructs a replacement.
#[derive(Debug)]
pub struct PoolGuard<'a, T: Default> {
    pool: &'a Pool<T>,
    value: Option<T>,
}

impl<T: Default> std::ops::Deref for PoolGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.value.as_ref().expect("pool guard holds a value until drop")
    }
}

impl<T: Default> std::ops::DerefMut for PoolGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.value.as_mut().expect("pool guard holds a value until drop")
    }
}

impl<T: Default> Drop for PoolGuard<'_, T> {
    fn drop(&mut self) {
        // A guard dropped while its thread unwinds was live when the panic
        // struck — its value may hold inconsistent mid-stage scratch, so it
        // is discarded rather than re-pooled.
        if workspace_mode() == WorkspaceMode::Reuse && !std::thread::panicking() {
            if let Some(v) = self.value.take() {
                lock_unpoisoned(&self.pool.slots).push(v);
            }
        }
    }
}

/// Locks `m`, recovering from poisoning. Sound only when every critical
/// section over `m` keeps the data valid even if interrupted by a panic —
/// true for the pool free list (single `Vec` push/pop calls).
fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The process-wide [`Workspace`] pool backing the no-workspace entry
/// points and the per-lane hand-outs of the parallel drivers.
pub fn global_pool() -> &'static Pool<Workspace> {
    static POOL: Pool<Workspace> = Pool::new();
    &POOL
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_recycles_values_in_reuse_mode() {
        if workspace_mode() != WorkspaceMode::Reuse {
            return; // suite running under FRACTALCLOUD_WORKSPACE=fresh
        }
        let pool: Pool<Vec<u8>> = Pool::new();
        {
            let mut v = pool.checkout();
            v.extend_from_slice(&[1, 2, 3]);
        }
        assert_eq!(pool.idle(), 1);
        let v = pool.checkout();
        assert_eq!(&*v, &[1, 2, 3], "recycled values keep their (dirty) state");
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn guard_live_during_unwind_discards_instead_of_repooling() {
        if workspace_mode() != WorkspaceMode::Reuse {
            return; // suite running under FRACTALCLOUD_WORKSPACE=fresh
        }
        let pool: Pool<Vec<u8>> = Pool::new();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut v = pool.checkout();
            v.extend_from_slice(&[9, 9, 9]); // mid-stage garbage
            panic!("injected mid-stage panic");
        }));
        assert!(r.is_err());
        assert_eq!(pool.idle(), 0, "a value live during an unwind must be discarded");
        // The next checkout constructs a replacement, untouched by the
        // aborted stage.
        assert!(pool.checkout().is_empty());
    }

    #[test]
    fn pool_take_and_put_recycle_by_value() {
        if workspace_mode() != WorkspaceMode::Reuse {
            return; // suite running under FRACTALCLOUD_WORKSPACE=fresh
        }
        let pool: Pool<Vec<u8>> = Pool::new();
        let mut v = pool.take();
        v.push(42);
        pool.put(v);
        assert_eq!(pool.idle(), 1);
        assert_eq!(pool.take(), vec![42], "by-value takes recycle dirty state");
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn global_pool_hands_out_distinct_workspaces() {
        let a = global_pool().checkout();
        let b = global_pool().checkout();
        // Two live guards always hold distinct arenas.
        assert_ne!(&*a as *const Workspace, &*b as *const Workspace);
    }

    #[test]
    fn mode_names_round_trip() {
        assert_eq!(WorkspaceMode::Reuse.name(), "reuse");
        assert_eq!(WorkspaceMode::Fresh.name(), "fresh");
    }
}

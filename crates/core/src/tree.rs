//! The fractal binary tree produced by partitioning.

use fractalcloud_pointcloud::{Aabb, Axis};
use serde::{Deserialize, Serialize};

/// Identifier of a node within a [`FractalTree`].
pub type NodeId = usize;

/// One node of the fractal binary tree (Fig. 6).
///
/// Internal nodes record the split plane; leaf nodes reference the final
/// block (the unit of block-parallel execution).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FractalNode {
    /// Tight bounding box of the node's points.
    pub aabb: Aabb,
    /// Number of points under this node.
    pub count: usize,
    /// Depth in the tree (root = 0).
    pub depth: usize,
    /// Parent node, `None` for the root.
    pub parent: Option<NodeId>,
    /// `(left, right)` children for internal nodes.
    pub children: Option<(NodeId, NodeId)>,
    /// Split axis and plane for internal nodes.
    pub split: Option<(Axis, f32)>,
    /// Index into the partition's block list when this node is a leaf.
    pub leaf_block: Option<usize>,
    /// Range `[start, end)` of this node's points in the DFT-ordered layout.
    pub range: (usize, usize),
}

impl FractalNode {
    /// True if the node is a leaf (a final block).
    pub fn is_leaf(&self) -> bool {
        self.children.is_none()
    }
}

/// The complete fractal tree: nodes plus the DFT leaf order.
///
/// Node 0 is always the root. Leaves appear in `leaves` in depth-first
/// (left-to-right) order, which is also their memory-layout order — the
/// property that makes neighbor-block access a *sequential* read (§IV-A).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FractalTree {
    nodes: Vec<FractalNode>,
    leaves: Vec<NodeId>,
}

impl FractalTree {
    /// Creates a tree from raw parts. Intended for the fractal builder; use
    /// [`crate::Fractal`] to construct trees from clouds.
    pub(crate) fn from_parts(nodes: Vec<FractalNode>, leaves: Vec<NodeId>) -> FractalTree {
        FractalTree { nodes, leaves }
    }

    /// The root node id (0), or `None` for an empty tree.
    pub fn root(&self) -> Option<NodeId> {
        if self.nodes.is_empty() {
            None
        } else {
            Some(0)
        }
    }

    /// All nodes, indexable by [`NodeId`].
    pub fn nodes(&self) -> &[FractalNode] {
        &self.nodes
    }

    /// A node by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &FractalNode {
        &self.nodes[id]
    }

    /// Leaf node ids in DFT order.
    pub fn leaves(&self) -> &[NodeId] {
        &self.leaves
    }

    /// Number of leaves (final blocks).
    pub fn num_leaves(&self) -> usize {
        self.leaves.len()
    }

    /// Maximum leaf depth.
    pub fn max_depth(&self) -> usize {
        self.leaves.iter().map(|&l| self.nodes[l].depth).max().unwrap_or(0)
    }

    /// The sibling of `id` (the other child of its parent), if any.
    pub fn sibling(&self, id: NodeId) -> Option<NodeId> {
        let parent = self.nodes[id].parent?;
        let (l, r) = self.nodes[parent].children.expect("parent is internal");
        Some(if l == id { r } else { l })
    }

    /// All leaf block indices under node `id`, in DFT order.
    pub fn leaf_blocks_under(&self, id: NodeId) -> Vec<usize> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            let node = &self.nodes[n];
            match node.children {
                None => out.push(node.leaf_block.expect("leaf has block")),
                Some((l, r)) => {
                    // push right first so left is visited first (DFT).
                    stack.push(r);
                    stack.push(l);
                }
            }
        }
        out
    }

    /// The *search space* of leaf `id` for block-wise neighbor operations
    /// (§IV-B): the leaf itself at depth ≤ 1, otherwise every leaf block
    /// under its immediate parent.
    pub fn search_space_blocks(&self, id: NodeId) -> Vec<usize> {
        let node = &self.nodes[id];
        debug_assert!(node.is_leaf(), "search space is defined for leaves");
        if node.depth <= 1 {
            vec![node.leaf_block.expect("leaf has block")]
        } else {
            self.leaf_blocks_under(node.parent.expect("depth ≥ 2 has a parent"))
        }
    }

    /// Checks structural invariants; used by tests and debug assertions.
    /// Returns a human-readable violation if any.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes.is_empty() {
            return if self.leaves.is_empty() {
                Ok(())
            } else {
                Err("leaves without nodes".into())
            };
        }
        for (id, n) in self.nodes.iter().enumerate() {
            if let Some((l, r)) = n.children {
                if l >= self.nodes.len() || r >= self.nodes.len() {
                    return Err(format!("node {id}: child out of range"));
                }
                if self.nodes[l].parent != Some(id) || self.nodes[r].parent != Some(id) {
                    return Err(format!("node {id}: child parent link broken"));
                }
                if n.count != self.nodes[l].count + self.nodes[r].count {
                    return Err(format!("node {id}: count != sum of children"));
                }
                if n.split.is_none() {
                    return Err(format!("node {id}: internal node missing split"));
                }
                if n.leaf_block.is_some() {
                    return Err(format!("node {id}: internal node has leaf block"));
                }
                // DFT ranges: left occupies the front of the parent range.
                if self.nodes[l].range.0 != n.range.0
                    || self.nodes[l].range.1 != self.nodes[r].range.0
                    || self.nodes[r].range.1 != n.range.1
                {
                    return Err(format!("node {id}: children ranges do not tile parent"));
                }
            } else {
                if n.leaf_block.is_none() {
                    return Err(format!("node {id}: leaf missing block index"));
                }
                if !self.leaves.contains(&id) {
                    return Err(format!("node {id}: leaf not in DFT list"));
                }
            }
            if n.range.0 > n.range.1 {
                return Err(format!("node {id}: inverted range"));
            }
            if n.count != n.range.1 - n.range.0 {
                return Err(format!("node {id}: count != range width"));
            }
        }
        // DFT order: leaf ranges must be consecutive and increasing.
        let mut cursor = 0usize;
        for &l in &self.leaves {
            let r = self.nodes[l].range;
            if r.0 != cursor {
                return Err(format!("leaf {l}: range {r:?} breaks DFT contiguity at {cursor}"));
            }
            cursor = r.1;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractalcloud_pointcloud::Point3;

    /// Builds the Fig. 6 tree by hand: root(80) → B1(43)+B2(37);
    /// B1 → B3(19)+B4(24); B2 → B5(17)+B6(20).
    fn fig6_tree() -> FractalTree {
        let unit = Aabb::new(Point3::ORIGIN, Point3::splat(1.0));
        let mk = |count, depth, parent, children, split, leaf_block, range| FractalNode {
            aabb: unit,
            count,
            depth,
            parent,
            children,
            split,
            leaf_block,
            range,
        };
        let nodes = vec![
            mk(80, 0, None, Some((1, 2)), Some((Axis::X, 0.51)), None, (0, 80)),
            mk(43, 1, Some(0), Some((3, 4)), Some((Axis::Y, 0.41)), None, (0, 43)),
            mk(37, 1, Some(0), Some((5, 6)), Some((Axis::Y, 0.57)), None, (43, 80)),
            mk(19, 2, Some(1), None, None, Some(0), (0, 19)),
            mk(24, 2, Some(1), None, None, Some(1), (19, 43)),
            mk(17, 2, Some(2), None, None, Some(2), (43, 60)),
            mk(20, 2, Some(2), None, None, Some(3), (60, 80)),
        ];
        FractalTree::from_parts(nodes, vec![3, 4, 5, 6])
    }

    #[test]
    fn fig6_tree_validates() {
        fig6_tree().validate().unwrap();
    }

    #[test]
    fn sibling_lookup() {
        let t = fig6_tree();
        assert_eq!(t.sibling(3), Some(4));
        assert_eq!(t.sibling(4), Some(3));
        assert_eq!(t.sibling(1), Some(2));
        assert_eq!(t.sibling(0), None);
    }

    #[test]
    fn leaf_blocks_under_subtree_in_dft_order() {
        let t = fig6_tree();
        assert_eq!(t.leaf_blocks_under(0), vec![0, 1, 2, 3]);
        assert_eq!(t.leaf_blocks_under(1), vec![0, 1]);
        assert_eq!(t.leaf_blocks_under(5), vec![2]);
    }

    #[test]
    fn search_space_follows_depth_rule() {
        let t = fig6_tree();
        // Depth-2 leaves search their parent: B3 searches {B3, B4} = B1.
        assert_eq!(t.search_space_blocks(3), vec![0, 1]);
        assert_eq!(t.search_space_blocks(6), vec![2, 3]);
    }

    #[test]
    fn validate_catches_broken_counts() {
        let mut t = fig6_tree();
        t.nodes[1].count = 44;
        assert!(t.validate().is_err());
    }

    #[test]
    fn validate_catches_broken_dft_ranges() {
        let mut t = fig6_tree();
        t.nodes[4].range = (20, 43);
        assert!(t.validate().is_err());
    }

    #[test]
    fn empty_tree_is_valid() {
        let t = FractalTree::default();
        t.validate().unwrap();
        assert_eq!(t.root(), None);
        assert_eq!(t.num_leaves(), 0);
    }

    #[test]
    fn max_depth_of_fig6_is_two() {
        assert_eq!(fig6_tree().max_depth(), 2);
    }
}

//! Block-Parallel Point Operations (BPPO, §IV-B).
//!
//! After Fractal partitioning, every point operation is decomposed from a
//! global search into independent block-local searches:
//!
//! * [`block_fps`] — block-wise sampling: FPS runs independently per block
//!   at a fixed sampling rate (inter-block parallelism, Alg. 2 rows 2–3);
//! * [`block_ball_query`] — block-wise grouping: each block's centers search
//!   the block's parent search space (intra-block parallelism with shared
//!   candidate data, Alg. 2 rows 5–8);
//! * [`block_interpolate`] — block-wise interpolation with the same
//!   search-space rule;
//! * [`block_gather`] — block-wise gathering with per-block locality
//!   accounting (on-chip vs DRAM).
//!
//! All functions take a [`Partition`](fractalcloud_pointcloud::partition::Partition)
//! — any partitioner works (the paper's
//! fractal engine also supports uniform and KD-tree modes) — but only
//! partitions whose `parent_group`s derive from a fractal/KD tree give the
//! paper's accuracy-preserving expanded search spaces.

mod gathering;
mod grouping;
pub mod interpolation;
pub mod reference;
mod sampling;

pub use gathering::{block_gather, BlockGatherResult, GatherLocality};
pub use grouping::{
    assemble_block_neighbors, ball_query_block_model, ball_query_block_task,
    ball_query_block_task_into, ball_query_block_task_ws, block_ball_query, block_ball_query_into,
    BlockNeighborResult, BlockNeighborTask,
};
pub use interpolation::{block_interpolate, BlockInterpolationResult};
pub use sampling::{
    assemble_block_fps, block_fps, block_fps_pinned, block_fps_with_counts,
    block_fps_with_counts_into, block_sample_counts, block_sample_counts_into, equal_sample_counts,
    fps_block_task, fps_block_task_into, fps_block_task_pinned_into, fps_block_task_ws,
    BlockFpsResult,
};

use serde::{Deserialize, Serialize};

/// Execution options shared by all block-parallel operations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BppoConfig {
    /// Run blocks on worker threads (inter-block parallelism). Results are
    /// identical either way; this only affects wall-clock time.
    pub parallel: bool,
    /// Enable the RSPU window-check skip for sampling (Fig. 11(c)).
    pub window_check: bool,
    /// Expand neighbor search spaces to the immediate parent node (§IV-B).
    /// Disabling restricts every search to its own block (an ablation that
    /// degrades the accuracy proxy, Fig. 14 discussion).
    pub parent_expansion: bool,
}

impl Default for BppoConfig {
    fn default() -> BppoConfig {
        BppoConfig { parallel: true, window_check: true, parent_expansion: true }
    }
}

impl BppoConfig {
    /// Sequential execution with all hardware features on (deterministic
    /// debugging).
    pub fn sequential() -> BppoConfig {
        BppoConfig { parallel: false, ..BppoConfig::default() }
    }
}

/// Data-reuse statistics for neighbor operations (the RSPU intra-block reuse
/// of §V-C: candidate data is loaded once per block and shared across all
/// the block's center points).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReuseStats {
    /// Candidate-point loads with per-block sharing (one load per candidate
    /// per block).
    pub shared_loads: u64,
    /// Candidate-point loads a no-reuse design would issue (one load per
    /// candidate per center).
    pub unshared_loads: u64,
}

impl ReuseStats {
    /// Memory-access reduction factor from reuse (≥ 1).
    pub fn reduction_factor(&self) -> f64 {
        if self.shared_loads == 0 {
            1.0
        } else {
            self.unshared_loads as f64 / self.shared_loads as f64
        }
    }

    /// Accumulates another block's statistics.
    pub fn merge(&mut self, other: &ReuseStats) {
        self.shared_loads += other.shared_loads;
        self.unshared_loads += other.unshared_loads;
    }
}

/// Runs `f(block_index, workspace)` for every block, optionally on worker
/// threads, and returns results in block order (deterministic regardless
/// of scheduling).
///
/// Inter-block parallelism is delegated to
/// [`fractalcloud_parallel::parallel_map_with`], the same work-claiming
/// pool the Fractal partitioner's level-synchronous frontier uses, so
/// block FPS/KNN and the build scale on the same worker budget. Each
/// execution lane gets a pooled [`Workspace`](crate::Workspace) through
/// the per-lane `make` hook — one checkout from
/// [`global_pool`](crate::workspace::global_pool) per lane, so scoped
/// threads never share scratch, and the inline path reuses a single
/// checkout for every block.
pub(crate) fn for_each_block_ws<T, F>(n_blocks: usize, parallel: bool, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &mut crate::workspace::Workspace) -> T + Sync,
{
    fractalcloud_parallel::parallel_map_with(
        vec![(); n_blocks],
        parallel,
        || crate::workspace::global_pool().checkout(),
        |b, (), ws| f(b, ws),
    )
}

/// Whether block work should stream through one workspace on the calling
/// lane: either the caller asked for sequential execution, or the lane's
/// effective thread budget cannot fan out anyway (a budget-1 serve lane, a
/// single-CPU host). The parallel drivers and this streaming path produce
/// bit-identical results; streaming additionally performs zero heap
/// allocation once warmed.
pub(crate) fn streaming(parallel: bool) -> bool {
    !parallel || fractalcloud_parallel::effective_budget() <= 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_each_block_preserves_order() {
        let seq = for_each_block_ws(100, false, |b, _ws| b * 2);
        let par = for_each_block_ws(100, true, |b, _ws| b * 2);
        assert_eq!(seq, par);
        assert_eq!(seq[7], 14);
    }

    #[test]
    fn for_each_block_empty() {
        let out: Vec<usize> = for_each_block_ws(0, true, |b, _ws| b);
        assert!(out.is_empty());
    }

    #[test]
    fn reuse_stats_reduction() {
        let r = ReuseStats { shared_loads: 100, unshared_loads: 760 };
        assert!((r.reduction_factor() - 7.6).abs() < 1e-9);
        let zero = ReuseStats::default();
        assert_eq!(zero.reduction_factor(), 1.0);
    }

    #[test]
    fn reuse_stats_merge() {
        let mut a = ReuseStats { shared_loads: 10, unshared_loads: 50 };
        a.merge(&ReuseStats { shared_loads: 5, unshared_loads: 25 });
        assert_eq!(a.shared_loads, 15);
        assert_eq!(a.unshared_loads, 75);
    }

    #[test]
    fn default_config_enables_everything() {
        let c = BppoConfig::default();
        assert!(c.parallel && c.window_check && c.parent_expansion);
        assert!(!BppoConfig::sequential().parallel);
    }
}

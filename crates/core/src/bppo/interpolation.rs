//! Block-wise interpolation (BWI): KNN feature propagation with block-local
//! search spaces.

use crate::bppo::grouping::search_space;
use crate::bppo::{for_each_block_ws, BppoConfig, ReuseStats};
use fractalcloud_pointcloud::kernels;
use fractalcloud_pointcloud::ops::OpCounters;
use fractalcloud_pointcloud::partition::Partition;
use fractalcloud_pointcloud::{Error, PointCloud, Result};

/// Output of [`block_interpolate`].
#[derive(Debug, Clone, PartialEq)]
pub struct BlockInterpolationResult {
    /// Row-major `targets × channels` interpolated features; target rows
    /// appear in block order, preserving each block's point order.
    pub features: Vec<f32>,
    /// Global indices of the targets, aligned with the feature rows.
    pub target_indices: Vec<usize>,
    /// `targets × k` source-row indices actually used per target (row-major,
    /// padded by repeating the nearest source when fewer than `k` were
    /// available). Used for neighbor-recall quality metrics.
    pub neighbor_indices: Vec<usize>,
    /// Neighbors per target (`k`, after clamping to the candidate count).
    pub k: usize,
    /// Channels per row.
    pub channels: usize,
    /// Aggregated work counters.
    pub counters: OpCounters,
    /// Critical-path (largest single block) work.
    pub critical_path: OpCounters,
    /// Intra-block reuse statistics.
    pub reuse: ReuseStats,
}

/// Block-wise inverse-distance-weighted KNN interpolation (§IV-B).
///
/// The propagation stage restores features of points dropped by sampling:
/// every point of every block (the *targets*) receives features
/// interpolated from the `k` nearest *source* points, where the sources
/// searched are restricted to `sources_per_block` of the block's parent
/// search space.
///
/// `sources` is the sampled cloud (carrying features);
/// `sources_per_block[b]` lists row indices *into `sources`* contributed by
/// block `b` (the per-block output of block-wise FPS).
///
/// # Errors
///
/// Returns [`Error::ShapeMismatch`] for mismatched block lists,
/// [`Error::InvalidParameter`] for `k == 0` or an unfeatured source cloud.
pub fn block_interpolate(
    cloud: &PointCloud,
    partition: &Partition,
    sources: &PointCloud,
    sources_per_block: &[Vec<usize>],
    k: usize,
    config: &BppoConfig,
) -> Result<BlockInterpolationResult> {
    if sources_per_block.len() != partition.blocks.len() {
        return Err(Error::ShapeMismatch {
            expected: partition.blocks.len(),
            actual: sources_per_block.len(),
        });
    }
    if k == 0 {
        return Err(Error::InvalidParameter { name: "k", message: "must be at least 1".into() });
    }
    if sources.channels() == 0 {
        return Err(Error::InvalidParameter {
            name: "sources",
            message: "source cloud must carry features".into(),
        });
    }

    let channels = sources.channels();
    let results = for_each_block_ws(partition.blocks.len(), config.parallel, |b, ws| {
        let space = search_space(partition, b, config.parent_expansion);
        // Candidate source rows: the sampled points of the search space,
        // staged in the lane's workspace.
        ws.candidates.clear();
        for &g in &space {
            ws.candidates.extend_from_slice(&sources_per_block[g]);
        }
        if ws.candidates.is_empty() {
            // Degenerate: no samples in the search space; widen to all
            // sources so interpolation stays total.
            ws.candidates.extend(0..sources.len());
        }
        let mut counters = OpCounters::new();
        let mut reuse = ReuseStats::default();
        let targets = &partition.blocks[b].indices;
        reuse.shared_loads += ws.candidates.len() as u64;
        reuse.unshared_loads += (ws.candidates.len() * targets.len().max(1)) as u64;
        counters.coord_reads += ws.candidates.len() as u64;

        // Shared candidate load: gather the search space's source
        // coordinates into the workspace's local SoA buffers once per
        // block.
        kernels::gather_coords(
            sources.xs(),
            sources.ys(),
            sources.zs(),
            &ws.candidates,
            &mut ws.sx,
            &mut ws.sy,
            &mut ws.sz,
        );
        let kk = k.min(ws.candidates.len());
        let mut features = vec![0.0f32; targets.len() * channels];
        let mut neighbors = Vec::with_capacity(targets.len() * k);
        // Batched top-k selection (the RSPU top-k unit) over the shared
        // local SoA: tiles of QUERY_TILE targets share every candidate
        // chunk load on the active kernel backend, with the top-k heaps
        // and distance tiles living in the lane's workspace.
        ws.queries.clear();
        ws.queries
            .extend(targets.iter().map(|&ti| [cloud.xs()[ti], cloud.ys()[ti], cloud.zs()[ti]]));
        let candidates = &ws.candidates;
        kernels::knn_select_batch_into(
            kernels::active_backend(),
            &ws.sx,
            &ws.sy,
            &ws.sz,
            &ws.queries,
            kk,
            &mut ws.select,
            |t_row, best| {
                counters.distance_evals += candidates.len() as u64;
                counters.comparisons += candidates.len() as u64;
                const EPS: f32 = 1e-10;
                let out = &mut features[t_row * channels..(t_row + 1) * channels];
                if best[0].0 <= EPS {
                    counters.feature_reads += 1;
                    out.copy_from_slice(sources.feature(candidates[best[0].1]));
                } else {
                    let wsum: f32 = best.iter().map(|&(d, _)| 1.0 / (d + EPS)).sum();
                    for &(d, slot) in best {
                        counters.feature_reads += 1;
                        let w = (1.0 / (d + EPS)) / wsum;
                        for (o, &f) in out.iter_mut().zip(sources.feature(candidates[slot])) {
                            *o += w * f;
                        }
                    }
                }
                counters.writes += 1;
                for slot in 0..k {
                    neighbors.push(candidates[best[slot.min(best.len() - 1)].1]);
                }
            },
            |_| {},
        );
        (features, neighbors, counters, reuse)
    });

    let mut out = BlockInterpolationResult {
        features: Vec::new(),
        target_indices: Vec::new(),
        neighbor_indices: Vec::new(),
        k,
        channels,
        counters: OpCounters::new(),
        critical_path: OpCounters::new(),
        reuse: ReuseStats::default(),
    };
    for (b, (features, neighbors, counters, reuse)) in results.into_iter().enumerate() {
        out.counters.merge(&counters);
        if counters.distance_evals >= out.critical_path.distance_evals {
            out.critical_path = counters;
        }
        out.reuse.merge(&reuse);
        out.features.extend_from_slice(&features);
        // The targets are exactly the block's points, borrowed from the
        // partition instead of cloned per block.
        out.target_indices.extend_from_slice(&partition.blocks[b].indices);
        out.neighbor_indices.extend_from_slice(&neighbors);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bppo::{block_fps, BppoConfig};
    use crate::fractal::Fractal;
    use fractalcloud_pointcloud::generate::{scene_cloud, SceneConfig};
    use fractalcloud_pointcloud::metrics::feature_rmse;
    use fractalcloud_pointcloud::ops::interpolate_features;
    use fractalcloud_pointcloud::Point3;

    /// Builds cloud, partition, sampled sources (with a smooth feature
    /// field f = [x+y, z]) and the per-block source rows.
    fn setup(
        n: usize,
        th: usize,
        seed: u64,
    ) -> (PointCloud, Partition, PointCloud, Vec<Vec<usize>>) {
        let cloud = scene_cloud(&SceneConfig::default(), n, seed);
        let part = Fractal::with_threshold(th).build(&cloud).unwrap().partition;
        let fps = block_fps(&cloud, &part, 0.25, &BppoConfig::sequential()).unwrap();
        // Sampled cloud with smooth features.
        let pts: Vec<Point3> = fps.indices.iter().map(|&i| cloud.point(i)).collect();
        let feats: Vec<f32> = pts.iter().flat_map(|p| [p.x + p.y, p.z]).collect();
        let sources = PointCloud::from_points_features(pts, feats, 2).unwrap();
        // Source rows per block: consecutive ranges of the concatenation.
        let mut rows = Vec::with_capacity(fps.per_block.len());
        let mut cursor = 0usize;
        for b in &fps.per_block {
            rows.push((cursor..cursor + b.len()).collect());
            cursor += b.len();
        }
        (cloud, part, sources, rows)
    }

    #[test]
    fn bwi_shape_and_order() {
        let (cloud, part, sources, rows) = setup(2048, 256, 1);
        let r = block_interpolate(&cloud, &part, &sources, &rows, 3, &BppoConfig::sequential())
            .unwrap();
        assert_eq!(r.features.len(), 2048 * 2);
        assert_eq!(r.target_indices.len(), 2048);
        // Targets are exactly the partition's points in block order.
        let expected: Vec<usize> =
            part.blocks.iter().flat_map(|b| b.indices.iter().copied()).collect();
        assert_eq!(r.target_indices, expected);
    }

    #[test]
    fn bwi_close_to_global_interpolation() {
        let (cloud, part, sources, rows) = setup(2048, 256, 2);
        let block = block_interpolate(&cloud, &part, &sources, &rows, 3, &BppoConfig::sequential())
            .unwrap();
        let targets: Vec<Point3> = block.target_indices.iter().map(|&i| cloud.point(i)).collect();
        let global = interpolate_features(&sources, &targets, 3).unwrap();
        let rmse = feature_rmse(&global.features, &block.features);
        // Features span several metres of x+y; sub-0.1 RMSE means the local
        // search found (nearly) the same neighbors.
        assert!(rmse < 0.1, "rmse {rmse}");
    }

    #[test]
    fn bwi_smooth_field_is_recovered() {
        let (cloud, part, sources, rows) = setup(4096, 256, 3);
        let r = block_interpolate(&cloud, &part, &sources, &rows, 3, &BppoConfig::sequential())
            .unwrap();
        // Interpolated f0 ≈ x+y of the target itself (smooth field, dense
        // samples): check mean absolute error.
        let mut mae = 0.0f64;
        for (row, &ti) in r.target_indices.iter().enumerate() {
            let p = cloud.point(ti);
            mae += ((r.features[row * 2] - (p.x + p.y)).abs()) as f64;
        }
        mae /= r.target_indices.len() as f64;
        assert!(mae < 0.25, "mae {mae}");
    }

    #[test]
    fn bwi_parallel_equals_sequential() {
        let (cloud, part, sources, rows) = setup(1024, 128, 4);
        let par =
            block_interpolate(&cloud, &part, &sources, &rows, 3, &BppoConfig::default()).unwrap();
        let seq = block_interpolate(&cloud, &part, &sources, &rows, 3, &BppoConfig::sequential())
            .unwrap();
        assert_eq!(par.features, seq.features);
    }

    #[test]
    fn bwi_validates_parameters() {
        let (cloud, part, sources, rows) = setup(512, 128, 5);
        assert!(
            block_interpolate(&cloud, &part, &sources, &rows, 0, &BppoConfig::default()).is_err()
        );
        let bare = fractalcloud_pointcloud::generate::uniform_cube(10, 0);
        assert!(block_interpolate(&cloud, &part, &bare, &rows, 3, &BppoConfig::default()).is_err());
        let wrong: Vec<Vec<usize>> = vec![Vec::new()];
        assert!(
            block_interpolate(&cloud, &part, &sources, &wrong, 3, &BppoConfig::default()).is_err()
        );
    }

    #[test]
    fn bwi_empty_search_space_falls_back_globally() {
        // Zero samples in some blocks: rows lists empty for all but one.
        let (cloud, part, sources, _) = setup(512, 64, 6);
        let mut rows: Vec<Vec<usize>> = vec![Vec::new(); part.blocks.len()];
        rows[0] = (0..sources.len()).collect();
        let r = block_interpolate(&cloud, &part, &sources, &rows, 3, &BppoConfig::sequential())
            .unwrap();
        assert_eq!(r.target_indices.len(), 512);
        assert!(r.features.iter().all(|f| f.is_finite()));
    }

    #[test]
    fn bwi_reuse_scales_with_block_population() {
        let (cloud, part, sources, rows) = setup(2048, 256, 7);
        let r = block_interpolate(&cloud, &part, &sources, &rows, 3, &BppoConfig::sequential())
            .unwrap();
        // ~256 targets per block sharing one candidate load.
        assert!(r.reuse.reduction_factor() > 50.0, "reuse {}", r.reuse.reduction_factor());
    }
}

//! Retained scalar reference implementation of block-wise FPS.
//!
//! This is the seed's original per-point formulation: it materializes a
//! [`Point3`](fractalcloud_pointcloud::Point3) per candidate, bumps
//! counters inside the inner loop, and walks the
//! [`WindowCheck`](crate::WindowCheck) lowest-one detector candidate by
//! candidate. It is kept as the equivalence and performance baseline for
//! the chunked SoA path in [`sampling`](crate::bppo::sampling): property
//! tests assert identical sampled indices and counters, and
//! `perf_snapshot` / the criterion benches measure the kernel path against
//! this one.

use crate::bppo::{block_sample_counts, BlockFpsResult, BppoConfig};
use crate::window::WindowCheck;
use fractalcloud_pointcloud::ops::OpCounters;
use fractalcloud_pointcloud::partition::Partition;
use fractalcloud_pointcloud::{Error, PointCloud, Result};

/// Scalar block-wise FPS; see [`block_fps`](crate::block_fps).
///
/// Blocks are always processed sequentially (this is a single-thread
/// baseline); `config.window_check` selects the same two counter models as
/// the optimized path.
///
/// # Errors
///
/// Same contract as the optimized operation.
pub fn block_fps(
    cloud: &PointCloud,
    partition: &Partition,
    rate: f64,
    config: &BppoConfig,
) -> Result<BlockFpsResult> {
    if cloud.is_empty() {
        return Err(Error::EmptyCloud);
    }
    if !(rate > 0.0 && rate <= 1.0) {
        return Err(Error::InvalidParameter {
            name: "rate",
            message: format!("sampling rate must be in (0, 1], got {rate}"),
        });
    }
    let sizes: Vec<usize> = partition.blocks.iter().map(|b| b.len()).collect();
    let counts = block_sample_counts(&sizes, rate);

    let mut indices = Vec::new();
    let mut per_block = Vec::with_capacity(partition.blocks.len());
    let mut counters = OpCounters::new();
    let mut critical_path = OpCounters::new();
    for (b, block) in partition.blocks.iter().enumerate() {
        let (block_indices, c) =
            fps_in_block_scalar(cloud, &block.indices, counts[b], config.window_check);
        counters.merge(&c);
        if c.distance_evals >= critical_path.distance_evals {
            critical_path = c;
        }
        indices.extend_from_slice(&block_indices);
        per_block.push(block_indices);
    }
    Ok(BlockFpsResult { indices, per_block, counters, critical_path })
}

/// The seed's scalar per-block FPS inner loop, per-element counters and
/// window-check iteration included.
fn fps_in_block_scalar(
    cloud: &PointCloud,
    block: &[usize],
    m: usize,
    window_check: bool,
) -> (Vec<usize>, OpCounters) {
    let n = block.len();
    let mut counters = OpCounters::new();
    if m == 0 || n == 0 {
        return (Vec::new(), counters);
    }
    let m = m.min(n);

    let mut dist = vec![f32::INFINITY; n];
    let mut wc = WindowCheck::new(n);
    let mut selected = Vec::with_capacity(m);

    let mut current = 0usize;
    selected.push(block[current]);
    wc.mark_sampled(current);
    counters.writes += 1;

    for _ in 1..m {
        let latest = cloud.point(block[current]);
        let mut best = None;
        let mut best_d = f32::NEG_INFINITY;
        if window_check {
            let mut iter_pos = 0usize;
            while let Some(i) = wc.next_valid(iter_pos) {
                iter_pos = i + 1;
                counters.coord_reads += 1;
                let d = cloud.point(block[i]).distance_sq(latest);
                counters.distance_evals += 1;
                counters.comparisons += 2;
                if d < dist[i] {
                    dist[i] = d;
                }
                if dist[i] > best_d {
                    best_d = dist[i];
                    best = Some(i);
                }
            }
            // Skip accounting: a scan without window-check would visit all
            // n candidates; the LOD visited only the valid ones.
            counters.skipped += (n - wc.valid_count()) as u64;
        } else {
            for i in 0..n {
                counters.coord_reads += 1;
                let d = cloud.point(block[i]).distance_sq(latest);
                counters.distance_evals += 1;
                counters.comparisons += 2;
                if !wc.is_valid(i) {
                    continue; // sampled points stay but can't win
                }
                if d < dist[i] {
                    dist[i] = d;
                }
                if dist[i] > best_d {
                    best_d = dist[i];
                    best = Some(i);
                }
            }
        }
        let Some(best) = best else { break };
        current = best;
        selected.push(block[current]);
        wc.mark_sampled(current);
        counters.writes += 1;
    }
    (selected, counters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bppo::block_fps as kernel_block_fps;
    use crate::fractal::Fractal;
    use fractalcloud_pointcloud::generate::{scene_cloud, SceneConfig};

    #[test]
    fn scalar_reference_matches_kernel_path() {
        let cloud = scene_cloud(&SceneConfig::default(), 4096, 3);
        let part = Fractal::with_threshold(256).build(&cloud).unwrap().partition;
        for cfg in [
            BppoConfig::sequential(),
            BppoConfig { window_check: false, ..BppoConfig::sequential() },
        ] {
            let scalar = block_fps(&cloud, &part, 0.25, &cfg).unwrap();
            let kernel = kernel_block_fps(&cloud, &part, 0.25, &cfg).unwrap();
            assert_eq!(scalar.indices, kernel.indices);
            assert_eq!(scalar.per_block, kernel.per_block);
            assert_eq!(scalar.counters, kernel.counters);
            assert_eq!(scalar.critical_path, kernel.critical_path);
        }
    }
}

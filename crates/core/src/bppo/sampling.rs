//! Block-wise sampling (BWS): farthest point sampling decomposed per block.

use crate::bppo::{for_each_block, BppoConfig};
use fractalcloud_pointcloud::kernels;
use fractalcloud_pointcloud::ops::OpCounters;
use fractalcloud_pointcloud::partition::Partition;
use fractalcloud_pointcloud::{Error, PointCloud, Result};

/// Output of [`block_fps`].
#[derive(Debug, Clone, PartialEq)]
pub struct BlockFpsResult {
    /// Sampled point indices (into the original cloud), concatenated in
    /// block order — the aggregation step of §IV-B.
    pub indices: Vec<usize>,
    /// Sampled indices per block (same values as `indices`, grouped).
    pub per_block: Vec<Vec<usize>>,
    /// Aggregated work counters; `skipped` holds the window-check savings.
    pub counters: OpCounters,
    /// Work of the *largest single block* — the critical path when blocks
    /// execute in parallel on multiple RSPUs.
    pub critical_path: OpCounters,
}

/// Computes per-block sample counts for a fixed sampling `rate`, with
/// largest-remainder correction so the counts sum to `round(total × rate)`.
///
/// The fixed rate (instead of per-block predictors) is the paper's
/// simplification: Fractal already balances blocks, so a single rate
/// preserves the distribution (§IV-B, Block-Wise Sampling).
///
/// # Panics
///
/// Panics if `rate` is not within `0.0..=1.0`.
pub fn block_sample_counts(block_sizes: &[usize], rate: f64) -> Vec<usize> {
    assert!((0.0..=1.0).contains(&rate), "rate must be in [0,1], got {rate}");
    let total: usize = block_sizes.iter().sum();
    let target = (total as f64 * rate).round() as usize;
    // Ideal share per block, floor + remainders.
    let mut counts: Vec<usize> = Vec::with_capacity(block_sizes.len());
    let mut rems: Vec<(f64, usize)> = Vec::with_capacity(block_sizes.len());
    let mut assigned = 0usize;
    for (b, &s) in block_sizes.iter().enumerate() {
        let ideal = s as f64 * rate;
        let fl = ideal.floor() as usize;
        let fl = fl.min(s);
        counts.push(fl);
        assigned += fl;
        rems.push((ideal - fl as f64, b));
    }
    // Distribute the remainder to blocks with the largest fractional part
    // (ties broken by block order for determinism).
    rems.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
    let mut deficit = target.saturating_sub(assigned);
    for &(_, b) in rems.iter().cycle().take(rems.len() * 2) {
        if deficit == 0 {
            break;
        }
        if counts[b] < block_sizes[b] {
            counts[b] += 1;
            deficit -= 1;
        }
    }
    counts
}

/// Equal-count sample allocation: every block contributes the same number
/// of samples (clamped to its population, remainder spread round-robin).
///
/// This is what space-uniform designs such as PNNPU do in hardware — fixed
/// per-block workloads for regular DRAM access — and it is exactly why they
/// lose accuracy on skewed clouds: dense cells are under-sampled and sparse
/// cells over-sampled. Used by the PNNPU baseline model; Fractal uses the
/// fixed *rate* of [`block_sample_counts`] instead (§IV-B).
pub fn equal_sample_counts(block_sizes: &[usize], target: usize) -> Vec<usize> {
    if block_sizes.is_empty() {
        return Vec::new();
    }
    let per = target / block_sizes.len();
    let mut counts: Vec<usize> = block_sizes.iter().map(|&s| per.min(s)).collect();
    let mut assigned: usize = counts.iter().sum();
    // Round-robin the remainder (and any clamped deficit) over blocks that
    // still have capacity.
    let mut made_progress = true;
    while assigned < target && made_progress {
        made_progress = false;
        for (b, &s) in block_sizes.iter().enumerate() {
            if assigned == target {
                break;
            }
            if counts[b] < s {
                counts[b] += 1;
                assigned += 1;
                made_progress = true;
            }
        }
    }
    counts
}

/// Block-wise farthest point sampling (§IV-B): FPS runs independently inside
/// every block (the search space is the block, never the whole cloud), and
/// the per-block results are concatenated in block (DFT) order.
///
/// With `config.window_check`, already-sampled points are skipped by the
/// [`WindowCheck`] lowest-one detector instead of being re-scanned, and the
/// skipped visits are recorded in `counters.skipped`.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] if `rate` is outside `(0, 1]`, or
/// [`Error::EmptyCloud`] for an empty cloud.
///
/// # Examples
///
/// ```
/// use fractalcloud_core::{block_fps, BppoConfig, Fractal};
/// use fractalcloud_pointcloud::generate::uniform_cube;
///
/// let cloud = uniform_cube(1024, 1);
/// let part = Fractal::with_threshold(128).build(&cloud)?.partition;
/// let fps = block_fps(&cloud, &part, 0.25, &BppoConfig::default())?;
/// assert_eq!(fps.indices.len(), 256);
/// # Ok::<(), fractalcloud_pointcloud::Error>(())
/// ```
pub fn block_fps(
    cloud: &PointCloud,
    partition: &Partition,
    rate: f64,
    config: &BppoConfig,
) -> Result<BlockFpsResult> {
    if cloud.is_empty() {
        return Err(Error::EmptyCloud);
    }
    if !(rate > 0.0 && rate <= 1.0) {
        return Err(Error::InvalidParameter {
            name: "rate",
            message: format!("sampling rate must be in (0, 1], got {rate}"),
        });
    }
    let sizes: Vec<usize> = partition.blocks.iter().map(|b| b.len()).collect();
    let counts = block_sample_counts(&sizes, rate);
    block_fps_with_counts(cloud, partition, &counts, config)
}

/// Block-wise FPS with an explicit per-block sample budget (the
/// allocation-policy-agnostic core of [`block_fps`]).
///
/// # Errors
///
/// Returns [`Error::ShapeMismatch`] if `counts` does not match the block
/// count, or [`Error::EmptyCloud`] for an empty cloud.
pub fn block_fps_with_counts(
    cloud: &PointCloud,
    partition: &Partition,
    counts: &[usize],
    config: &BppoConfig,
) -> Result<BlockFpsResult> {
    if cloud.is_empty() {
        return Err(Error::EmptyCloud);
    }
    if counts.len() != partition.blocks.len() {
        return Err(Error::ShapeMismatch {
            expected: partition.blocks.len(),
            actual: counts.len(),
        });
    }
    let results = for_each_block(partition.blocks.len(), config.parallel, |b| {
        fps_block_task(cloud, &partition.blocks[b].indices, counts[b], config.window_check)
    });
    Ok(assemble_block_fps(results))
}

/// Reassembles per-block FPS task outputs (in block order) into a
/// [`BlockFpsResult`] — the aggregation half of [`block_fps_with_counts`],
/// exposed so a serving layer can scatter [`fps_block_task`] calls across
/// the blocks of *many* frames and still assemble each frame's result
/// bit-identically to a per-frame run (the two paths share this code).
pub fn assemble_block_fps(results: Vec<(Vec<usize>, OpCounters)>) -> BlockFpsResult {
    let mut indices = Vec::new();
    let mut per_block = Vec::with_capacity(results.len());
    let mut counters = OpCounters::new();
    let mut critical_path = OpCounters::new();
    for (block_indices, c) in results {
        counters.merge(&c);
        if c.distance_evals >= critical_path.distance_evals {
            critical_path = c;
        }
        indices.extend_from_slice(&block_indices);
        per_block.push(block_indices);
    }
    BlockFpsResult { indices, per_block, counters, critical_path }
}

/// FPS restricted to `block` (global indices), selecting `m` points —
/// the independent unit of work [`block_fps_with_counts`] fans out per
/// block, public so batching layers can flatten block tasks across frames
/// (`(frame, block)`-tagged work lists) and reassemble with
/// [`assemble_block_fps`]. Returns global indices plus work counters.
///
/// The block's coordinates are gathered into local SoA buffers once — the
/// software analogue of loading the block into SRAM — and every iteration
/// then runs the fused [`kernels::fps_relax_argmax`] scan over them, on
/// whichever kernel backend dispatch selected (scalar, chunked SoA, or
/// AVX2 — the results are bit-identical across backends).
/// Already-sampled candidates are pinned to `-∞` in the running-distance
/// array, which excludes them from the argmax exactly as the RSPU's
/// window-check mask excludes them from the scan: the selected indices are
/// identical with and without the mask.
///
/// Counters are accumulated analytically per scan and model the *hardware*
/// work, matching the seed's per-element accounting exactly: with the
/// window check, iteration `s` (with `s` points already sampled) visits the
/// `n − s` valid candidates and skips `s`; without it, all `n` candidates
/// are visited. Two comparisons (relax + argmax) per visited candidate.
pub fn fps_block_task(
    cloud: &PointCloud,
    block: &[usize],
    m: usize,
    window_check: bool,
) -> (Vec<usize>, OpCounters) {
    let n = block.len();
    let mut counters = OpCounters::new();
    if m == 0 || n == 0 {
        return (Vec::new(), counters);
    }
    let m = m.min(n);

    // Local SoA gather: one block load, reused by every scan (§V-C).
    let (mut bx, mut by, mut bz) = (Vec::new(), Vec::new(), Vec::new());
    kernels::gather_coords(cloud.xs(), cloud.ys(), cloud.zs(), block, &mut bx, &mut by, &mut bz);

    let mut dist = vec![f32::INFINITY; n];
    let mut selected = Vec::with_capacity(m);

    // Deterministic start: the block's first point in layout order (the
    // hardware uses the first streamed point; randomness is irrelevant to
    // FPS quality for n >> 1).
    let mut current = 0usize;
    selected.push(block[current]);
    dist[current] = f32::NEG_INFINITY; // pinned: sampled points never win
    counters.writes += 1;

    for sampled in 1..m {
        let q = [bx[current], by[current], bz[current]];
        current = kernels::fps_relax_argmax(&bx, &by, &bz, q, &mut dist);
        selected.push(block[current]);
        dist[current] = f32::NEG_INFINITY;
        counters.writes += 1;

        // Analytic per-scan counters (hardware work model).
        let visited = if window_check { (n - sampled) as u64 } else { n as u64 };
        counters.coord_reads += visited;
        counters.distance_evals += visited;
        counters.comparisons += 2 * visited;
        if window_check {
            counters.skipped += sampled as u64;
        }
    }
    (selected, counters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fractal::Fractal;
    use fractalcloud_pointcloud::generate::{scene_cloud, uniform_cube, SceneConfig};
    use fractalcloud_pointcloud::metrics::{covering_radius, mean_sample_distance};
    use fractalcloud_pointcloud::ops::farthest_point_sample;

    fn setup(n: usize, th: usize, seed: u64) -> (PointCloud, Partition) {
        let cloud = scene_cloud(&SceneConfig::default(), n, seed);
        let part = Fractal::with_threshold(th).build(&cloud).unwrap().partition;
        (cloud, part)
    }

    #[test]
    fn sample_counts_sum_to_target() {
        let counts = block_sample_counts(&[100, 50, 25, 25], 0.25);
        assert_eq!(counts.iter().sum::<usize>(), 50);
        // Fixed rate: each block ≈ size/4.
        assert_eq!(counts[0], 25);
    }

    #[test]
    fn sample_counts_never_exceed_block_size() {
        let counts = block_sample_counts(&[2, 3, 1000], 0.9);
        for (c, s) in counts.iter().zip([2usize, 3, 1000]) {
            assert!(*c <= s);
        }
    }

    #[test]
    fn sample_counts_handle_extreme_rates() {
        assert_eq!(block_sample_counts(&[10, 10], 1.0), vec![10, 10]);
        let zero = block_sample_counts(&[10, 10], 0.0);
        assert_eq!(zero.iter().sum::<usize>(), 0);
    }

    #[test]
    fn block_fps_returns_exact_total() {
        let (cloud, part) = setup(4096, 256, 1);
        let r = block_fps(&cloud, &part, 0.25, &BppoConfig::default()).unwrap();
        assert_eq!(r.indices.len(), 1024);
    }

    #[test]
    fn block_fps_indices_unique_and_within_blocks() {
        let (cloud, part) = setup(2048, 128, 2);
        let r = block_fps(&cloud, &part, 0.5, &BppoConfig::default()).unwrap();
        let mut sorted = r.indices.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), r.indices.len(), "duplicate samples");
        // Each per-block sample must come from that block.
        for (b, samples) in r.per_block.iter().enumerate() {
            for s in samples {
                assert!(part.blocks[b].indices.contains(s));
            }
        }
    }

    #[test]
    fn block_fps_parallel_equals_sequential() {
        let (cloud, part) = setup(4096, 256, 3);
        let par = block_fps(&cloud, &part, 0.25, &BppoConfig::default()).unwrap();
        let seq = block_fps(&cloud, &part, 0.25, &BppoConfig::sequential()).unwrap();
        assert_eq!(par.indices, seq.indices);
        assert_eq!(par.counters, seq.counters);
    }

    #[test]
    fn window_check_reduces_distance_evals() {
        let (cloud, part) = setup(2048, 256, 4);
        let with = block_fps(&cloud, &part, 0.5, &BppoConfig::default()).unwrap();
        let without = block_fps(
            &cloud,
            &part,
            0.5,
            &BppoConfig { window_check: false, ..BppoConfig::default() },
        )
        .unwrap();
        assert_eq!(with.indices, without.indices, "skip must not change results");
        assert!(
            with.counters.distance_evals < without.counters.distance_evals,
            "window check should skip sampled candidates: {} vs {}",
            with.counters.distance_evals,
            without.counters.distance_evals
        );
    }

    #[test]
    fn block_fps_work_is_subquadratic_vs_global() {
        let (cloud, part) = setup(4096, 256, 5);
        let block = block_fps(&cloud, &part, 0.25, &BppoConfig::default()).unwrap();
        let global = farthest_point_sample(&cloud, 1024, 0).unwrap();
        assert!(
            block.counters.distance_evals * 4 < global.counters.distance_evals,
            "block FPS {} should be ≥4× cheaper than global {}",
            block.counters.distance_evals,
            global.counters.distance_evals
        );
    }

    #[test]
    fn block_fps_coverage_close_to_global() {
        // §VI-B: block-wise sampling keeps accuracy because coverage stays
        // near-global. Check covering radius within 2× and mean distance
        // within 25%.
        let (cloud, part) = setup(4096, 256, 5);
        let block = block_fps(&cloud, &part, 0.25, &BppoConfig::default()).unwrap();
        let global = farthest_point_sample(&cloud, block.indices.len(), 0).unwrap();
        let cr_ratio =
            covering_radius(&cloud, &block.indices) / covering_radius(&cloud, &global.indices);
        let md_ratio = mean_sample_distance(&cloud, &block.indices)
            / mean_sample_distance(&cloud, &global.indices);
        assert!(cr_ratio < 2.0, "covering ratio {cr_ratio}");
        assert!(md_ratio < 1.25, "mean-distance ratio {md_ratio}");
    }

    #[test]
    fn critical_path_is_max_block_work() {
        let (cloud, part) = setup(2048, 128, 7);
        let r = block_fps(&cloud, &part, 0.25, &BppoConfig::default()).unwrap();
        assert!(r.critical_path.distance_evals <= r.counters.distance_evals);
        assert!(r.critical_path.distance_evals > 0);
    }

    #[test]
    fn invalid_rate_errors() {
        let (cloud, part) = setup(256, 64, 8);
        assert!(block_fps(&cloud, &part, 0.0, &BppoConfig::default()).is_err());
        assert!(block_fps(&cloud, &part, 1.5, &BppoConfig::default()).is_err());
    }

    #[test]
    fn single_block_equals_global_fps() {
        // th ≥ n: one block, so block FPS must equal global FPS started at
        // the same point.
        let cloud = uniform_cube(200, 9);
        let part = Fractal::with_threshold(512).build(&cloud).unwrap().partition;
        assert_eq!(part.blocks.len(), 1);
        let block = block_fps(&cloud, &part, 0.25, &BppoConfig::sequential()).unwrap();
        let start = part.blocks[0].indices[0];
        let global = farthest_point_sample(&cloud, 50, start).unwrap();
        assert_eq!(block.indices, global.indices);
    }
}

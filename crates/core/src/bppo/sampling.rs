//! Block-wise sampling (BWS): farthest point sampling decomposed per block.

use crate::bppo::{for_each_block_ws, streaming, BppoConfig};
use crate::workspace::{global_pool, Workspace};
use fractalcloud_pointcloud::kernels;
use fractalcloud_pointcloud::ops::OpCounters;
use fractalcloud_pointcloud::partition::Partition;
use fractalcloud_pointcloud::{Error, PointCloud, Result};

/// Output of [`block_fps`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BlockFpsResult {
    /// Sampled point indices (into the original cloud), concatenated in
    /// block order — the aggregation step of §IV-B.
    pub indices: Vec<usize>,
    /// Sampled indices per block (same values as `indices`, grouped).
    pub per_block: Vec<Vec<usize>>,
    /// Aggregated work counters; `skipped` holds the window-check savings.
    pub counters: OpCounters,
    /// Work of the *largest single block* — the critical path when blocks
    /// execute in parallel on multiple RSPUs.
    pub critical_path: OpCounters,
}

/// Computes per-block sample counts for a fixed sampling `rate`, with
/// largest-remainder correction so the counts sum to `round(total × rate)`.
///
/// The fixed rate (instead of per-block predictors) is the paper's
/// simplification: Fractal already balances blocks, so a single rate
/// preserves the distribution (§IV-B, Block-Wise Sampling).
///
/// # Panics
///
/// Panics if `rate` is not within `0.0..=1.0`.
pub fn block_sample_counts(block_sizes: &[usize], rate: f64) -> Vec<usize> {
    let mut counts = Vec::new();
    let mut rems = Vec::new();
    block_sample_counts_into(block_sizes, rate, &mut counts, &mut rems);
    counts
}

/// [`block_sample_counts`] writing into caller-provided buffers (`counts`
/// is the result, `rems` is largest-remainder scratch) — the
/// allocation-free form the workspace pipeline uses. Both buffers are fully
/// reset; a warmed pair performs no allocation.
///
/// # Panics
///
/// Panics if `rate` is not within `0.0..=1.0`.
pub fn block_sample_counts_into(
    block_sizes: &[usize],
    rate: f64,
    counts: &mut Vec<usize>,
    rems: &mut Vec<(f64, usize)>,
) {
    assert!((0.0..=1.0).contains(&rate), "rate must be in [0,1], got {rate}");
    let total: usize = block_sizes.iter().sum();
    let target = (total as f64 * rate).round() as usize;
    // Ideal share per block, floor + remainders.
    counts.clear();
    rems.clear();
    let mut assigned = 0usize;
    for (b, &s) in block_sizes.iter().enumerate() {
        let ideal = s as f64 * rate;
        let fl = ideal.floor() as usize;
        let fl = fl.min(s);
        counts.push(fl);
        assigned += fl;
        rems.push((ideal - fl as f64, b));
    }
    // Distribute the remainder to blocks with the largest fractional part
    // (ties broken by block order for determinism). The comparator is a
    // total order (block indices are unique), so the unstable sort — which,
    // unlike the stable one, allocates nothing — produces the same order.
    rems.sort_unstable_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
    let mut deficit = target.saturating_sub(assigned);
    for &(_, b) in rems.iter().cycle().take(rems.len() * 2) {
        if deficit == 0 {
            break;
        }
        if counts[b] < block_sizes[b] {
            counts[b] += 1;
            deficit -= 1;
        }
    }
}

/// Equal-count sample allocation: every block contributes the same number
/// of samples (clamped to its population, remainder spread round-robin).
///
/// This is what space-uniform designs such as PNNPU do in hardware — fixed
/// per-block workloads for regular DRAM access — and it is exactly why they
/// lose accuracy on skewed clouds: dense cells are under-sampled and sparse
/// cells over-sampled. Used by the PNNPU baseline model; Fractal uses the
/// fixed *rate* of [`block_sample_counts`] instead (§IV-B).
pub fn equal_sample_counts(block_sizes: &[usize], target: usize) -> Vec<usize> {
    if block_sizes.is_empty() {
        return Vec::new();
    }
    let per = target / block_sizes.len();
    let mut counts: Vec<usize> = block_sizes.iter().map(|&s| per.min(s)).collect();
    let mut assigned: usize = counts.iter().sum();
    // Round-robin the remainder (and any clamped deficit) over blocks that
    // still have capacity.
    let mut made_progress = true;
    while assigned < target && made_progress {
        made_progress = false;
        for (b, &s) in block_sizes.iter().enumerate() {
            if assigned == target {
                break;
            }
            if counts[b] < s {
                counts[b] += 1;
                assigned += 1;
                made_progress = true;
            }
        }
    }
    counts
}

/// Block-wise farthest point sampling (§IV-B): FPS runs independently inside
/// every block (the search space is the block, never the whole cloud), and
/// the per-block results are concatenated in block (DFT) order.
///
/// With `config.window_check`, already-sampled points are skipped by the
/// [`WindowCheck`] lowest-one detector instead of being re-scanned, and the
/// skipped visits are recorded in `counters.skipped`.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] if `rate` is outside `(0, 1]`, or
/// [`Error::EmptyCloud`] for an empty cloud.
///
/// # Examples
///
/// ```
/// use fractalcloud_core::{block_fps, BppoConfig, Fractal};
/// use fractalcloud_pointcloud::generate::uniform_cube;
///
/// let cloud = uniform_cube(1024, 1);
/// let part = Fractal::with_threshold(128).build(&cloud)?.partition;
/// let fps = block_fps(&cloud, &part, 0.25, &BppoConfig::default())?;
/// assert_eq!(fps.indices.len(), 256);
/// # Ok::<(), fractalcloud_pointcloud::Error>(())
/// ```
pub fn block_fps(
    cloud: &PointCloud,
    partition: &Partition,
    rate: f64,
    config: &BppoConfig,
) -> Result<BlockFpsResult> {
    if cloud.is_empty() {
        return Err(Error::EmptyCloud);
    }
    if !(rate > 0.0 && rate <= 1.0) {
        return Err(Error::InvalidParameter {
            name: "rate",
            message: format!("sampling rate must be in (0, 1], got {rate}"),
        });
    }
    let sizes: Vec<usize> = partition.blocks.iter().map(|b| b.len()).collect();
    let counts = block_sample_counts(&sizes, rate);
    block_fps_with_counts(cloud, partition, &counts, config)
}

/// Block-wise FPS with an explicit per-block sample budget (the
/// allocation-policy-agnostic core of [`block_fps`]).
///
/// # Errors
///
/// Returns [`Error::ShapeMismatch`] if `counts` does not match the block
/// count, or [`Error::EmptyCloud`] for an empty cloud.
pub fn block_fps_with_counts(
    cloud: &PointCloud,
    partition: &Partition,
    counts: &[usize],
    config: &BppoConfig,
) -> Result<BlockFpsResult> {
    let mut ws = global_pool().checkout();
    let mut out = BlockFpsResult::default();
    block_fps_with_counts_into(cloud, partition, counts, config, &mut ws, &mut out)?;
    Ok(out)
}

/// [`block_fps_with_counts`] running inside a caller-provided [`Workspace`]
/// and refilling a caller-provided result — the allocation-free steady
/// state of the sampling stage. `out` is fully reset (its buffers,
/// including the recycled `per_block` rows, keep their capacity), so a
/// dirty result from any earlier frame yields bit-identical output.
///
/// When the effective thread budget allows real parallelism, blocks fan
/// out with one pooled workspace per lane instead (trading a few result
/// allocations for cores); results are bit-identical either way.
///
/// # Errors
///
/// As [`block_fps_with_counts`].
pub fn block_fps_with_counts_into(
    cloud: &PointCloud,
    partition: &Partition,
    counts: &[usize],
    config: &BppoConfig,
    ws: &mut Workspace,
    out: &mut BlockFpsResult,
) -> Result<()> {
    if cloud.is_empty() {
        return Err(Error::EmptyCloud);
    }
    if counts.len() != partition.blocks.len() {
        return Err(Error::ShapeMismatch {
            expected: partition.blocks.len(),
            actual: counts.len(),
        });
    }
    let blocks = partition.blocks.len();
    if streaming(config.parallel) {
        // Sequential lane: stream every block through this lane's
        // workspace, assembling in place — no per-block result buffers.
        out.indices.clear();
        out.counters = OpCounters::new();
        out.critical_path = OpCounters::new();
        for (b, &count) in counts.iter().enumerate() {
            let row = recycled_row(&mut out.per_block, b);
            let c = fps_block_task_into(
                cloud,
                &partition.blocks[b].indices,
                count,
                config.window_check,
                ws,
                row,
            );
            out.counters.merge(&c);
            if c.distance_evals >= out.critical_path.distance_evals {
                out.critical_path = c;
            }
        }
        out.per_block.truncate(blocks);
        // Concatenate after the rows settle (same values as assembling
        // per-block results in block order).
        for row in &out.per_block {
            out.indices.extend_from_slice(row);
        }
    } else {
        // Parallel lanes: per-lane pooled workspaces, per-block owned
        // results, the shared assembly.
        let results = for_each_block_ws(blocks, true, |b, ws| {
            fps_block_task_ws(
                cloud,
                &partition.blocks[b].indices,
                counts[b],
                config.window_check,
                ws,
            )
        });
        *out = assemble_block_fps(results);
    }
    Ok(())
}

/// Clears and returns row `b` of `rows`, growing the list when needed —
/// rows keep their capacity across frames, so a warmed result performs no
/// allocation while the block count is stable.
fn recycled_row(rows: &mut Vec<Vec<usize>>, b: usize) -> &mut Vec<usize> {
    if b < rows.len() {
        rows[b].clear();
    } else {
        rows.push(Vec::new());
    }
    &mut rows[b]
}

/// Reassembles per-block FPS task outputs (in block order) into a
/// [`BlockFpsResult`] — the aggregation half of [`block_fps_with_counts`],
/// exposed so a serving layer can scatter [`fps_block_task`] calls across
/// the blocks of *many* frames and still assemble each frame's result
/// bit-identically to a per-frame run (the two paths share this code).
pub fn assemble_block_fps(results: Vec<(Vec<usize>, OpCounters)>) -> BlockFpsResult {
    let mut indices = Vec::new();
    let mut per_block = Vec::with_capacity(results.len());
    let mut counters = OpCounters::new();
    let mut critical_path = OpCounters::new();
    for (block_indices, c) in results {
        counters.merge(&c);
        if c.distance_evals >= critical_path.distance_evals {
            critical_path = c;
        }
        indices.extend_from_slice(&block_indices);
        per_block.push(block_indices);
    }
    BlockFpsResult { indices, per_block, counters, critical_path }
}

/// FPS restricted to `block` (global indices), selecting `m` points —
/// the independent unit of work [`block_fps_with_counts`] fans out per
/// block, public so batching layers can flatten block tasks across frames
/// (`(frame, block)`-tagged work lists) and reassemble with
/// [`assemble_block_fps`]. Returns global indices plus work counters.
///
/// The block's coordinates are gathered into local SoA buffers once — the
/// software analogue of loading the block into SRAM — and every iteration
/// then runs the fused [`kernels::fps_relax_argmax`] scan over them, on
/// whichever kernel backend dispatch selected (scalar, chunked SoA, or
/// AVX2 — the results are bit-identical across backends).
/// Already-sampled candidates are pinned to `-∞` in the running-distance
/// array, which excludes them from the argmax exactly as the RSPU's
/// window-check mask excludes them from the scan: the selected indices are
/// identical with and without the mask.
///
/// Counters are accumulated analytically per scan and model the *hardware*
/// work, matching the seed's per-element accounting exactly: with the
/// window check, iteration `s` (with `s` points already sampled) visits the
/// `n − s` valid candidates and skips `s`; without it, all `n` candidates
/// are visited. Two comparisons (relax + argmax) per visited candidate.
pub fn fps_block_task(
    cloud: &PointCloud,
    block: &[usize],
    m: usize,
    window_check: bool,
) -> (Vec<usize>, OpCounters) {
    let mut ws = global_pool().checkout();
    fps_block_task_ws(cloud, block, m, window_check, &mut ws)
}

/// [`fps_block_task`] on a caller-provided [`Workspace`] (per-lane scratch
/// for batching layers); the selected indices are still an owned result.
pub fn fps_block_task_ws(
    cloud: &PointCloud,
    block: &[usize],
    m: usize,
    window_check: bool,
    ws: &mut Workspace,
) -> (Vec<usize>, OpCounters) {
    let mut selected = Vec::new();
    let counters = fps_block_task_into(cloud, block, m, window_check, ws, &mut selected);
    (selected, counters)
}

/// The allocation-free core of [`fps_block_task`]: block coordinates and
/// the running-distance array live in `ws`, and the selected indices are
/// *appended* to `selected` (callers clear or recycle the row). A warmed
/// workspace + row performs no heap allocation.
pub fn fps_block_task_into(
    cloud: &PointCloud,
    block: &[usize],
    m: usize,
    window_check: bool,
    ws: &mut Workspace,
    selected: &mut Vec<usize>,
) -> OpCounters {
    let n = block.len();
    // Counters come from the shared closed-form model
    // ([`OpCounters::block_fps_model`]) so prefix/LOD views can report
    // bit-identical work without re-running the scans.
    let counters = OpCounters::block_fps_model(n, m, window_check);
    if m == 0 || n == 0 {
        return counters;
    }
    let m = m.min(n);

    // Local SoA gather: one block load, reused by every scan (§V-C).
    kernels::gather_coords(
        cloud.xs(),
        cloud.ys(),
        cloud.zs(),
        block,
        &mut ws.sx,
        &mut ws.sy,
        &mut ws.sz,
    );
    let (bx, by, bz) = (&ws.sx[..], &ws.sy[..], &ws.sz[..]);

    ws.dist.clear();
    ws.dist.resize(n, f32::INFINITY);
    let dist = &mut ws.dist[..];
    selected.reserve(m);

    // Deterministic start: the block's first point in layout order (the
    // hardware uses the first streamed point; randomness is irrelevant to
    // FPS quality for n >> 1).
    let mut current = 0usize;
    selected.push(block[current]);
    dist[current] = f32::NEG_INFINITY; // pinned: sampled points never win

    for _sampled in 1..m {
        let q = [bx[current], by[current], bz[current]];
        current = kernels::fps_relax_argmax(bx, by, bz, q, dist);
        selected.push(block[current]);
        dist[current] = f32::NEG_INFINITY;
    }
    counters
}

/// Block-wise *ball-pinned* FPS: like [`block_fps`], but every selected
/// sample additionally *pins* all block points within `pin_radius` of it —
/// they are excluded from future selection in the same fused kernel scan
/// ([`kernels::fps_relax_argmax_pin`], one pass instead of
/// distance-then-mask, bit-identical across backends). A block stops early
/// once every point is pinned, so blocks may contribute fewer than their
/// budgeted samples.
///
/// The selected set is a Poisson-disk-style cover: samples are pairwise
/// farther than `pin_radius` apart, and when a block exhausts early, every
/// unselected point lies within `pin_radius` of a sample. This is the
/// sampling mode a serving layer uses for guaranteed-coverage
/// downsampling at a density cap.
///
/// Counters model the fused hardware pass: every scan visits all `n` block
/// candidates with one distance evaluation and *three* comparisons (relax,
/// pin, argmax) each.
///
/// # Errors
///
/// Returns [`Error::EmptyCloud`] for an empty cloud, or
/// [`Error::InvalidParameter`] for a rate outside `(0, 1]` or a
/// non-positive (or NaN) `pin_radius`.
pub fn block_fps_pinned(
    cloud: &PointCloud,
    partition: &Partition,
    rate: f64,
    pin_radius: f32,
    config: &BppoConfig,
) -> Result<BlockFpsResult> {
    if cloud.is_empty() {
        return Err(Error::EmptyCloud);
    }
    if !(rate > 0.0 && rate <= 1.0) {
        return Err(Error::InvalidParameter {
            name: "rate",
            message: format!("sampling rate must be in (0, 1], got {rate}"),
        });
    }
    // `!(pin_radius > 0.0)` deliberately rejects NaN alongside
    // non-positive radii.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if !(pin_radius > 0.0) {
        return Err(Error::InvalidParameter {
            name: "pin_radius",
            message: format!("must be positive, got {pin_radius}"),
        });
    }
    let sizes: Vec<usize> = partition.blocks.iter().map(|b| b.len()).collect();
    let counts = block_sample_counts(&sizes, rate);
    let r_sq = pin_radius * pin_radius;
    let results = for_each_block_ws(partition.blocks.len(), config.parallel, |b, ws| {
        let mut selected = Vec::new();
        let counters = fps_block_task_pinned_into(
            cloud,
            &partition.blocks[b].indices,
            counts[b],
            r_sq,
            ws,
            &mut selected,
        );
        (selected, counters)
    });
    Ok(assemble_block_fps(results))
}

/// One block's share of [`block_fps_pinned`]: appends up to `m` samples to
/// `selected`, stopping early when every candidate is pinned. `r_sq` is the
/// squared pinning radius.
pub fn fps_block_task_pinned_into(
    cloud: &PointCloud,
    block: &[usize],
    m: usize,
    r_sq: f32,
    ws: &mut Workspace,
    selected: &mut Vec<usize>,
) -> OpCounters {
    let n = block.len();
    let mut counters = OpCounters::new();
    if m == 0 || n == 0 {
        return counters;
    }
    let m = m.min(n);

    kernels::gather_coords(
        cloud.xs(),
        cloud.ys(),
        cloud.zs(),
        block,
        &mut ws.sx,
        &mut ws.sy,
        &mut ws.sz,
    );
    let (bx, by, bz) = (&ws.sx[..], &ws.sy[..], &ws.sz[..]);
    ws.dist.clear();
    ws.dist.resize(n, f32::INFINITY);
    let dist = &mut ws.dist[..];
    selected.reserve(m);

    let mut current = 0usize;
    selected.push(block[current]);
    dist[current] = f32::NEG_INFINITY;
    counters.writes += 1;

    for _ in 1..m {
        let q = [bx[current], by[current], bz[current]];
        // One fused scan: relax + pin (<= r²) + argmax.
        current = kernels::fps_relax_argmax_pin(bx, by, bz, q, r_sq, dist);
        counters.coord_reads += n as u64;
        counters.distance_evals += n as u64;
        counters.comparisons += 3 * n as u64;
        if dist[current] == f32::NEG_INFINITY {
            // Every candidate is pinned: the block is fully covered.
            break;
        }
        selected.push(block[current]);
        dist[current] = f32::NEG_INFINITY;
        counters.writes += 1;
    }
    counters
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fractal::Fractal;
    use fractalcloud_pointcloud::generate::{scene_cloud, uniform_cube, SceneConfig};
    use fractalcloud_pointcloud::metrics::{covering_radius, mean_sample_distance};
    use fractalcloud_pointcloud::ops::farthest_point_sample;

    fn setup(n: usize, th: usize, seed: u64) -> (PointCloud, Partition) {
        let cloud = scene_cloud(&SceneConfig::default(), n, seed);
        let part = Fractal::with_threshold(th).build(&cloud).unwrap().partition;
        (cloud, part)
    }

    #[test]
    fn sample_counts_sum_to_target() {
        let counts = block_sample_counts(&[100, 50, 25, 25], 0.25);
        assert_eq!(counts.iter().sum::<usize>(), 50);
        // Fixed rate: each block ≈ size/4.
        assert_eq!(counts[0], 25);
    }

    #[test]
    fn sample_counts_never_exceed_block_size() {
        let counts = block_sample_counts(&[2, 3, 1000], 0.9);
        for (c, s) in counts.iter().zip([2usize, 3, 1000]) {
            assert!(*c <= s);
        }
    }

    #[test]
    fn sample_counts_handle_extreme_rates() {
        assert_eq!(block_sample_counts(&[10, 10], 1.0), vec![10, 10]);
        let zero = block_sample_counts(&[10, 10], 0.0);
        assert_eq!(zero.iter().sum::<usize>(), 0);
    }

    #[test]
    fn block_fps_returns_exact_total() {
        let (cloud, part) = setup(4096, 256, 1);
        let r = block_fps(&cloud, &part, 0.25, &BppoConfig::default()).unwrap();
        assert_eq!(r.indices.len(), 1024);
    }

    #[test]
    fn block_fps_indices_unique_and_within_blocks() {
        let (cloud, part) = setup(2048, 128, 2);
        let r = block_fps(&cloud, &part, 0.5, &BppoConfig::default()).unwrap();
        let mut sorted = r.indices.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), r.indices.len(), "duplicate samples");
        // Each per-block sample must come from that block.
        for (b, samples) in r.per_block.iter().enumerate() {
            for s in samples {
                assert!(part.blocks[b].indices.contains(s));
            }
        }
    }

    #[test]
    fn block_fps_parallel_equals_sequential() {
        let (cloud, part) = setup(4096, 256, 3);
        let par = block_fps(&cloud, &part, 0.25, &BppoConfig::default()).unwrap();
        let seq = block_fps(&cloud, &part, 0.25, &BppoConfig::sequential()).unwrap();
        assert_eq!(par.indices, seq.indices);
        assert_eq!(par.counters, seq.counters);
    }

    #[test]
    fn window_check_reduces_distance_evals() {
        let (cloud, part) = setup(2048, 256, 4);
        let with = block_fps(&cloud, &part, 0.5, &BppoConfig::default()).unwrap();
        let without = block_fps(
            &cloud,
            &part,
            0.5,
            &BppoConfig { window_check: false, ..BppoConfig::default() },
        )
        .unwrap();
        assert_eq!(with.indices, without.indices, "skip must not change results");
        assert!(
            with.counters.distance_evals < without.counters.distance_evals,
            "window check should skip sampled candidates: {} vs {}",
            with.counters.distance_evals,
            without.counters.distance_evals
        );
    }

    #[test]
    fn block_fps_work_is_subquadratic_vs_global() {
        let (cloud, part) = setup(4096, 256, 5);
        let block = block_fps(&cloud, &part, 0.25, &BppoConfig::default()).unwrap();
        let global = farthest_point_sample(&cloud, 1024, 0).unwrap();
        assert!(
            block.counters.distance_evals * 4 < global.counters.distance_evals,
            "block FPS {} should be ≥4× cheaper than global {}",
            block.counters.distance_evals,
            global.counters.distance_evals
        );
    }

    #[test]
    fn block_fps_coverage_close_to_global() {
        // §VI-B: block-wise sampling keeps accuracy because coverage stays
        // near-global. Check covering radius within 2× and mean distance
        // within 25%.
        let (cloud, part) = setup(4096, 256, 5);
        let block = block_fps(&cloud, &part, 0.25, &BppoConfig::default()).unwrap();
        let global = farthest_point_sample(&cloud, block.indices.len(), 0).unwrap();
        let cr_ratio =
            covering_radius(&cloud, &block.indices) / covering_radius(&cloud, &global.indices);
        let md_ratio = mean_sample_distance(&cloud, &block.indices)
            / mean_sample_distance(&cloud, &global.indices);
        assert!(cr_ratio < 2.0, "covering ratio {cr_ratio}");
        assert!(md_ratio < 1.25, "mean-distance ratio {md_ratio}");
    }

    #[test]
    fn critical_path_is_max_block_work() {
        let (cloud, part) = setup(2048, 128, 7);
        let r = block_fps(&cloud, &part, 0.25, &BppoConfig::default()).unwrap();
        assert!(r.critical_path.distance_evals <= r.counters.distance_evals);
        assert!(r.critical_path.distance_evals > 0);
    }

    #[test]
    fn invalid_rate_errors() {
        let (cloud, part) = setup(256, 64, 8);
        assert!(block_fps(&cloud, &part, 0.0, &BppoConfig::default()).is_err());
        assert!(block_fps(&cloud, &part, 1.5, &BppoConfig::default()).is_err());
    }

    #[test]
    fn pinned_fps_samples_are_pairwise_farther_than_the_pin_radius() {
        let (cloud, part) = setup(2048, 256, 11);
        let radius = 0.35f32;
        let r = block_fps_pinned(&cloud, &part, 1.0, radius, &BppoConfig::sequential()).unwrap();
        assert!(!r.indices.is_empty());
        for samples in &r.per_block {
            for (i, &a) in samples.iter().enumerate() {
                for &b in &samples[i + 1..] {
                    let d = cloud.point(a).distance(cloud.point(b));
                    assert!(d > radius, "samples {a},{b} only {d} apart (pin radius {radius})");
                }
            }
        }
    }

    #[test]
    fn pinned_fps_at_full_rate_covers_every_block_point() {
        // rate 1.0: blocks stop only when exhausted, so every unselected
        // point must lie within the pin radius of a selected sample of its
        // own block.
        let (cloud, part) = setup(1024, 128, 12);
        let radius = 0.4f32;
        let r = block_fps_pinned(&cloud, &part, 1.0, radius, &BppoConfig::sequential()).unwrap();
        for (b, samples) in r.per_block.iter().enumerate() {
            for &p in &part.blocks[b].indices {
                if samples.contains(&p) {
                    continue;
                }
                let covered = samples
                    .iter()
                    .any(|&s| cloud.point(p).distance_sq(cloud.point(s)) <= radius * radius);
                assert!(covered, "point {p} of block {b} is neither selected nor covered");
            }
        }
    }

    #[test]
    fn pinned_fps_with_tiny_radius_matches_plain_block_fps() {
        // A radius far below the minimum point spacing never pins anything
        // beyond the selected samples themselves, so the pinned driver must
        // reproduce plain block FPS indices exactly.
        let (cloud, part) = setup(1024, 128, 13);
        let plain = block_fps(&cloud, &part, 0.25, &BppoConfig::sequential()).unwrap();
        let pinned =
            block_fps_pinned(&cloud, &part, 0.25, 1e-12, &BppoConfig::sequential()).unwrap();
        assert_eq!(pinned.indices, plain.indices);
        assert_eq!(pinned.per_block, plain.per_block);
    }

    #[test]
    fn pinned_fps_is_bit_identical_across_backends_and_scheduling() {
        use fractalcloud_pointcloud::kernels::{self, Backend};
        let (cloud, part) = setup(2048, 128, 14);
        let reference =
            block_fps_pinned(&cloud, &part, 0.5, 0.3, &BppoConfig::sequential()).unwrap();
        let par = block_fps_pinned(&cloud, &part, 0.5, 0.3, &BppoConfig::default()).unwrap();
        assert_eq!(par, reference, "scheduling must not change pinned samples");
        for backend in Backend::ALL {
            if !backend.is_available() {
                continue;
            }
            let got = kernels::with_backend(backend, || {
                block_fps_pinned(&cloud, &part, 0.5, 0.3, &BppoConfig::sequential()).unwrap()
            });
            assert_eq!(got, reference, "backend {} diverged", backend.name());
        }
    }

    #[test]
    fn pinned_fps_validates_parameters() {
        let (cloud, part) = setup(256, 64, 15);
        let cfg = BppoConfig::default();
        assert!(block_fps_pinned(&cloud, &part, 0.0, 0.3, &cfg).is_err());
        assert!(block_fps_pinned(&cloud, &part, 0.25, 0.0, &cfg).is_err());
        assert!(block_fps_pinned(&cloud, &part, 0.25, -1.0, &cfg).is_err());
        assert!(block_fps_pinned(&cloud, &part, 0.25, f32::NAN, &cfg).is_err());
        assert!(block_fps_pinned(&PointCloud::new(), &part, 0.25, 0.3, &cfg).is_err());
    }

    #[test]
    fn single_block_equals_global_fps() {
        // th ≥ n: one block, so block FPS must equal global FPS started at
        // the same point.
        let cloud = uniform_cube(200, 9);
        let part = Fractal::with_threshold(512).build(&cloud).unwrap().partition;
        assert_eq!(part.blocks.len(), 1);
        let block = block_fps(&cloud, &part, 0.25, &BppoConfig::sequential()).unwrap();
        let start = part.blocks[0].indices[0];
        let global = farthest_point_sample(&cloud, 50, start).unwrap();
        assert_eq!(block.indices, global.indices);
    }
}

//! Block-wise gathering (BWGa): feature retrieval with locality accounting.

use crate::bppo::{for_each_block_ws, BppoConfig};
use fractalcloud_pointcloud::ops::OpCounters;
use fractalcloud_pointcloud::partition::Partition;
use fractalcloud_pointcloud::{Error, PointCloud, Result};

/// Locality classification of gather accesses (§IV-B, Block-Wise Gathering):
/// with Fractal, a block's gather touches only its search-space blocks, all
/// of which fit on-chip; conventional gathering touches arbitrary addresses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct GatherLocality {
    /// Accesses resolved inside the block's own points.
    pub own_block: u64,
    /// Accesses resolved in the parent search space (on-chip after the
    /// streamed parent load).
    pub parent_space: u64,
    /// Accesses outside the search space (require a DRAM round trip in the
    /// conventional design; zero by construction for block-wise operations).
    pub remote: u64,
}

impl GatherLocality {
    /// Fraction of accesses served on-chip (own block + parent space).
    pub fn on_chip_fraction(&self) -> f64 {
        let total = self.own_block + self.parent_space + self.remote;
        if total == 0 {
            1.0
        } else {
            (self.own_block + self.parent_space) as f64 / total as f64
        }
    }
}

/// Output of [`block_gather`].
#[derive(Debug, Clone, PartialEq)]
pub struct BlockGatherResult {
    /// Row-major `(rows × num) × channels` gathered features, rows in block
    /// order.
    pub data: Vec<f32>,
    /// Channels per gathered entry.
    pub channels: usize,
    /// Neighbor slots per row.
    pub num: usize,
    /// Work counters.
    pub counters: OpCounters,
    /// Locality classification of every access.
    pub locality: GatherLocality,
}

/// Block-wise gathering: resolves `indices_per_block[b]` (row-major
/// `rows_b × num` neighbor indices, as produced by block-wise grouping for
/// block `b`) against the featured cloud, classifying each access by
/// locality.
///
/// Functionally identical to global
/// [`gather_features`](fractalcloud_pointcloud::ops::gather_features) on the
/// concatenated index list; the value of the block-wise form is the locality
/// structure, which the hardware model converts into on-chip traffic.
///
/// # Errors
///
/// Returns [`Error::ShapeMismatch`] if the block list length mismatches or
/// any block's indices are not a multiple of `num`;
/// [`Error::IndexOutOfBounds`] for invalid indices.
pub fn block_gather(
    cloud: &PointCloud,
    partition: &Partition,
    indices_per_block: &[Vec<usize>],
    num: usize,
    config: &BppoConfig,
) -> Result<BlockGatherResult> {
    if indices_per_block.len() != partition.blocks.len() {
        return Err(Error::ShapeMismatch {
            expected: partition.blocks.len(),
            actual: indices_per_block.len(),
        });
    }
    if num == 0 {
        return Err(Error::InvalidParameter { name: "num", message: "must be at least 1".into() });
    }
    for (b, idx) in indices_per_block.iter().enumerate() {
        if idx.len() % num != 0 {
            return Err(Error::InvalidParameter {
                name: "indices_per_block",
                message: format!("block {b}: {} indices not a multiple of num={num}", idx.len()),
            });
        }
        for &i in idx {
            if i >= cloud.len() {
                return Err(Error::IndexOutOfBounds { index: i, len: cloud.len() });
            }
        }
    }

    let channels = cloud.channels();
    let results = for_each_block_ws(partition.blocks.len(), config.parallel, |b, ws| {
        // Membership scratch lives in the lane's workspace: sorted index
        // runs + binary search classify exactly like the tree sets they
        // replace, without per-block allocation.
        ws.own.clear();
        ws.own.extend_from_slice(&partition.blocks[b].indices);
        ws.own.sort_unstable();
        ws.space.clear();
        for &g in &partition.blocks[b].parent_group {
            ws.space.extend_from_slice(&partition.blocks[g].indices);
        }
        ws.space.sort_unstable();
        let mut counters = OpCounters::new();
        let mut locality = GatherLocality::default();
        let mut data = Vec::with_capacity(indices_per_block[b].len() * channels);
        for &i in &indices_per_block[b] {
            counters.feature_reads += 1;
            if ws.own.binary_search(&i).is_ok() {
                locality.own_block += 1;
            } else if ws.space.binary_search(&i).is_ok() {
                locality.parent_space += 1;
            } else {
                locality.remote += 1;
            }
            data.extend_from_slice(cloud.feature(i));
            counters.writes += 1;
        }
        (data, counters, locality)
    });

    let mut out = BlockGatherResult {
        data: Vec::new(),
        channels,
        num,
        counters: OpCounters::new(),
        locality: GatherLocality::default(),
    };
    for (data, counters, locality) in results {
        out.counters.merge(&counters);
        out.locality.own_block += locality.own_block;
        out.locality.parent_space += locality.parent_space;
        out.locality.remote += locality.remote;
        out.data.extend_from_slice(&data);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bppo::{block_ball_query, block_fps, BppoConfig};
    use crate::fractal::Fractal;
    use fractalcloud_pointcloud::generate::{scene_cloud, with_random_features, SceneConfig};
    use fractalcloud_pointcloud::ops::gather_features;

    fn setup(n: usize, th: usize, seed: u64) -> (PointCloud, Partition, Vec<Vec<usize>>) {
        let cloud = with_random_features(scene_cloud(&SceneConfig::default(), n, seed), 8, seed);
        let part = Fractal::with_threshold(th).build(&cloud).unwrap().partition;
        let fps = block_fps(&cloud, &part, 0.25, &BppoConfig::sequential()).unwrap();
        let bq = block_ball_query(&cloud, &part, &fps.per_block, 0.6, 8, &BppoConfig::sequential())
            .unwrap();
        // Split the flat neighbor tensor back into per-block lists.
        let mut per_block = Vec::with_capacity(part.blocks.len());
        let mut row = 0usize;
        for centers in &fps.per_block {
            let rows = centers.len();
            per_block.push(bq.indices[row * 8..(row + rows) * 8].to_vec());
            row += rows;
        }
        (cloud, part, per_block)
    }

    #[test]
    fn bwga_matches_global_gather() {
        let (cloud, part, idx) = setup(1024, 128, 1);
        let flat: Vec<usize> = idx.iter().flatten().copied().collect();
        let global = gather_features(&cloud, &flat, 8).unwrap();
        let block = block_gather(&cloud, &part, &idx, 8, &BppoConfig::sequential()).unwrap();
        assert_eq!(global.data, block.data);
    }

    #[test]
    fn bwga_all_accesses_on_chip_for_block_wise_indices() {
        // Indices produced by block-wise grouping are inside the search
        // space by construction → zero remote accesses.
        let (cloud, part, idx) = setup(2048, 256, 2);
        let r = block_gather(&cloud, &part, &idx, 8, &BppoConfig::sequential()).unwrap();
        assert_eq!(r.locality.remote, 0);
        assert_eq!(r.locality.on_chip_fraction(), 1.0);
        assert!(r.locality.own_block > 0);
    }

    #[test]
    fn bwga_detects_remote_accesses_for_global_indices() {
        // Hand a block indices from the far end of the cloud: those are
        // remote (what conventional gathering does all the time).
        let (cloud, part, _) = setup(1024, 128, 3);
        let mut idx: Vec<Vec<usize>> = vec![Vec::new(); part.blocks.len()];
        let mut row: Vec<usize> = part.blocks.last().unwrap().indices
            [..8.min(part.blocks.last().unwrap().len())]
            .to_vec();
        while row.len() < 8 {
            row.push(row[0]);
        }
        idx[0] = row;
        let r = block_gather(&cloud, &part, &idx, 8, &BppoConfig::sequential()).unwrap();
        assert!(r.locality.remote > 0, "far-block accesses must classify remote");
        assert!(r.locality.on_chip_fraction() < 1.0);
    }

    #[test]
    fn bwga_parallel_equals_sequential() {
        let (cloud, part, idx) = setup(1024, 128, 4);
        let par = block_gather(&cloud, &part, &idx, 8, &BppoConfig::default()).unwrap();
        let seq = block_gather(&cloud, &part, &idx, 8, &BppoConfig::sequential()).unwrap();
        assert_eq!(par.data, seq.data);
        assert_eq!(par.locality, seq.locality);
    }

    #[test]
    fn bwga_validates_shapes() {
        let (cloud, part, mut idx) = setup(512, 128, 5);
        assert!(block_gather(&cloud, &part, &idx[..1], 8, &BppoConfig::default()).is_err());
        idx[0].push(0); // no longer a multiple of num
        assert!(block_gather(&cloud, &part, &idx, 8, &BppoConfig::default()).is_err());
        let bad = vec![vec![cloud.len()]; part.blocks.len()];
        assert!(block_gather(&cloud, &part, &bad, 1, &BppoConfig::default()).is_err());
    }

    #[test]
    fn on_chip_fraction_of_empty_is_one() {
        assert_eq!(GatherLocality::default().on_chip_fraction(), 1.0);
    }
}

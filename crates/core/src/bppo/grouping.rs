//! Block-wise grouping (BWG): ball query with block-local search spaces.

use crate::bppo::{for_each_block_ws, streaming, BppoConfig, ReuseStats};
use crate::workspace::{global_pool, Workspace};
use fractalcloud_pointcloud::kernels;
use fractalcloud_pointcloud::ops::OpCounters;
use fractalcloud_pointcloud::partition::Partition;
use fractalcloud_pointcloud::{Error, PointCloud, Result};

/// Output of [`block_ball_query`] and
/// [`block_interpolate`](crate::block_interpolate)'s neighbor stage.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BlockNeighborResult {
    /// `centers × num` neighbor indices into the original cloud, row-major.
    /// Center rows appear in block order, preserving each block's center
    /// order.
    pub indices: Vec<usize>,
    /// The center global indices in the same order as the rows.
    pub center_indices: Vec<usize>,
    /// In-radius (or true-KNN) hits per center before padding.
    pub found: Vec<usize>,
    /// Neighbor slots per center.
    pub num: usize,
    /// Aggregated work counters.
    pub counters: OpCounters,
    /// Critical-path (largest single block) work.
    pub critical_path: OpCounters,
    /// Intra-block data-reuse statistics (§V-C).
    pub reuse: ReuseStats,
}

/// Block-wise ball query (§IV-B): for every block, its centers search only
/// the block's *parent search space* (`Block::parent_group`) instead of the
/// whole cloud.
///
/// `centers_per_block[b]` holds the global indices of block `b`'s center
/// points (typically the block's block-FPS samples). Neighbor slots follow
/// the same nearest-`num`-within-radius semantics as the global
/// [`ball_query`](fractalcloud_pointcloud::ops::ball_query); candidates are
/// streamed in search-space layout order (own block first at depth ≤ 1, else
/// the parent's blocks in DFT order), mirroring the hardware's streamed
/// block reads.
///
/// # Errors
///
/// Returns [`Error::ShapeMismatch`] if `centers_per_block` does not match
/// the partition's block count, or parameter errors for `radius`/`num`.
pub fn block_ball_query(
    cloud: &PointCloud,
    partition: &Partition,
    centers_per_block: &[Vec<usize>],
    radius: f32,
    num: usize,
    config: &BppoConfig,
) -> Result<BlockNeighborResult> {
    let mut ws = global_pool().checkout();
    let mut out = BlockNeighborResult::default();
    block_ball_query_into(
        cloud,
        partition,
        centers_per_block,
        radius,
        num,
        config,
        &mut ws,
        &mut out,
    )?;
    Ok(out)
}

/// [`block_ball_query`] running inside a caller-provided [`Workspace`] and
/// refilling a caller-provided result — the allocation-free steady state
/// of the grouping stage. On a sequential lane every block streams through
/// the workspace and appends directly to `out`; with real parallelism
/// blocks fan out with one pooled workspace per lane. Results are
/// bit-identical either way (and to a fresh allocation).
///
/// # Errors
///
/// As [`block_ball_query`].
#[allow(clippy::too_many_arguments)]
pub fn block_ball_query_into(
    cloud: &PointCloud,
    partition: &Partition,
    centers_per_block: &[Vec<usize>],
    radius: f32,
    num: usize,
    config: &BppoConfig,
    ws: &mut Workspace,
    out: &mut BlockNeighborResult,
) -> Result<()> {
    if centers_per_block.len() != partition.blocks.len() {
        return Err(Error::ShapeMismatch {
            expected: partition.blocks.len(),
            actual: centers_per_block.len(),
        });
    }
    // `!(radius > 0.0)` deliberately rejects NaN radii alongside
    // non-positive ones.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if !(radius > 0.0) {
        return Err(Error::InvalidParameter {
            name: "radius",
            message: format!("must be positive, got {radius}"),
        });
    }
    if num == 0 {
        return Err(Error::InvalidParameter { name: "num", message: "must be at least 1".into() });
    }

    let blocks = partition.blocks.len();
    if streaming(config.parallel) {
        out.indices.clear();
        out.center_indices.clear();
        out.found.clear();
        out.num = num;
        out.counters = OpCounters::new();
        out.critical_path = OpCounters::new();
        out.reuse = ReuseStats::default();
        for (b, centers) in centers_per_block.iter().enumerate() {
            let (counters, reuse) = ball_query_block_core(
                cloud,
                partition,
                b,
                centers,
                radius,
                num,
                config.parent_expansion,
                ws,
                &mut out.indices,
                &mut out.center_indices,
                &mut out.found,
            );
            out.counters.merge(&counters);
            if counters.distance_evals >= out.critical_path.distance_evals {
                out.critical_path = counters;
            }
            out.reuse.merge(&reuse);
        }
    } else {
        let results = for_each_block_ws(blocks, true, |b, ws| {
            ball_query_block_task_ws(
                cloud,
                partition,
                b,
                &centers_per_block[b],
                radius,
                num,
                config.parent_expansion,
                ws,
            )
        });
        *out = assemble_block_neighbors(num, results);
    }
    Ok(())
}

/// One block's share of a [`block_ball_query`] run, ready for reassembly
/// with [`assemble_block_neighbors`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BlockNeighborTask {
    /// `centers × num` neighbor indices for this block, row-major.
    pub indices: Vec<usize>,
    /// The block's center global indices, one per row.
    pub center_indices: Vec<usize>,
    /// In-radius hits per center before padding.
    pub found: Vec<usize>,
    /// This block's work counters.
    pub counters: OpCounters,
    /// This block's data-reuse statistics.
    pub reuse: ReuseStats,
}

/// Ball query for a single block — the independent unit of work
/// [`block_ball_query`] fans out per block, public so batching layers can
/// flatten block tasks across frames. Parameters are assumed validated
/// (positive `radius`, `num ≥ 1`, `b` in range), exactly as inside
/// [`block_ball_query`] after its own checks.
#[allow(clippy::too_many_arguments)]
pub fn ball_query_block_task(
    cloud: &PointCloud,
    partition: &Partition,
    b: usize,
    centers: &[usize],
    radius: f32,
    num: usize,
    parent_expansion: bool,
) -> BlockNeighborTask {
    let mut ws = global_pool().checkout();
    ball_query_block_task_ws(cloud, partition, b, centers, radius, num, parent_expansion, &mut ws)
}

/// [`ball_query_block_task`] on a caller-provided [`Workspace`] (per-lane
/// scratch for batching layers); the task is still an owned result.
#[allow(clippy::too_many_arguments)]
pub fn ball_query_block_task_ws(
    cloud: &PointCloud,
    partition: &Partition,
    b: usize,
    centers: &[usize],
    radius: f32,
    num: usize,
    parent_expansion: bool,
    ws: &mut Workspace,
) -> BlockNeighborTask {
    let mut task = BlockNeighborTask::default();
    ball_query_block_task_into(
        cloud,
        partition,
        b,
        centers,
        radius,
        num,
        parent_expansion,
        ws,
        &mut task,
    );
    task
}

/// [`ball_query_block_task`] refilling a caller-provided task in place —
/// the allocation-free per-block form: a warmed `task` + workspace pair
/// performs no heap allocation, and a dirty pair yields bit-identical
/// results to a fresh one.
#[allow(clippy::too_many_arguments)]
pub fn ball_query_block_task_into(
    cloud: &PointCloud,
    partition: &Partition,
    b: usize,
    centers: &[usize],
    radius: f32,
    num: usize,
    parent_expansion: bool,
    ws: &mut Workspace,
    task: &mut BlockNeighborTask,
) {
    task.indices.clear();
    task.center_indices.clear();
    task.found.clear();
    let (counters, reuse) = ball_query_block_core(
        cloud,
        partition,
        b,
        centers,
        radius,
        num,
        parent_expansion,
        ws,
        &mut task.indices,
        &mut task.center_indices,
        &mut task.found,
    );
    task.counters = counters;
    task.reuse = reuse;
}

/// The shared body of every grouping path: runs block `b`'s ball query in
/// `ws` and *appends* the neighbor rows, center indices and per-center hit
/// counts to the provided buffers (so the streaming driver can write
/// straight into the assembled result). Returns this block's counters and
/// reuse statistics.
#[allow(clippy::too_many_arguments)]
fn ball_query_block_core(
    cloud: &PointCloud,
    partition: &Partition,
    b: usize,
    centers: &[usize],
    radius: f32,
    num: usize,
    parent_expansion: bool,
    ws: &mut Workspace,
    indices: &mut Vec<usize>,
    center_indices: &mut Vec<usize>,
    found: &mut Vec<usize>,
) -> (OpCounters, ReuseStats) {
    let r_sq = radius * radius;
    let own_block = [b];
    let space: &[usize] =
        if parent_expansion { &partition.blocks[b].parent_group } else { &own_block };
    indices.reserve(centers.len() * num);
    found.reserve(centers.len());
    center_indices.extend_from_slice(centers);

    // Intra-block reuse: the candidate set is loaded on-chip once —
    // gathered into the workspace's local SoA buffers — and shared by
    // every center of this block.
    ws.candidates.clear();
    for &g in space {
        ws.candidates.extend_from_slice(&partition.blocks[g].indices);
    }
    // Counters and reuse statistics come from the shared closed-form model
    // so prefix/LOD views report bit-identical work without re-running the
    // fused scan.
    let (counters, reuse) = ball_query_block_model(ws.candidates.len(), centers.len(), num);

    kernels::gather_coords(
        cloud.xs(),
        cloud.ys(),
        cloud.zs(),
        &ws.candidates,
        &mut ws.sx,
        &mut ws.sy,
        &mut ws.sz,
    );
    // Batched fused scan over the shared local SoA: tiles of
    // QUERY_TILE centers share every candidate chunk load, and the
    // nearest-`num`-within-radius selection keeps the same canonical
    // semantics as the global ball query, so results differ only
    // through the restricted search space.
    ws.queries.clear();
    ws.queries.extend(centers.iter().map(|&ci| [cloud.xs()[ci], cloud.ys()[ci], cloud.zs()[ci]]));
    let candidates = &ws.candidates;
    kernels::ball_select_batch_into(
        kernels::active_backend(),
        &ws.sx,
        &ws.sy,
        &ws.sz,
        &ws.queries,
        r_sq,
        num,
        &mut ws.select,
        |c_row, best, nearest| {
            found.push(best.len());
            let row_start = indices.len();
            indices.extend(best.iter().map(|&(_, slot)| candidates[slot]));
            if best.is_empty() {
                // Fallback: nearest candidate in the search space (never
                // empty: the center's own block is always included), or the
                // center itself in the degenerate no-finite-distance case —
                // the same initial value the scalar formulation uses.
                indices.push(if nearest.1 == usize::MAX {
                    centers[c_row]
                } else {
                    candidates[nearest.1]
                });
            }
            let first = indices[row_start];
            while indices.len() - row_start < num {
                indices.push(first);
            }
        },
    );
    (counters, reuse)
}

/// Closed-form work model for one block's ball query: `candidates` search
/// points shared by `centers` query rows, each padded to `num` slots. The
/// [`OpCounters`] half lives on `OpCounters` itself
/// ([`OpCounters::ball_query_model`]); this wrapper adds the reuse
/// statistics (the candidate set is loaded on-chip once and shared by every
/// center, versus one unshared load per center in the global formulation).
///
/// Both the real kernel driver ([`block_ball_query`] via its block core)
/// and the prefix/LOD slicing views derive their accounting from this one
/// function, so sliced outputs are bit-identical to smaller-budget runs.
pub fn ball_query_block_model(
    candidates: usize,
    centers: usize,
    num: usize,
) -> (OpCounters, ReuseStats) {
    let counters = OpCounters::ball_query_model(candidates, centers, num);
    let reuse = ReuseStats {
        shared_loads: candidates as u64,
        unshared_loads: (candidates * centers.max(1)) as u64,
    };
    (counters, reuse)
}

/// Reassembles per-block ball-query tasks (in block order) into a
/// [`BlockNeighborResult`] — the aggregation half of [`block_ball_query`],
/// shared with cross-frame block-batching layers so both paths produce
/// bit-identical results by construction.
pub fn assemble_block_neighbors(
    num: usize,
    results: Vec<BlockNeighborTask>,
) -> BlockNeighborResult {
    let mut out = BlockNeighborResult {
        indices: Vec::new(),
        center_indices: Vec::new(),
        found: Vec::new(),
        num,
        counters: OpCounters::new(),
        critical_path: OpCounters::new(),
        reuse: ReuseStats::default(),
    };
    for task in results {
        out.counters.merge(&task.counters);
        if task.counters.distance_evals >= out.critical_path.distance_evals {
            out.critical_path = task.counters;
        }
        out.reuse.merge(&task.reuse);
        out.indices.extend_from_slice(&task.indices);
        out.center_indices.extend_from_slice(&task.center_indices);
        out.found.extend_from_slice(&task.found);
    }
    out
}

/// Resolves the search space of block `b`: its `parent_group` when parent
/// expansion is enabled, otherwise the block alone.
pub(crate) fn search_space(partition: &Partition, b: usize, parent_expansion: bool) -> Vec<usize> {
    if parent_expansion {
        partition.blocks[b].parent_group.clone()
    } else {
        vec![b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bppo::{block_fps, BppoConfig};
    use crate::fractal::Fractal;
    use fractalcloud_pointcloud::generate::{scene_cloud, SceneConfig};
    use fractalcloud_pointcloud::metrics::neighbor_recall;
    use fractalcloud_pointcloud::ops::ball_query;
    use fractalcloud_pointcloud::Point3;

    fn setup(n: usize, th: usize, seed: u64) -> (PointCloud, Partition, Vec<Vec<usize>>) {
        let cloud = scene_cloud(&SceneConfig::default(), n, seed);
        let part = Fractal::with_threshold(th).build(&cloud).unwrap().partition;
        let fps = block_fps(&cloud, &part, 0.25, &BppoConfig::sequential()).unwrap();
        (cloud, part, fps.per_block)
    }

    #[test]
    fn bwg_neighbors_come_from_search_space() {
        let (cloud, part, centers) = setup(2048, 128, 1);
        let r =
            block_ball_query(&cloud, &part, &centers, 0.6, 16, &BppoConfig::sequential()).unwrap();
        let mut row = 0usize;
        for (b, c_list) in centers.iter().enumerate() {
            let allowed: std::collections::BTreeSet<usize> = part.blocks[b]
                .parent_group
                .iter()
                .flat_map(|&g| part.blocks[g].indices.iter().copied())
                .collect();
            for _ in c_list {
                for &n in &r.indices[row * 16..(row + 1) * 16] {
                    assert!(allowed.contains(&n), "neighbor {n} outside search space");
                }
                row += 1;
            }
        }
        let _ = cloud;
    }

    #[test]
    fn bwg_respects_radius() {
        let (cloud, part, centers) = setup(2048, 128, 2);
        let radius = 0.5;
        let r = block_ball_query(&cloud, &part, &centers, radius, 8, &BppoConfig::sequential())
            .unwrap();
        for (row, &ci) in r.center_indices.iter().enumerate() {
            let c = cloud.point(ci);
            for (slot, &n) in r.indices[row * 8..(row + 1) * 8].iter().enumerate() {
                if slot < r.found[row] {
                    assert!(cloud.point(n).distance(c) <= radius + 1e-5);
                }
            }
        }
    }

    #[test]
    fn bwg_recall_vs_global_is_high() {
        // §VI-B: extended (parent) search spaces give sufficient candidates;
        // recall against the global ball query should be high at th=256.
        let (cloud, part, centers) = setup(4096, 256, 3);
        let flat: Vec<usize> = centers.iter().flatten().copied().collect();
        let pts: Vec<Point3> = flat.iter().map(|&i| cloud.point(i)).collect();
        let global = ball_query(&cloud, &pts, 0.4, 16).unwrap();
        let block =
            block_ball_query(&cloud, &part, &centers, 0.4, 16, &BppoConfig::sequential()).unwrap();
        let recall = neighbor_recall(&global.indices, &block.indices, 16);
        assert!(recall > 0.85, "recall {recall} too low");
    }

    #[test]
    fn bwg_parent_expansion_improves_recall() {
        let (cloud, part, centers) = setup(4096, 128, 4);
        let flat: Vec<usize> = centers.iter().flatten().copied().collect();
        let pts: Vec<Point3> = flat.iter().map(|&i| cloud.point(i)).collect();
        let global = ball_query(&cloud, &pts, 0.4, 16).unwrap();
        let with =
            block_ball_query(&cloud, &part, &centers, 0.4, 16, &BppoConfig::sequential()).unwrap();
        let without = block_ball_query(
            &cloud,
            &part,
            &centers,
            0.4,
            16,
            &BppoConfig { parent_expansion: false, parallel: false, ..BppoConfig::default() },
        )
        .unwrap();
        let r_with = neighbor_recall(&global.indices, &with.indices, 16);
        let r_without = neighbor_recall(&global.indices, &without.indices, 16);
        assert!(
            r_with >= r_without,
            "parent expansion must not hurt recall: {r_with} vs {r_without}"
        );
    }

    #[test]
    fn bwg_reuse_factor_scales_with_centers() {
        let (cloud, part, centers) = setup(2048, 256, 5);
        let r =
            block_ball_query(&cloud, &part, &centers, 0.4, 16, &BppoConfig::sequential()).unwrap();
        // ~64 centers per 256-point block → reuse factor ≈ centers/block.
        assert!(r.reuse.reduction_factor() > 10.0, "reuse {}", r.reuse.reduction_factor());
    }

    #[test]
    fn bwg_parallel_equals_sequential() {
        let (cloud, part, centers) = setup(2048, 128, 6);
        let par =
            block_ball_query(&cloud, &part, &centers, 0.5, 8, &BppoConfig::default()).unwrap();
        let seq =
            block_ball_query(&cloud, &part, &centers, 0.5, 8, &BppoConfig::sequential()).unwrap();
        assert_eq!(par.indices, seq.indices);
        assert_eq!(par.found, seq.found);
    }

    #[test]
    fn bwg_validates_parameters() {
        let (cloud, part, centers) = setup(512, 128, 7);
        assert!(block_ball_query(&cloud, &part, &centers, -1.0, 8, &BppoConfig::default()).is_err());
        assert!(block_ball_query(&cloud, &part, &centers, 0.5, 0, &BppoConfig::default()).is_err());
        let wrong = vec![Vec::new(); part.blocks.len() + 1];
        assert!(block_ball_query(&cloud, &part, &wrong, 0.5, 8, &BppoConfig::default()).is_err());
    }

    #[test]
    fn bwg_work_much_smaller_than_global() {
        let (cloud, part, centers) = setup(4096, 256, 8);
        let flat: Vec<usize> = centers.iter().flatten().copied().collect();
        let pts: Vec<Point3> = flat.iter().map(|&i| cloud.point(i)).collect();
        // Tiny radius forces the global query to scan everything.
        let global = ball_query(&cloud, &pts, 0.05, 16).unwrap();
        let block =
            block_ball_query(&cloud, &part, &centers, 0.05, 16, &BppoConfig::sequential()).unwrap();
        assert!(
            block.counters.distance_evals * 2 < global.counters.distance_evals,
            "block {} vs global {}",
            block.counters.distance_evals,
            global.counters.distance_evals
        );
    }
}

//! Implicit level-of-detail views over pipeline output.
//!
//! Block-parallel FPS is greedy: a block's selection at step `s` depends
//! only on the `s − 1` points already selected, so the first `c` samples of
//! a block's order are *exactly* what a run budgeted at `c` would select.
//! Ball-query grouping is per-center independent, so a prefix of centers
//! owns a prefix of neighbor rows. Together these make every prefix of a
//! full pipeline run a valid smaller-budget run — the "implicit LOD by
//! point ordering" idea — provided blocks are interleaved by a schedule
//! that is itself prefix-monotone.
//!
//! [`SampleOrder`] is that schedule: a coarse-to-fine global ordering built
//! from the *full* per-block sample counts, in which block `b`'s `j`-th
//! sample (of `c_b`) sorts by the exact rational `j / c_b` (ties to the
//! lower block index). Truncating the schedule at any `k` yields per-block
//! counts that grow monotonically with `k`, which is what makes
//! [`PipelineOutput::prefix`] a pure slicing operation. Note this is *not*
//! the largest-remainder allocator re-run at rate `k/total` — that
//! allocator is not house-monotone (the Alabama paradox), so a budget-`k`
//! run is **defined** as: derive per-block counts from `schedule[..k]`,
//! then run the ordinary kernels at those counts
//! ([`Pipeline::run_with_partition_budget`](crate::Pipeline::run_with_partition_budget)).
//!
//! Counters in sliced views come from the same closed-form models the real
//! kernel drivers use ([`OpCounters::block_fps_model`],
//! [`ball_query_block_model`]), and assembly goes through the same
//! [`assemble_block_fps`] / [`assemble_block_neighbors`] seams, so
//! `prefix(k)` is bit-identical — indices, distances, counters, reuse,
//! critical path — to actually running the pipeline at budget `k`.

use crate::bppo::{assemble_block_fps, assemble_block_neighbors, ball_query_block_model};
use crate::pipeline::PipelineOutput;
use fractalcloud_pointcloud::ops::OpCounters;
use fractalcloud_pointcloud::partition::Partition;

/// The full coarse-to-fine sample ordering of one pipeline run — the
/// quality ordering block-parallel FPS computes and a fixed-budget output
/// would otherwise throw away.
///
/// `schedule[r]` is the block that contributes the sample of global
/// coarse-to-fine rank `r`; block `b`'s samples appear in their FPS
/// selection order. `block_sizes` / `cand_sizes` carry the per-block point
/// and candidate-set populations so sliced views can reconstruct work
/// counters without touching the partition again.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SampleOrder {
    /// Block index per global coarse-to-fine rank (length = total samples).
    pub schedule: Vec<u32>,
    /// Points per leaf block (counter-model input for FPS).
    pub block_sizes: Vec<usize>,
    /// Parent-search-space candidate count per leaf block (counter-model
    /// input for grouping; parent expansion is always on in the pipeline).
    pub cand_sizes: Vec<usize>,
}

impl SampleOrder {
    /// Builds the schedule for `partition` with full per-block sample
    /// budget `counts`.
    pub fn build(partition: &Partition, counts: &[usize]) -> SampleOrder {
        let mut order = SampleOrder::default();
        let mut scratch = Vec::new();
        order.build_into(partition, counts, &mut scratch);
        order
    }

    /// [`SampleOrder::build`] refilling `self` in place with caller-provided
    /// sort scratch — the allocation-free form the workspace pipeline uses
    /// (a warmed order + scratch pair allocates nothing while the block
    /// count is stable).
    pub fn build_into(
        &mut self,
        partition: &Partition,
        counts: &[usize],
        scratch: &mut Vec<(u32, u32, u32)>,
    ) {
        self.block_sizes.clear();
        self.block_sizes.extend(partition.blocks.iter().map(|b| b.indices.len()));
        self.cand_sizes.clear();
        self.cand_sizes.extend(partition.blocks.iter().map(|b| {
            b.parent_group.iter().map(|&g| partition.blocks[g].indices.len()).sum::<usize>()
        }));

        // Interleave blocks by budget fraction: block b's j-th sample (of
        // c_b) carries the exact rational key j/c_b; ascending key order
        // spreads every block proportionally across the schedule, so any
        // prefix holds a balanced coarse approximation. Comparison is the
        // exact u64 cross-multiply (j, c < 2^32, so no overflow and no
        // float rounding at equal fractions); ties go to the lower block
        // index. The comparator is a total order — (j/c, b) pairs are
        // unique — so the allocation-free unstable sort is deterministic.
        scratch.clear();
        for (b, &c) in counts.iter().enumerate() {
            debug_assert!(c <= u32::MAX as usize && b <= u32::MAX as usize);
            for j in 1..=c as u32 {
                scratch.push((j, c as u32, b as u32));
            }
        }
        scratch.sort_unstable_by(|a, b| {
            let left = u64::from(a.0) * u64::from(b.1);
            let right = u64::from(b.0) * u64::from(a.1);
            left.cmp(&right).then(a.2.cmp(&b.2))
        });
        self.schedule.clear();
        self.schedule.extend(scratch.iter().map(|&(_, _, b)| b));
    }

    /// Total samples in the full ordering.
    pub fn len(&self) -> usize {
        self.schedule.len()
    }

    /// Whether the ordering is empty.
    pub fn is_empty(&self) -> bool {
        self.schedule.is_empty()
    }

    /// Per-block sample counts of the first `k` schedule ranks — the
    /// budget a `n_samples = k` run distributes to each block. Monotone in
    /// `k` by construction (each rank only ever adds one sample to one
    /// block), which is the property that makes prefixes sliceable.
    pub fn prefix_counts(&self, k: usize) -> Vec<usize> {
        let mut counts = vec![0usize; self.block_sizes.len()];
        for &b in &self.schedule[..k.min(self.schedule.len())] {
            counts[b as usize] += 1;
        }
        counts
    }

    /// Truncates to the first `k` ranks (the ordering a budget-`k` run
    /// carries). `block_sizes` / `cand_sizes` describe the partition and
    /// are budget-independent.
    pub fn prefix(&self, k: usize) -> SampleOrder {
        SampleOrder {
            schedule: self.schedule[..k.min(self.schedule.len())].to_vec(),
            block_sizes: self.block_sizes.clone(),
            cand_sizes: self.cand_sizes.clone(),
        }
    }
}

/// One block's contribution to a contiguous LOD slice: the refinement
/// samples the block gains between two depths, with their neighbor rows
/// and in-radius hit counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LodSegment {
    /// Leaf block index.
    pub block: usize,
    /// The block's new sampled indices (FPS order continues seamlessly).
    pub sampled: Vec<usize>,
    /// `sampled.len() × num` neighbor indices, row-major.
    pub grouped: Vec<usize>,
    /// In-radius hits per new center before padding.
    pub found: Vec<usize>,
}

/// A contiguous coarse-to-fine slice `(lo, hi]` of a pipeline output — the
/// payload of one streaming refinement chunk. Concatenating slices
/// `(0, k₁], (k₁, k₂], …` per block reproduces
/// [`PipelineOutput::prefix`] at the last depth exactly.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LodSlice {
    /// Slice start depth (exclusive; samples `lo..hi` in schedule rank).
    pub lo: usize,
    /// Slice end depth (inclusive bound of delivered samples).
    pub hi: usize,
    /// Total samples in the full ordering (so consumers know the maximum
    /// refinement depth without a second request).
    pub total: usize,
    /// Neighbor slots per center.
    pub num: usize,
    /// Leaf blocks in the producing partition.
    pub blocks: usize,
    /// Per-block refinement deltas, block order, empty blocks omitted.
    pub segments: Vec<LodSegment>,
}

impl LodSlice {
    /// Samples delivered by this slice.
    pub fn samples(&self) -> usize {
        self.hi - self.lo
    }
}

impl PipelineOutput {
    /// Total samples in the carried ordering (the maximum prefix depth).
    pub fn total_samples(&self) -> usize {
        self.order.len()
    }

    /// The first-`k` view of this output: bit-identical — indices,
    /// counters, critical path, reuse statistics, ordering — to running
    /// the same pipeline with a sample budget of `k`
    /// ([`Pipeline::run_with_partition_budget`](crate::Pipeline::run_with_partition_budget)).
    ///
    /// Pure slicing: per-block sample rows and neighbor rows are prefixes
    /// of the full ones (FPS is greedy, grouping is per-center), work
    /// counters come from the shared closed-form models, and assembly runs
    /// through the same [`assemble_block_fps`] /
    /// [`assemble_block_neighbors`] seams as a real run. `k` beyond the
    /// total clamps.
    ///
    /// # Panics
    ///
    /// Panics if the output carries no ordering (constructed by hand
    /// rather than by a pipeline run).
    pub fn prefix(&self, k: usize) -> PipelineOutput {
        assert_eq!(
            self.order.len(),
            self.sampled.indices.len(),
            "PipelineOutput::prefix needs the ordering a pipeline run carries"
        );
        let k = k.min(self.order.len());
        let counts_k = self.order.prefix_counts(k);
        let num = self.grouped.num;

        let mut sampled_tasks = Vec::with_capacity(counts_k.len());
        let mut grouped_tasks = Vec::with_capacity(counts_k.len());
        let mut row = 0usize; // full-output center-row offset of block b
        for (b, &ck) in counts_k.iter().enumerate() {
            let full = &self.sampled.per_block[b];
            sampled_tasks.push((
                full[..ck].to_vec(),
                OpCounters::block_fps_model(self.order.block_sizes[b], ck, true),
            ));
            let (counters, reuse) = ball_query_block_model(self.order.cand_sizes[b], ck, num);
            grouped_tasks.push(crate::bppo::BlockNeighborTask {
                indices: self.grouped.indices[row * num..(row + ck) * num].to_vec(),
                center_indices: self.grouped.center_indices[row..row + ck].to_vec(),
                found: self.grouped.found[row..row + ck].to_vec(),
                counters,
                reuse,
            });
            row += full.len();
        }

        PipelineOutput {
            sampled: assemble_block_fps(sampled_tasks),
            grouped: assemble_block_neighbors(num, grouped_tasks),
            blocks: self.blocks,
            order: self.order.prefix(k),
        }
    }

    /// The refinement delta between depths `lo` and `hi` (both clamped to
    /// the total; `lo > hi` is treated as empty): per block, the sampled
    /// indices and neighbor rows it gains, in block order. Appending this
    /// slice's segments to the per-block state of [`PipelineOutput::prefix`]`(lo)`
    /// reproduces `prefix(hi)` exactly — the invariant streaming chunks
    /// rely on.
    ///
    /// # Panics
    ///
    /// Panics if the output carries no ordering (see
    /// [`PipelineOutput::prefix`]).
    pub fn slice_level(&self, lo: usize, hi: usize) -> LodSlice {
        assert_eq!(
            self.order.len(),
            self.sampled.indices.len(),
            "PipelineOutput::slice_level needs the ordering a pipeline run carries"
        );
        let total = self.order.len();
        let hi = hi.min(total);
        let lo = lo.min(hi);
        let counts_lo = self.order.prefix_counts(lo);
        let counts_hi = self.order.prefix_counts(hi);
        let num = self.grouped.num;

        let mut segments = Vec::new();
        let mut row = 0usize;
        for (b, full) in self.sampled.per_block.iter().enumerate() {
            let (c0, c1) = (counts_lo[b], counts_hi[b]);
            if c1 > c0 {
                segments.push(LodSegment {
                    block: b,
                    sampled: full[c0..c1].to_vec(),
                    grouped: self.grouped.indices[(row + c0) * num..(row + c1) * num].to_vec(),
                    found: self.grouped.found[row + c0..row + c1].to_vec(),
                });
            }
            row += full.len();
        }
        LodSlice { lo, hi, total, num, blocks: self.blocks, segments }
    }
}

#[cfg(test)]
mod tests {
    use crate::pipeline::{Pipeline, PipelineConfig};
    use fractalcloud_pointcloud::generate::{scene_cloud, SceneConfig};

    #[test]
    fn schedule_is_prefix_monotone_and_complete() {
        let cloud = scene_cloud(&SceneConfig::default(), 4096, 3);
        let pipe = Pipeline::new(PipelineConfig::default()).unwrap();
        let out = pipe.run(&cloud, false).unwrap();
        assert_eq!(out.order.len(), out.sampled.indices.len());
        // Full-depth counts reproduce the per-block row lengths.
        let full = out.order.prefix_counts(out.order.len());
        let lens: Vec<usize> = out.sampled.per_block.iter().map(|r| r.len()).collect();
        assert_eq!(full, lens);
        // Monotone: each rank adds exactly one sample to one block.
        let mut prev = out.order.prefix_counts(0);
        for k in 1..=out.order.len() {
            let cur = out.order.prefix_counts(k);
            let grew: Vec<usize> = (0..prev.len()).filter(|&b| cur[b] != prev[b]).collect();
            assert_eq!(grew.len(), 1);
            assert_eq!(cur[grew[0]], prev[grew[0]] + 1);
            prev = cur;
        }
    }

    #[test]
    fn prefix_at_full_depth_is_identity() {
        let cloud = scene_cloud(&SceneConfig::default(), 2048, 9);
        let pipe = Pipeline::new(PipelineConfig::default()).unwrap();
        let out = pipe.run(&cloud, true).unwrap();
        let view = out.prefix(out.total_samples());
        assert_eq!(view, out);
        // Clamping beyond the total is the same view.
        assert_eq!(out.prefix(usize::MAX), out);
    }

    #[test]
    fn slices_concatenate_to_the_prefix() {
        let cloud = scene_cloud(&SceneConfig::default(), 3000, 17);
        let pipe = Pipeline::new(PipelineConfig::default()).unwrap();
        let out = pipe.run(&cloud, false).unwrap();
        let total = out.total_samples();
        let cuts = [0usize, total / 5, total / 3, total / 2, total];
        for w in cuts.windows(2) {
            let (lo, hi) = (w[0], w[1]);
            let slice = out.slice_level(lo, hi);
            assert_eq!(slice.samples(), hi - lo);
            // Appending each segment to prefix(lo)'s per-block state must
            // reproduce prefix(hi)'s rows.
            let base = out.prefix(lo);
            let target = out.prefix(hi);
            let mut rows = base.sampled.per_block.clone();
            for seg in &slice.segments {
                rows[seg.block].extend_from_slice(&seg.sampled);
            }
            assert_eq!(rows, target.sampled.per_block);
            let delivered: usize = slice.segments.iter().map(|s| s.sampled.len()).sum();
            assert_eq!(delivered, hi - lo);
            for seg in &slice.segments {
                assert_eq!(seg.grouped.len(), seg.sampled.len() * slice.num);
                assert_eq!(seg.found.len(), seg.sampled.len());
            }
        }
    }
}

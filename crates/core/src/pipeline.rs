//! A reusable partition + BPPO pipeline.
//!
//! The building blocks — [`Fractal::build`], [`block_fps`],
//! [`block_ball_query`] — are free functions that rebuild all intermediate
//! state on every call. A serving layer processing a stream of frames wants
//! the opposite: one validated, immutable description of the work
//! ([`PipelineConfig`]), an object that runs it ([`Pipeline`]), and the
//! ability to *reuse* an already-built [`FractalResult`] when the same frame
//! comes back (LRU-cached partitions keyed by frame hash). This module
//! provides exactly that seam; `fractalcloud-serve` is its main consumer,
//! but it is equally convenient for batch scripts.
//!
//! Determinism contract: for a given cloud and config, [`Pipeline::run`] is
//! bit-identical to calling the underlying free functions directly, for
//! every thread budget and every kernel backend — the parallel toggles only
//! affect wall-clock time (the same guarantee the underlying operations
//! make).

use crate::bppo::{
    assemble_block_fps, assemble_block_neighbors, ball_query_block_task, ball_query_block_task_ws,
    block_ball_query_into, block_fps_with_counts_into, block_sample_counts,
    block_sample_counts_into, fps_block_task, fps_block_task_ws, BlockFpsResult,
    BlockNeighborResult, BlockNeighborTask, BppoConfig,
};
use crate::fractal::{Fractal, FractalConfig, FractalResult};
use crate::lod::SampleOrder;
use crate::workspace::{global_pool, Workspace};
use fractalcloud_pointcloud::ops::OpCounters;
use fractalcloud_pointcloud::{Error, PointCloud, Result};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The 64-bit FNV offset basis — the seed for [`fnv1a64`] chains.
pub const FNV1A64_SEED: u64 = 0xcbf2_9ce4_8422_2325;

/// One step of the 64-bit FNV-1a-*style* word fold shared by
/// [`PipelineConfig::compat_key`] and the serving layer's frame hash: xors
/// a full word into the state, then multiplies by the 64-bit FNV prime
/// (`0x100_0000_01b3`). Word-at-a-time rather than the canonical
/// byte-at-a-time fold — four times cheaper on megapoint coordinate
/// streams, with dispersion comfortably beyond what a handful-of-entries
/// cache and batch grouping need.
#[inline]
pub fn fnv1a64(h: u64, word: u64) -> u64 {
    (h ^ word).wrapping_mul(0x100_0000_01b3)
}

/// The frame-processing parameters a pipeline run depends on.
///
/// Two requests with equal configs are *compatible*: they can share a batch
/// (and a cached partition, when the frame bytes also match). Equality is
/// exact — `f32`/`f64` parameters compare bitwise via [`PartialEq`] — and
/// [`PipelineConfig::compat_key`] hashes the same bits for cheap grouping.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Fractal block threshold (`th` in Alg. 1).
    pub threshold: usize,
    /// Block-FPS sampling rate in `(0, 1]`.
    pub sample_rate: f64,
    /// Ball-query radius.
    pub radius: f32,
    /// Neighbor slots per sampled center.
    pub neighbors: usize,
}

impl PipelineConfig {
    /// Creates a config; [`PipelineConfig::validate`] reports bad values.
    pub fn new(
        threshold: usize,
        sample_rate: f64,
        radius: f32,
        neighbors: usize,
    ) -> PipelineConfig {
        PipelineConfig { threshold, sample_rate, radius, neighbors }
    }

    /// Checks every parameter, returning the first violation.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when the threshold is zero, the
    /// sampling rate is outside `(0, 1]`, the radius is not positive (NaN
    /// included), or `neighbors` is zero.
    pub fn validate(&self) -> Result<()> {
        if self.threshold == 0 {
            return Err(Error::InvalidParameter {
                name: "threshold",
                message: "must be at least 1".into(),
            });
        }
        if !(self.sample_rate > 0.0 && self.sample_rate <= 1.0) {
            return Err(Error::InvalidParameter {
                name: "sample_rate",
                message: format!("must be in (0, 1], got {}", self.sample_rate),
            });
        }
        // `!(radius > 0.0)` also rejects NaN.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(self.radius > 0.0) {
            return Err(Error::InvalidParameter {
                name: "radius",
                message: format!("must be positive, got {}", self.radius),
            });
        }
        if self.neighbors == 0 {
            return Err(Error::InvalidParameter {
                name: "neighbors",
                message: "must be at least 1".into(),
            });
        }
        Ok(())
    }

    /// A 64-bit key equal exactly when the configs are equal (the
    /// [`fnv1a64`] word fold over the parameter bits) — what the serving
    /// batcher groups requests by.
    pub fn compat_key(&self) -> u64 {
        let mut h = FNV1A64_SEED;
        for word in [
            self.threshold as u64,
            self.sample_rate.to_bits(),
            u64::from(self.radius.to_bits()),
            self.neighbors as u64,
        ] {
            h = fnv1a64(h, word);
        }
        h
    }
}

impl Default for PipelineConfig {
    /// The paper's segmentation setting: `th = 256`, 1/4 sampling, radius
    /// 0.4 with 16 neighbors (the quickstart parameters).
    fn default() -> PipelineConfig {
        PipelineConfig { threshold: 256, sample_rate: 0.25, radius: 0.4, neighbors: 16 }
    }
}

/// A cooperative cancellation token checked at the pipeline's stage seams.
///
/// Cancellation is *cooperative*: a running stage finishes its current unit
/// of work, and the pipeline returns [`Error::Cancelled`] at the next seam
/// (entry → after sample counts → between sampling and grouping). A token
/// trips either explicitly ([`CancelToken::cancel`], from any thread — all
/// clones share one flag) or implicitly when its optional deadline passes.
/// The serving layer hands each frame a deadline token so a doomed request
/// stops burning its thread budget instead of computing a response nobody
/// is waiting for.
///
/// Output staging passed to a run that returned [`Error::Cancelled`] holds
/// garbage from the aborted stages; reusing the buffers for the next frame
/// is fine (every stage overwrites from scratch), reading them is not.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that only trips on an explicit [`CancelToken::cancel`].
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// A token that trips automatically once `deadline` passes (and still
    /// honours explicit cancellation before then).
    pub fn with_deadline(deadline: Instant) -> CancelToken {
        CancelToken { flag: Arc::new(AtomicBool::new(false)), deadline: Some(deadline) }
    }

    /// Trips the token; every clone observes it.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether the token has tripped (explicitly or by deadline).
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire) || self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Returns [`Error::Cancelled`] when the token has tripped.
    ///
    /// # Errors
    ///
    /// [`Error::Cancelled`] once [`CancelToken::is_cancelled`] is true.
    pub fn check(&self) -> Result<()> {
        if self.is_cancelled() {
            Err(Error::Cancelled)
        } else {
            Ok(())
        }
    }
}

/// Everything one pipeline run produces: block-FPS samples and their
/// ball-query groups.
///
/// `Default` constructs an empty output — the staging form serving layers
/// pool and refill with [`Pipeline::run_with_partition_into`], whose
/// buffers keep their capacity across frames.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PipelineOutput {
    /// Block-wise sampling result (Alg. 2 rows 2–3).
    pub sampled: BlockFpsResult,
    /// Block-wise grouping result for the sampled centers (Alg. 2 rows 5–8).
    pub grouped: BlockNeighborResult,
    /// Number of leaf blocks in the partition that produced the result.
    pub blocks: usize,
    /// The coarse-to-fine quality ordering of the samples — every prefix
    /// of a run is itself a valid smaller-budget run; see
    /// [`PipelineOutput::prefix`] and [`crate::lod`].
    pub order: SampleOrder,
}

/// A validated, reusable partition + BPPO pipeline.
///
/// # Examples
///
/// ```
/// use fractalcloud_core::{Pipeline, PipelineConfig};
/// use fractalcloud_pointcloud::generate::{scene_cloud, SceneConfig};
///
/// let cloud = scene_cloud(&SceneConfig::default(), 4096, 7);
/// let pipe = Pipeline::new(PipelineConfig::default())?;
/// let out = pipe.run(&cloud, true)?;
/// assert_eq!(out.sampled.indices.len(), 1024);
/// assert_eq!(out.grouped.center_indices, out.sampled.indices);
/// # Ok::<(), fractalcloud_pointcloud::Error>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pipeline {
    config: PipelineConfig,
}

impl Pipeline {
    /// Creates a pipeline after validating `config`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] as described by
    /// [`PipelineConfig::validate`].
    pub fn new(config: PipelineConfig) -> Result<Pipeline> {
        config.validate()?;
        Ok(Pipeline { config })
    }

    /// The validated configuration.
    pub fn config(&self) -> PipelineConfig {
        self.config
    }

    /// Builds the Fractal partition for `cloud` (the cacheable half of a
    /// run). `parallel` selects level-synchronous parallel building; the
    /// result is bit-identical either way.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyCloud`] for an empty cloud.
    pub fn partition(&self, cloud: &PointCloud, parallel: bool) -> Result<FractalResult> {
        let mut ws = global_pool().checkout();
        self.partition_ws(cloud, parallel, &mut ws)
    }

    /// [`Pipeline::partition`] with an explicit scratch [`Workspace`]
    /// (see [`Fractal::build_ws`]); results are bit-identical.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyCloud`] for an empty cloud.
    pub fn partition_ws(
        &self,
        cloud: &PointCloud,
        parallel: bool,
        ws: &mut Workspace,
    ) -> Result<FractalResult> {
        let mut fc = FractalConfig::new(self.config.threshold);
        if !parallel {
            fc = fc.sequential();
        }
        let span = fractalcloud_obs::span(fractalcloud_obs::SpanKind::PartitionBuild, 0);
        let built = Fractal::new(fc).build_ws(cloud, ws);
        span.done();
        built
    }

    /// Runs the full pipeline: partition, block FPS, block ball query.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyCloud`] for an empty cloud (parameter errors
    /// were ruled out at construction).
    pub fn run(&self, cloud: &PointCloud, parallel: bool) -> Result<PipelineOutput> {
        let built = self.partition(cloud, parallel)?;
        self.run_with_partition(cloud, &built, parallel)
    }

    /// Runs the BPPO half against an already-built partition — the hot path
    /// for a serving layer whose partition cache hit.
    ///
    /// `built` must come from [`Pipeline::partition`] (or an equal-config
    /// [`Fractal::build`]) over the *same* cloud; this is the caller's
    /// contract, exactly as with the free functions.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyCloud`] for an empty cloud.
    pub fn run_with_partition(
        &self,
        cloud: &PointCloud,
        built: &FractalResult,
        parallel: bool,
    ) -> Result<PipelineOutput> {
        let mut ws = global_pool().checkout();
        let mut out = PipelineOutput::default();
        self.run_with_partition_into(cloud, built, parallel, &mut ws, &mut out)?;
        Ok(out)
    }

    /// The allocation-free form of [`Pipeline::run_with_partition`]: all
    /// scratch lives in `ws` and the result refills `out` in place (its
    /// buffers — including the per-block sample rows — keep their capacity
    /// across frames). A warmed `(ws, out)` pair processes a frame with
    /// zero heap allocation on a sequential lane; output is bit-identical
    /// to a fresh allocation for any prior state of either buffer.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyCloud`] for an empty cloud (parameter errors
    /// were ruled out at construction).
    pub fn run_with_partition_into(
        &self,
        cloud: &PointCloud,
        built: &FractalResult,
        parallel: bool,
        ws: &mut Workspace,
        out: &mut PipelineOutput,
    ) -> Result<()> {
        self.run_into_inner(cloud, built, parallel, ws, out, None)
    }

    /// [`Pipeline::run_with_partition_into`] with a cooperative
    /// [`CancelToken`] checked at the stage seams (entry, after sample
    /// counts, between sampling and grouping), so a frame whose deadline
    /// already passed stops burning its thread budget mid-run.
    ///
    /// After an `Err(Error::Cancelled)` return, `out` holds garbage from
    /// the aborted stages — reuse the buffers, never the contents.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Cancelled`] when `cancel` trips, or
    /// [`Error::EmptyCloud`] for an empty cloud.
    pub fn run_with_partition_into_cancel(
        &self,
        cloud: &PointCloud,
        built: &FractalResult,
        parallel: bool,
        ws: &mut Workspace,
        out: &mut PipelineOutput,
        cancel: &CancelToken,
    ) -> Result<()> {
        self.run_into_inner(cloud, built, parallel, ws, out, Some(cancel))
    }

    fn run_into_inner(
        &self,
        cloud: &PointCloud,
        built: &FractalResult,
        parallel: bool,
        ws: &mut Workspace,
        out: &mut PipelineOutput,
        cancel: Option<&CancelToken>,
    ) -> Result<()> {
        if let Some(c) = cancel {
            c.check()?;
        }
        let bppo = if parallel { BppoConfig::default() } else { BppoConfig::sequential() };
        // Per-block sample counts, staged in the workspace.
        ws.sizes.clear();
        ws.sizes.extend(built.partition.blocks.iter().map(|b| b.len()));
        block_sample_counts_into(&ws.sizes, self.config.sample_rate, &mut ws.counts, &mut ws.rems);
        if let Some(c) = cancel {
            c.check()?;
        }
        // Move the counts out for the duration of the sampling call (the
        // sampler needs the whole workspace mutably); moved back after.
        let counts = std::mem::take(&mut ws.counts);
        // Whole-frame stage spans (aux = u32::MAX distinguishes them from
        // the per-block task spans the fused batching path records).
        let sample_span = fractalcloud_obs::span(fractalcloud_obs::SpanKind::BlockSample, u32::MAX);
        let sampled = block_fps_with_counts_into(
            cloud,
            &built.partition,
            &counts,
            &bppo,
            ws,
            &mut out.sampled,
        );
        sample_span.done();
        ws.counts = counts;
        sampled?;
        if let Some(c) = cancel {
            c.check()?;
        }
        // Retain the coarse-to-fine ordering block FPS just computed: the
        // interleave schedule over the full per-block budgets, staged in
        // the workspace so the warm path stays allocation-free.
        out.order.build_into(&built.partition, &ws.counts, &mut ws.sched);
        let PipelineOutput { sampled, grouped, blocks, order: _ } = out;
        let group_span = fractalcloud_obs::span(fractalcloud_obs::SpanKind::BlockGroup, u32::MAX);
        block_ball_query_into(
            cloud,
            &built.partition,
            &sampled.per_block,
            self.config.radius,
            self.config.neighbors,
            &bppo,
            ws,
            grouped,
        )?;
        group_span.done();
        *blocks = built.partition.blocks.len();
        Ok(())
    }

    // --- Block-task decomposition seam -----------------------------------
    //
    // The BPPO half of a run decomposes into independent per-block tasks:
    // `sample_counts` fixes every block's FPS budget, `sample_block` /
    // `group_block` are the units of work, and `assemble_output` is the
    // aggregation both execution orders share. A serving layer can
    // therefore flatten the union of many frames' blocks into ONE work
    // list (tasks tagged `(frame, block)`), scatter the partial results
    // back per frame, and still produce output bit-identical to
    // [`Pipeline::run_with_partition`] — the assembly code is literally
    // the same. `crates/serve`'s cross-frame block batching is the main
    // consumer; the fixed BPPO feature settings (window check and parent
    // expansion on) match what `run_with_partition` always uses.

    /// Per-block FPS sample counts for `built`'s partition at this
    /// pipeline's sampling rate — the allocation `run_with_partition` uses.
    pub fn sample_counts(&self, built: &FractalResult) -> Vec<usize> {
        let sizes: Vec<usize> = built.partition.blocks.iter().map(|b| b.len()).collect();
        block_sample_counts(&sizes, self.config.sample_rate)
    }

    /// The FPS task of one block: samples `count` points from block
    /// `block` of `built`'s partition. Independent of every other block.
    pub fn sample_block(
        &self,
        cloud: &PointCloud,
        built: &FractalResult,
        block: usize,
        count: usize,
    ) -> (Vec<usize>, OpCounters) {
        fps_block_task(cloud, &built.partition.blocks[block].indices, count, true)
    }

    /// [`Pipeline::sample_block`] on a caller-provided [`Workspace`] — the
    /// form cross-frame batching layers use with per-lane workspaces.
    pub fn sample_block_ws(
        &self,
        cloud: &PointCloud,
        built: &FractalResult,
        block: usize,
        count: usize,
        ws: &mut Workspace,
    ) -> (Vec<usize>, OpCounters) {
        let _span = fractalcloud_obs::span(fractalcloud_obs::SpanKind::BlockSample, block as u32);
        fps_block_task_ws(cloud, &built.partition.blocks[block].indices, count, true, ws)
    }

    /// The ball-query task of one block: groups `centers` (block `block`'s
    /// sampled points) against the block's parent search space.
    pub fn group_block(
        &self,
        cloud: &PointCloud,
        built: &FractalResult,
        block: usize,
        centers: &[usize],
    ) -> BlockNeighborTask {
        ball_query_block_task(
            cloud,
            &built.partition,
            block,
            centers,
            self.config.radius,
            self.config.neighbors,
            true,
        )
    }

    /// [`Pipeline::group_block`] on a caller-provided [`Workspace`] — the
    /// form cross-frame batching layers use with per-lane workspaces.
    pub fn group_block_ws(
        &self,
        cloud: &PointCloud,
        built: &FractalResult,
        block: usize,
        centers: &[usize],
        ws: &mut Workspace,
    ) -> BlockNeighborTask {
        let _span = fractalcloud_obs::span(fractalcloud_obs::SpanKind::BlockGroup, block as u32);
        ball_query_block_task_ws(
            cloud,
            &built.partition,
            block,
            centers,
            self.config.radius,
            self.config.neighbors,
            true,
            ws,
        )
    }

    /// Reassembles per-block task outputs (block order) into the
    /// [`PipelineOutput`] a monolithic [`Pipeline::run_with_partition`]
    /// over the same partition would return — bit-identical, because the
    /// monolithic path runs through this very aggregation.
    pub fn assemble_output(
        &self,
        built: &FractalResult,
        sampled: Vec<(Vec<usize>, OpCounters)>,
        grouped: Vec<BlockNeighborTask>,
    ) -> PipelineOutput {
        // The per-block budgets are recoverable from the task rows (a
        // block's row length IS its budget, counts are clamped to block
        // populations), so the decomposed path carries the same
        // coarse-to-fine ordering as a monolithic run.
        let counts: Vec<usize> = sampled.iter().map(|(row, _)| row.len()).collect();
        PipelineOutput {
            sampled: assemble_block_fps(sampled),
            grouped: assemble_block_neighbors(self.config.neighbors, grouped),
            blocks: built.partition.blocks.len(),
            order: SampleOrder::build(&built.partition, &counts),
        }
    }

    // --- Budget runs (progressive LOD) -----------------------------------

    /// Runs the full pipeline at an explicit sample budget of `k` points:
    /// partition, then [`Pipeline::run_with_partition_budget`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyCloud`] for an empty cloud.
    pub fn run_budget(
        &self,
        cloud: &PointCloud,
        k: usize,
        parallel: bool,
    ) -> Result<PipelineOutput> {
        let built = self.partition(cloud, parallel)?;
        self.run_with_partition_budget(cloud, &built, k, parallel)
    }

    /// The BPPO half at an explicit sample budget `k` (clamped to the
    /// run's total): per-block counts are the first `k` ranks of the
    /// [`SampleOrder`] interleave schedule built from the *full* budgets
    /// — not the largest-remainder allocator re-run at a smaller rate,
    /// which is not prefix-monotone — and the ordinary kernels then run at
    /// those counts. By construction,
    /// [`PipelineOutput::prefix`]`(k)` of a full run is bit-identical to
    /// this, which is the contract streaming refinement relies on.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyCloud`] for an empty cloud.
    pub fn run_with_partition_budget(
        &self,
        cloud: &PointCloud,
        built: &FractalResult,
        k: usize,
        parallel: bool,
    ) -> Result<PipelineOutput> {
        let bppo = if parallel { BppoConfig::default() } else { BppoConfig::sequential() };
        let full_counts = self.sample_counts(built);
        let order = SampleOrder::build(&built.partition, &full_counts);
        let k = k.min(order.len());
        let counts_k = order.prefix_counts(k);

        let mut ws = global_pool().checkout();
        let mut out = PipelineOutput::default();
        block_fps_with_counts_into(
            cloud,
            &built.partition,
            &counts_k,
            &bppo,
            &mut ws,
            &mut out.sampled,
        )?;
        block_ball_query_into(
            cloud,
            &built.partition,
            &out.sampled.per_block,
            self.config.radius,
            self.config.neighbors,
            &bppo,
            &mut ws,
            &mut out.grouped,
        )?;
        out.blocks = built.partition.blocks.len();
        out.order = order.prefix(k);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bppo::{block_ball_query, block_fps};
    use fractalcloud_pointcloud::generate::{scene_cloud, SceneConfig};

    #[test]
    fn pipeline_matches_free_functions() {
        let cloud = scene_cloud(&SceneConfig::default(), 4096, 3);
        let cfg = PipelineConfig::default();
        let out = Pipeline::new(cfg).unwrap().run(&cloud, true).unwrap();

        let built = Fractal::with_threshold(cfg.threshold).build(&cloud).unwrap();
        let fps =
            block_fps(&cloud, &built.partition, cfg.sample_rate, &BppoConfig::default()).unwrap();
        let bq = block_ball_query(
            &cloud,
            &built.partition,
            &fps.per_block,
            cfg.radius,
            cfg.neighbors,
            &BppoConfig::default(),
        )
        .unwrap();
        assert_eq!(out.sampled, fps);
        assert_eq!(out.grouped, bq);
        assert_eq!(out.blocks, built.partition.blocks.len());
    }

    #[test]
    fn sequential_and_parallel_runs_are_identical() {
        let cloud = scene_cloud(&SceneConfig::default(), 6000, 5);
        let pipe = Pipeline::new(PipelineConfig::default()).unwrap();
        assert_eq!(pipe.run(&cloud, true).unwrap(), pipe.run(&cloud, false).unwrap());
    }

    #[test]
    fn cached_partition_reuse_is_identical_to_fresh_run() {
        let cloud = scene_cloud(&SceneConfig::default(), 3000, 9);
        let pipe = Pipeline::new(PipelineConfig::default()).unwrap();
        let built = pipe.partition(&cloud, true).unwrap();
        let fresh = pipe.run(&cloud, true).unwrap();
        let reused = pipe.run_with_partition(&cloud, &built, true).unwrap();
        assert_eq!(fresh, reused);
    }

    #[test]
    fn block_task_decomposition_is_bit_identical_to_monolithic_run() {
        // The seam the serving layer's cross-frame block batching stands
        // on: running every block as an independent task (even in a
        // shuffled order) and reassembling in block order must reproduce
        // run_with_partition exactly — indices, counters, critical path,
        // reuse statistics, everything.
        for (n, seed) in [(4096usize, 11u64), (700, 12), (57, 13)] {
            let cloud = scene_cloud(&SceneConfig::default(), n, seed);
            let pipe = Pipeline::new(PipelineConfig::default()).unwrap();
            let built = pipe.partition(&cloud, false).unwrap();
            let expected = pipe.run_with_partition(&cloud, &built, false).unwrap();

            let counts = pipe.sample_counts(&built);
            let blocks = built.partition.blocks.len();
            // Execute tasks out of order to prove independence...
            let mut order: Vec<usize> = (0..blocks).rev().collect();
            order.rotate_left(blocks / 3);
            let mut sampled: Vec<Option<(Vec<usize>, OpCounters)>> = vec![None; blocks];
            for &b in &order {
                sampled[b] = Some(pipe.sample_block(&cloud, &built, b, counts[b]));
            }
            let sampled: Vec<_> = sampled.into_iter().map(|s| s.unwrap()).collect();
            let mut grouped: Vec<Option<BlockNeighborTask>> = vec![None; blocks];
            for &b in &order {
                grouped[b] = Some(pipe.group_block(&cloud, &built, b, &sampled[b].0));
            }
            let grouped: Vec<_> = grouped.into_iter().map(|g| g.unwrap()).collect();
            // ...then assemble in block order.
            let decomposed = pipe.assemble_output(&built, sampled, grouped);
            assert_eq!(decomposed, expected, "decomposed run diverged at n={n}");
        }
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(Pipeline::new(PipelineConfig::new(0, 0.25, 0.4, 16)).is_err());
        assert!(Pipeline::new(PipelineConfig::new(256, 0.0, 0.4, 16)).is_err());
        assert!(Pipeline::new(PipelineConfig::new(256, 1.5, 0.4, 16)).is_err());
        assert!(Pipeline::new(PipelineConfig::new(256, 0.25, -1.0, 16)).is_err());
        assert!(Pipeline::new(PipelineConfig::new(256, 0.25, f32::NAN, 16)).is_err());
        assert!(Pipeline::new(PipelineConfig::new(256, 0.25, 0.4, 0)).is_err());
        assert!(Pipeline::new(PipelineConfig::default()).is_ok());
    }

    #[test]
    fn compat_key_separates_configs() {
        let a = PipelineConfig::default();
        let mut b = a;
        assert_eq!(a.compat_key(), b.compat_key());
        b.neighbors = 17;
        assert_ne!(a.compat_key(), b.compat_key());
        let c = PipelineConfig { radius: 0.401, ..a };
        assert_ne!(a.compat_key(), c.compat_key());
    }

    #[test]
    fn empty_cloud_errors() {
        let pipe = Pipeline::new(PipelineConfig::default()).unwrap();
        assert_eq!(pipe.run(&PointCloud::new(), true), Err(Error::EmptyCloud));
    }

    #[test]
    fn cancel_token_trips_on_cancel_and_on_deadline() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        let shared = t.clone();
        shared.cancel();
        assert!(t.is_cancelled(), "clones share one flag");
        assert_eq!(t.check(), Err(Error::Cancelled));

        let expired =
            CancelToken::with_deadline(Instant::now() - std::time::Duration::from_millis(1));
        assert!(expired.is_cancelled());
        let live =
            CancelToken::with_deadline(Instant::now() + std::time::Duration::from_secs(3600));
        assert!(!live.is_cancelled());
    }

    #[test]
    fn cancelled_run_aborts_and_staging_is_reusable_afterwards() {
        let cloud = scene_cloud(&SceneConfig::default(), 2048, 21);
        let pipe = Pipeline::new(PipelineConfig::default()).unwrap();
        let built = pipe.partition(&cloud, false).unwrap();
        let expected = pipe.run_with_partition(&cloud, &built, false).unwrap();

        let mut ws = Workspace::new();
        let mut out = PipelineOutput::default();
        let tripped = CancelToken::new();
        tripped.cancel();
        assert_eq!(
            pipe.run_with_partition_into_cancel(&cloud, &built, false, &mut ws, &mut out, &tripped),
            Err(Error::Cancelled)
        );
        // The aborted staging is garbage but reusable: the next clean run
        // through the same buffers must be bit-identical to a fresh one.
        let live =
            CancelToken::with_deadline(Instant::now() + std::time::Duration::from_secs(3600));
        pipe.run_with_partition_into_cancel(&cloud, &built, false, &mut ws, &mut out, &live)
            .unwrap();
        assert_eq!(out, expected);
    }
}

//! # FractalCloud core: Fractal partitioning and block-parallel point ops
//!
//! This crate implements the primary contribution of *"FractalCloud: A
//! Fractal-Inspired Architecture for Efficient Large-Scale Point Cloud
//! Processing"* (HPCA 2026):
//!
//! * [`Fractal`] — the shape-aware partitioner (Alg. 1): recursive
//!   axis-cycled midpoint splits from per-axis extrema, threshold-controlled
//!   block division, and a depth-first-traversal (DFT) memory layout;
//! * [`FractalTree`] — the binary tree over blocks, with the parent
//!   search-space rule for neighbor operations;
//! * [`bppo`] — Block-Parallel Point Operations: block-wise sampling
//!   ([`block_fps`]), grouping ([`block_ball_query`]), interpolation
//!   ([`block_interpolate`]) and gathering ([`block_gather`]);
//! * [`Pipeline`] — a validated, reusable partition + BPPO pipeline (the
//!   seam the `fractalcloud-serve` request engine is built on);
//! * [`WindowCheck`] — the RSPU redundancy-skipping mask (Fig. 11(c));
//! * [`quality`] — accuracy-proxy evaluation of block vs global pipelines;
//! * [`workspace`] — reusable scratch arenas ([`Workspace`], [`workspace::Pool`])
//!   threaded through the build and BPPO hot paths so a warmed pipeline
//!   performs no per-frame heap allocation (the software analogue of the
//!   paper's on-chip block residency; `FRACTALCLOUD_WORKSPACE=fresh|reuse`
//!   A/Bs the two paths).
//!
//! # Example: partition, sample, group
//!
//! ```
//! use fractalcloud_core::{block_ball_query, block_fps, BppoConfig, Fractal};
//! use fractalcloud_pointcloud::generate::{scene_cloud, SceneConfig};
//!
//! let cloud = scene_cloud(&SceneConfig::default(), 4096, 7);
//! let result = Fractal::with_threshold(256).build(&cloud)?;
//!
//! let cfg = BppoConfig::default();
//! let sampled = block_fps(&cloud, &result.partition, 0.25, &cfg)?;
//! let grouped = block_ball_query(
//!     &cloud, &result.partition, &sampled.per_block, 0.4, 16, &cfg)?;
//! assert_eq!(grouped.center_indices.len(), sampled.indices.len());
//! # Ok::<(), fractalcloud_pointcloud::Error>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bppo;
mod fractal;
pub mod lod;
mod pipeline;
pub mod quality;
mod tree;
mod window;
pub mod workspace;

pub use bppo::interpolation::BlockInterpolationResult;
pub use bppo::{
    assemble_block_fps, assemble_block_neighbors, ball_query_block_model, ball_query_block_task,
    ball_query_block_task_into, ball_query_block_task_ws, block_ball_query, block_ball_query_into,
    block_fps, block_fps_pinned, block_fps_with_counts, block_fps_with_counts_into, block_gather,
    block_interpolate, block_sample_counts, equal_sample_counts, fps_block_task,
    fps_block_task_into, fps_block_task_ws, BlockFpsResult, BlockGatherResult, BlockNeighborResult,
    BlockNeighborTask, BppoConfig, GatherLocality, ReuseStats,
};
pub use fractal::{Fractal, FractalConfig, FractalResult};
pub use lod::{LodSegment, LodSlice, SampleOrder};
pub use pipeline::{fnv1a64, CancelToken, Pipeline, PipelineConfig, PipelineOutput, FNV1A64_SEED};
pub use quality::{evaluate_quality, QualityConfig, QualityReport};
pub use tree::{FractalNode, FractalTree, NodeId};
pub use window::WindowCheck;
pub use workspace::{InferScratch, LevelMeta, Workspace};

//! The Fractal shape-aware partitioner (Alg. 1 of the paper).

use crate::tree::{FractalNode, FractalTree, NodeId};
use crate::workspace::Workspace;
use fractalcloud_pointcloud::partition::{Block, Partition, PartitionCost, Partitioner};
use fractalcloud_pointcloud::{Aabb, Axis, Error, Point3, PointCloud, Result};
use serde::{Deserialize, Serialize};

/// Configuration for [`Fractal`] partitioning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FractalConfig {
    /// Maximum points per block (`th` in Alg. 1). The paper uses 64 for
    /// classification workloads and 256 for segmentation (§VI-B).
    pub threshold: usize,
    /// Axis used at the root (the paper starts at x and cycles).
    pub start_axis: Axis,
    /// Recursion cap guarding degenerate inputs (all-identical points).
    pub max_depth: usize,
    /// Split the frontier on worker threads (level-synchronous, the
    /// software form of the fractal engine's block parallelism). The built
    /// tree, blocks, layout and cost counters are bit-identical either way;
    /// this only affects wall-clock time.
    pub parallel: bool,
}

impl FractalConfig {
    /// Creates a configuration with threshold `th`, starting at x, with the
    /// default depth cap of 48 and parallel building enabled.
    ///
    /// # Panics
    ///
    /// Panics if `th` is zero.
    pub fn new(th: usize) -> FractalConfig {
        assert!(th > 0, "threshold must be positive");
        FractalConfig { threshold: th, start_axis: Axis::X, max_depth: 48, parallel: true }
    }

    /// The paper's segmentation (large-scale) setting, `th = 256`.
    pub fn large_scale() -> FractalConfig {
        FractalConfig::new(256)
    }

    /// The paper's classification (small-scale) setting, `th = 64`.
    pub fn small_scale() -> FractalConfig {
        FractalConfig::new(64)
    }

    /// The same configuration with single-threaded building (deterministic
    /// wall-clock baselines; results are identical to the parallel build).
    pub fn sequential(self) -> FractalConfig {
        FractalConfig { parallel: false, ..self }
    }
}

impl Default for FractalConfig {
    fn default() -> FractalConfig {
        FractalConfig::large_scale()
    }
}

/// The Fractal shape-aware partitioner (Alg. 1, Figs. 3(d), 6, 9).
///
/// Each iteration performs a single linear traversal per active block:
/// points are partitioned against the previous iteration's midpoint while
/// the next axis' extrema are accumulated for the two sub-blocks — the
/// pipelined dataflow of Fig. 9(c). Blocks at or below `threshold` become
/// leaves; the final leaves are stored in depth-first-traversal order.
///
/// # Examples
///
/// ```
/// use fractalcloud_core::{Fractal, FractalConfig};
/// use fractalcloud_pointcloud::generate::{scene_cloud, SceneConfig};
/// use fractalcloud_pointcloud::partition::Partitioner;
///
/// let cloud = scene_cloud(&SceneConfig::default(), 4096, 1);
/// let fractal = Fractal::new(FractalConfig::new(256));
/// let result = fractal.build(&cloud)?;
/// assert!(result.partition.blocks.iter().all(|b| b.len() <= 256));
/// result.tree.validate().expect("tree invariants hold");
/// # Ok::<(), fractalcloud_pointcloud::Error>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fractal {
    config: FractalConfig,
}

/// Everything the fractal build produces: the [`Partition`] (interchangeable
/// with baseline partitioners) plus the full [`FractalTree`] needed by
/// block-parallel point operations.
#[derive(Debug, Clone, PartialEq)]
pub struct FractalResult {
    /// Leaf blocks in DFT order with build cost counters.
    pub partition: Partition,
    /// The binary tree over the blocks.
    pub tree: FractalTree,
    /// Number of pipeline iterations executed (Fig. 5: `O(log₂ n/BS)`).
    pub iterations: usize,
}

impl Fractal {
    /// Creates a fractal partitioner from a configuration.
    pub fn new(config: FractalConfig) -> Fractal {
        Fractal { config }
    }

    /// Convenience constructor from a threshold.
    ///
    /// # Panics
    ///
    /// Panics if `th` is zero.
    pub fn with_threshold(th: usize) -> Fractal {
        Fractal::new(FractalConfig::new(th))
    }

    /// The configuration in use.
    pub fn config(&self) -> FractalConfig {
        self.config
    }

    /// Expected number of traversal iterations for `n` points at block size
    /// `bs`: `ceil(log₂(n / bs))` (Fig. 5: 1K pts @ BS 64 → 4; 289K pts @
    /// BS 256 → 11).
    pub fn expected_iterations(n: usize, bs: usize) -> usize {
        if n <= bs {
            return 0;
        }
        let ratio = n as f64 / bs as f64;
        ratio.log2().ceil() as usize
    }

    /// Runs the fractal build, returning the partition and tree.
    ///
    /// Scratch (the order buffer, frontier lists and split runs) comes
    /// from the process-wide workspace pool, so repeated builds reuse
    /// their intermediate buffers; [`Fractal::build_ws`] takes an explicit
    /// [`Workspace`] instead. Only the returned partition/tree are
    /// freshly allocated — they are the cacheable artifact.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyCloud`] for empty input.
    pub fn build(&self, cloud: &PointCloud) -> Result<FractalResult> {
        let mut ws = crate::workspace::global_pool().checkout();
        self.build_ws(cloud, &mut ws)
    }

    /// [`Fractal::build`] with an explicit scratch [`Workspace`]. On a
    /// sequential lane (config sequential, or an effective thread budget
    /// of one) the whole build streams through `ws` — zero heap
    /// allocation beyond the returned tree/partition once warmed; with
    /// real parallelism the level-synchronous frontier path runs instead.
    /// The built tree, blocks, layout and cost counters are bit-identical
    /// in every mode.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyCloud`] for empty input.
    pub fn build_ws(&self, cloud: &PointCloud, ws: &mut Workspace) -> Result<FractalResult> {
        if cloud.is_empty() {
            return Err(Error::EmptyCloud);
        }
        let workers = fractalcloud_parallel::workers();
        let use_parallel =
            self.config.parallel && workers > 1 && fractalcloud_parallel::effective_budget() > 1;
        if use_parallel {
            self.build_parallel(cloud)
        } else {
            self.build_sequential(cloud, ws)
        }
    }

    /// The streaming sequential build: one node at a time, all scratch in
    /// `ws` (order buffer, frontier lists, split runs). Identical node
    /// numbering, cost accounting and layout to the parallel frontier
    /// path — the per-node split is the same stable classification the
    /// single-chunk parallel traversal performs.
    fn build_sequential(&self, cloud: &PointCloud, ws: &mut Workspace) -> Result<FractalResult> {
        let th = self.config.threshold;
        let mut cost = PartitionCost::default();
        let build = &mut ws.build;

        // Reused global index buffer: nodes own [start, end) ranges and
        // splits reorder within their range, so the final buffer is the
        // DFT layout.
        build.order.clear();
        build.order.extend(0..cloud.len());

        let root_aabb = cloud.bounds().expect("non-empty cloud");
        let mut nodes: Vec<FractalNode> = vec![FractalNode {
            aabb: root_aabb,
            count: cloud.len(),
            depth: 0,
            parent: None,
            children: None,
            split: None,
            leaf_block: None,
            range: (0, cloud.len()),
        }];

        build.active.clear();
        if cloud.len() > th {
            build.active.push(0);
            cost.traversal_passes += 1;
            cost.traversal_elements += cloud.len() as u64;
            cost.compare_ops += (cloud.len() * 2) as u64; // min & max update
        }
        let mut iterations = 0usize;

        while !build.active.is_empty() {
            iterations += 1;
            build.next_active.clear();
            cost.traversal_passes += 1;
            for idx in 0..build.active.len() {
                let nid = build.active[idx];
                let (start, end) = nodes[nid].range;
                let depth = nodes[nid].depth;
                let axis = axis_at(self.config.start_axis, depth);
                let aabb = nodes[nid].aabb;
                let outcome = split_node_seq(
                    cloud,
                    aabb,
                    axis,
                    &mut build.order[start..end],
                    &mut build.left,
                    &mut build.right,
                );
                cost.traversal_elements += (end - start) as u64;
                let Some(split) = outcome else {
                    // All extents zero (duplicated points): forced leaf; its
                    // block index is assigned in the DFT collection pass.
                    continue;
                };
                cost.compare_ops += (end - start) as u64;

                let lid = nodes.len();
                nodes.push(FractalNode {
                    aabb: split.l_aabb,
                    count: split.l_len,
                    depth: depth + 1,
                    parent: Some(nid),
                    children: None,
                    split: None,
                    leaf_block: None,
                    range: (start, start + split.l_len),
                });
                let rid = nodes.len();
                nodes.push(FractalNode {
                    aabb: split.r_aabb,
                    count: (end - start) - split.l_len,
                    depth: depth + 1,
                    parent: Some(nid),
                    children: None,
                    split: None,
                    leaf_block: None,
                    range: (start + split.l_len, end),
                });
                nodes[nid].children = Some((lid, rid));
                nodes[nid].split = Some((split.axis, split.mid));

                for cid in [lid, rid] {
                    if nodes[cid].count > th && nodes[cid].depth < self.config.max_depth {
                        build.next_active.push(cid);
                        // Extrema accumulation for next iteration's midpoint
                        // happens in the same pass (pipelined): count the
                        // comparisons but not another traversal.
                        cost.compare_ops += (nodes[cid].count * 2) as u64;
                    }
                }
            }
            std::mem::swap(&mut build.active, &mut build.next_active);
        }

        build.leaves.clear();
        finish_build(nodes, &build.order, &mut build.leaves, cost, iterations, cloud.len())
    }

    /// The level-synchronous parallel frontier build (the original
    /// multi-worker path; scratch is transient here — parallelism already
    /// trades allocations for cores).
    fn build_parallel(&self, cloud: &PointCloud) -> Result<FractalResult> {
        let th = self.config.threshold;
        let mut cost = PartitionCost::default();

        // Global index buffer: nodes own [start, end) ranges and splits
        // reorder within their range, so the final buffer is the DFT layout.
        let mut order: Vec<usize> = (0..cloud.len()).collect();

        let root_aabb = cloud.bounds().expect("non-empty cloud");
        let mut nodes: Vec<FractalNode> = vec![FractalNode {
            aabb: root_aabb,
            count: cloud.len(),
            depth: 0,
            parent: None,
            children: None,
            split: None,
            leaf_block: None,
            range: (0, cloud.len()),
        }];

        // Active set for the current iteration (hardware: blocks still
        // exceeding th, Fig. 9(c)). The initial extrema pass over the whole
        // cloud is iteration 0's traversal.
        let mut active: Vec<NodeId> = if cloud.len() > th { vec![0] } else { Vec::new() };
        if !active.is_empty() {
            cost.traversal_passes += 1;
            cost.traversal_elements += cloud.len() as u64;
            cost.compare_ops += (cloud.len() * 2) as u64; // min & max update
        }
        let mut iterations = 0usize;
        let workers = fractalcloud_parallel::workers();
        let use_parallel = self.config.parallel && workers > 1;

        while !active.is_empty() {
            iterations += 1;
            let mut next_active: Vec<NodeId> = Vec::new();
            // One traversal per iteration: every active block is streamed
            // once — partition on this level's axis, extrema for the next.
            // All blocks of the frontier are split concurrently
            // (level-synchronous); when the frontier is narrower than the
            // worker pool (the first iterations), the traversal of each
            // large block is itself chunk-parallel.
            cost.traversal_passes += 1;

            // Carve `order` into one disjoint mutable slice per active
            // node. Frontier ranges are ascending and non-overlapping by
            // construction (children tile their parent's range in order).
            let mut tasks: Vec<(Task, &mut [usize])> = Vec::with_capacity(active.len());
            {
                let mut rest: &mut [usize] = &mut order[..];
                let mut consumed = 0usize;
                for &nid in &active {
                    let (start, end) = nodes[nid].range;
                    debug_assert!(start >= consumed, "frontier ranges must ascend");
                    let (_, after) = rest.split_at_mut(start - consumed);
                    let (slice, after) = after.split_at_mut(end - start);
                    consumed = end;
                    rest = after;
                    tasks.push((
                        Task { nid, depth: nodes[nid].depth, aabb: nodes[nid].aabb },
                        slice,
                    ));
                }
            }

            let frontier_parallel = use_parallel && tasks.len() > 1;
            // Intra-node chunking only pays off while the frontier cannot
            // feed every worker on its own.
            let intra_parallel = use_parallel && tasks.len() < workers;
            let outcomes = fractalcloud_parallel::parallel_map(
                tasks,
                frontier_parallel,
                |_, (task, slice)| {
                    let axis = axis_at(self.config.start_axis, task.depth);
                    (task.nid, split_node(cloud, task.aabb, axis, slice, intra_parallel))
                },
            );

            // Sequential apply: identical node numbering and cost
            // accounting to a sequential build.
            for (nid, outcome) in outcomes {
                let (start, end) = nodes[nid].range;
                let depth = nodes[nid].depth;
                cost.traversal_elements += (end - start) as u64;
                let Some(split) = outcome else {
                    // All extents zero (duplicated points): forced leaf; its
                    // block index is assigned in the DFT collection pass.
                    continue;
                };
                cost.compare_ops += (end - start) as u64;

                let lid = nodes.len();
                nodes.push(FractalNode {
                    aabb: split.l_aabb,
                    count: split.l_len,
                    depth: depth + 1,
                    parent: Some(nid),
                    children: None,
                    split: None,
                    leaf_block: None,
                    range: (start, start + split.l_len),
                });
                let rid = nodes.len();
                nodes.push(FractalNode {
                    aabb: split.r_aabb,
                    count: (end - start) - split.l_len,
                    depth: depth + 1,
                    parent: Some(nid),
                    children: None,
                    split: None,
                    leaf_block: None,
                    range: (start + split.l_len, end),
                });
                nodes[nid].children = Some((lid, rid));
                nodes[nid].split = Some((split.axis, split.mid));

                for cid in [lid, rid] {
                    if nodes[cid].count > th && nodes[cid].depth < self.config.max_depth {
                        next_active.push(cid);
                        // Extrema accumulation for next iteration's midpoint
                        // happens in the same pass (pipelined): count the
                        // comparisons but not another traversal.
                        cost.compare_ops += (nodes[cid].count * 2) as u64;
                    }
                }
            }
            active = next_active;
        }

        let mut leaves: Vec<NodeId> = Vec::new();
        finish_build(nodes, &order, &mut leaves, cost, iterations, cloud.len())
    }
}

/// Shared tail of both build paths: collect leaves in DFT order (into the
/// caller's reusable buffer), cut blocks out of the order buffer, build the
/// tree and partition. Only the returned artifacts allocate.
fn finish_build(
    mut nodes: Vec<FractalNode>,
    order: &[usize],
    leaves: &mut Vec<NodeId>,
    cost: PartitionCost,
    iterations: usize,
    n: usize,
) -> Result<FractalResult> {
    collect_leaves_dft(&nodes, 0, leaves);
    let mut blocks = Vec::with_capacity(leaves.len());
    for (bi, &lid) in leaves.iter().enumerate() {
        nodes[lid].leaf_block = Some(bi);
        let (s, e) = nodes[lid].range;
        blocks.push(Block {
            indices: order[s..e].to_vec(),
            aabb: nodes[lid].aabb,
            depth: nodes[lid].depth,
            parent_group: Vec::new(),
        });
    }
    let tree = FractalTree::from_parts(nodes, leaves.clone());
    for (bi, &lid) in leaves.iter().enumerate() {
        blocks[bi].parent_group = tree.search_space_blocks(lid);
    }

    let max_depth = tree.max_depth();
    let partition = Partition { blocks, cost, max_depth, method: "fractal" };
    debug_assert!(partition.is_exact_partition_of(n));
    debug_assert_eq!(tree.validate(), Ok(()));
    Ok(FractalResult { partition, tree, iterations })
}

/// Single-run stable split of one node's index slice, all scratch borrowed
/// from the caller's workspace (`left`/`right` runs are cleared and
/// refilled). Exactly the classification the chunked [`split_node`]
/// performs with one chunk: same stable order, same AABB growth order,
/// same degenerate-axis handling.
fn split_node_seq(
    cloud: &PointCloud,
    aabb: Aabb,
    first_axis: Axis,
    slice: &mut [usize],
    left: &mut Vec<usize>,
    right: &mut Vec<usize>,
) -> Option<NodeSplit> {
    let mut axis = first_axis;
    let mut chosen = None;
    for _ in 0..3 {
        let mid = aabb.midpoint(axis);
        let l = count_le(cloud.axis_slice(axis), slice, mid);
        if l > 0 && l < slice.len() {
            chosen = Some((axis, mid));
            break;
        }
        axis = axis.next();
    }
    let (axis, mid) = chosen?;

    let (xs, ys, zs) = (cloud.xs(), cloud.ys(), cloud.zs());
    let coords = cloud.axis_slice(axis);
    left.clear();
    right.clear();
    let mut l_aabb: Option<Aabb> = None;
    let mut r_aabb: Option<Aabb> = None;
    for &i in slice.iter() {
        let p = Point3::new(xs[i], ys[i], zs[i]);
        if coords[i] <= mid {
            left.push(i);
            grow(&mut l_aabb, p);
        } else {
            right.push(i);
            grow(&mut r_aabb, p);
        }
    }
    slice[..left.len()].copy_from_slice(left);
    slice[left.len()..].copy_from_slice(right);

    Some(NodeSplit {
        axis,
        mid,
        l_len: left.len(),
        l_aabb: l_aabb.expect("left non-empty by axis choice"),
        r_aabb: r_aabb.expect("right non-empty by axis choice"),
    })
}

impl Partitioner for Fractal {
    fn name(&self) -> &'static str {
        "fractal"
    }

    fn partition(&self, cloud: &PointCloud) -> Result<Partition> {
        Ok(self.build(cloud)?.partition)
    }
}

/// Frontier work item: the node plus the metadata its split needs (copied
/// out so worker threads never touch the shared `nodes` vector).
#[derive(Debug, Clone, Copy)]
struct Task {
    nid: NodeId,
    depth: usize,
    aabb: Aabb,
}

/// Result of splitting one frontier node: the chosen plane, the left
/// population, and the children's bounding boxes. `None` when every axis is
/// degenerate (duplicated points → forced leaf).
#[derive(Debug, Clone, Copy)]
struct NodeSplit {
    axis: Axis,
    mid: f32,
    l_len: usize,
    l_aabb: Aabb,
    r_aabb: Aabb,
}

/// Minimum slice length for which an intra-node chunk-parallel traversal is
/// worth the fork/join overhead.
const INTRA_NODE_GRAIN: usize = 8 * 1024;

/// Splits one node's index slice in place (stable: left ≤ mid first, then
/// right), returning the split description, or `None` if no axis separates
/// the points.
///
/// The traversal reads the cloud's SoA slices directly. With
/// `intra_parallel`, the slice is classified in chunks on worker threads
/// and the per-chunk left/right runs are concatenated in chunk order —
/// producing exactly the sequential stable partition, with child AABBs
/// merged from per-chunk boxes (min/max merging is order-independent).
fn split_node(
    cloud: &PointCloud,
    aabb: Aabb,
    first_axis: Axis,
    slice: &mut [usize],
    intra_parallel: bool,
) -> Option<NodeSplit> {
    // Choose a split axis: the cycled axis unless degenerate (zero extent);
    // then try the other two in cycle order.
    let mut axis = first_axis;
    let mut chosen = None;
    for _ in 0..3 {
        let mid = aabb.midpoint(axis);
        let l = count_le(cloud.axis_slice(axis), slice, mid);
        if l > 0 && l < slice.len() {
            chosen = Some((axis, mid));
            break;
        }
        axis = axis.next();
    }
    let (axis, mid) = chosen?;

    // Stable partition, chunk-parallel for large slices.
    let n = slice.len();
    let n_chunks = if intra_parallel && n >= INTRA_NODE_GRAIN {
        fractalcloud_parallel::workers().min(n / (INTRA_NODE_GRAIN / 8)).max(1)
    } else {
        1
    };
    let chunk_len = n.div_ceil(n_chunks);
    let ranges: Vec<std::ops::Range<usize>> =
        (0..n_chunks).map(|c| (c * chunk_len).min(n)..((c + 1) * chunk_len).min(n)).collect();

    let view: &[usize] = slice;
    let (xs, ys, zs) = (cloud.xs(), cloud.ys(), cloud.zs());
    let coords = cloud.axis_slice(axis);
    let parts = fractalcloud_parallel::parallel_map(ranges, n_chunks > 1, |_, r| {
        let mut left: Vec<usize> = Vec::with_capacity(r.len());
        let mut right: Vec<usize> = Vec::new();
        let mut l_aabb: Option<Aabb> = None;
        let mut r_aabb: Option<Aabb> = None;
        for &i in &view[r] {
            let p = Point3::new(xs[i], ys[i], zs[i]);
            if coords[i] <= mid {
                left.push(i);
                grow(&mut l_aabb, p);
            } else {
                right.push(i);
                grow(&mut r_aabb, p);
            }
        }
        (left, right, l_aabb, r_aabb)
    });

    // Merge: left runs in chunk order, then right runs in chunk order —
    // the stable partition a single sequential pass would produce.
    let mut l_len = 0usize;
    let mut l_aabb: Option<Aabb> = None;
    let mut r_aabb: Option<Aabb> = None;
    for (left, _, la, ra) in &parts {
        l_len += left.len();
        merge_aabb(&mut l_aabb, *la);
        merge_aabb(&mut r_aabb, *ra);
    }
    let mut cursor = 0usize;
    for (left, _, _, _) in &parts {
        slice[cursor..cursor + left.len()].copy_from_slice(left);
        cursor += left.len();
    }
    for (_, right, _, _) in &parts {
        slice[cursor..cursor + right.len()].copy_from_slice(right);
        cursor += right.len();
    }
    debug_assert_eq!(cursor, n);

    Some(NodeSplit {
        axis,
        mid,
        l_len,
        l_aabb: l_aabb.expect("left non-empty by axis choice"),
        r_aabb: r_aabb.expect("right non-empty by axis choice"),
    })
}

fn axis_at(start: Axis, depth: usize) -> Axis {
    let mut a = start;
    for _ in 0..(depth % 3) {
        a = a.next();
    }
    a
}

fn grow(acc: &mut Option<Aabb>, p: Point3) {
    match acc {
        Some(b) => b.expand(p),
        None => *acc = Some(Aabb::new(p, p)),
    }
}

fn merge_aabb(acc: &mut Option<Aabb>, other: Option<Aabb>) {
    match (acc.as_mut(), other) {
        (Some(a), Some(b)) => {
            a.expand(b.min());
            a.expand(b.max());
        }
        (None, Some(b)) => *acc = Some(b),
        (_, None) => {}
    }
}

/// Counts how many of the indexed coordinates are `<= mid` — the
/// vectorizable one-axis streaming pass of Fig. 9(c).
fn count_le(coords: &[f32], idx: &[usize], mid: f32) -> usize {
    let mut l = 0usize;
    for &i in idx {
        l += usize::from(coords[i] <= mid);
    }
    l
}

fn collect_leaves_dft(nodes: &[FractalNode], id: NodeId, out: &mut Vec<NodeId>) {
    match nodes[id].children {
        None => out.push(id),
        Some((l, r)) => {
            collect_leaves_dft(nodes, l, out);
            collect_leaves_dft(nodes, r, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fractalcloud_pointcloud::generate::{
        object_cloud, scene_cloud, uniform_cube, ObjectKind, SceneConfig,
    };
    use fractalcloud_pointcloud::Point3;

    #[test]
    fn fractal_respects_threshold() {
        let cloud = scene_cloud(&SceneConfig::default(), 5000, 1);
        let r = Fractal::with_threshold(128).build(&cloud).unwrap();
        for b in &r.partition.blocks {
            assert!(b.len() <= 128, "block of {} exceeds th", b.len());
        }
    }

    #[test]
    fn fractal_is_exact_partition() {
        let cloud = object_cloud(ObjectKind::Airplane, 3000, 2);
        let r = Fractal::with_threshold(64).build(&cloud).unwrap();
        assert!(r.partition.is_exact_partition_of(3000));
        r.tree.validate().unwrap();
    }

    #[test]
    fn fractal_small_input_single_block() {
        let cloud = uniform_cube(50, 3);
        let r = Fractal::with_threshold(64).build(&cloud).unwrap();
        assert_eq!(r.partition.blocks.len(), 1);
        assert_eq!(r.iterations, 0);
        assert_eq!(r.partition.cost.sort_invocations, 0);
    }

    #[test]
    fn fractal_never_sorts() {
        let cloud = scene_cloud(&SceneConfig::default(), 8000, 4);
        let r = Fractal::with_threshold(256).build(&cloud).unwrap();
        assert_eq!(r.partition.cost.sort_invocations, 0);
        assert_eq!(r.partition.cost.sorted_elements, 0);
        assert!(r.partition.cost.traversal_passes > 0);
    }

    #[test]
    fn fractal_iteration_count_matches_fig5_scale() {
        // Fig. 5: 1K points, BS 64 → 4 traversing iterations.
        assert_eq!(Fractal::expected_iterations(1024, 64), 4);
        // 289K points, BS 256 → 11.
        assert_eq!(Fractal::expected_iterations(289_000, 256), 11);
        // Measured iterations on balanced data stay close to the bound
        // (shape-dependent; dense sub-regions can add a level or two).
        let cloud = uniform_cube(1024, 7);
        let r = Fractal::with_threshold(64).build(&cloud).unwrap();
        assert!(
            (4..=6).contains(&r.iterations),
            "expected ≈4 iterations, measured {}",
            r.iterations
        );
    }

    #[test]
    fn fractal_splits_at_extrema_midpoint() {
        // 4 points on a line: extrema midpoint of x = (0 + 9) / 2 = 4.5.
        let cloud = PointCloud::from_points(vec![
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(1.0, 0.0, 0.0),
            Point3::new(8.0, 0.0, 0.0),
            Point3::new(9.0, 0.0, 0.0),
        ]);
        let r = Fractal::with_threshold(2).build(&cloud).unwrap();
        let root = r.tree.node(0);
        let (axis, mid) = root.split.unwrap();
        assert_eq!(axis, Axis::X);
        assert_eq!(mid, 4.5);
        assert_eq!(r.partition.blocks.len(), 2);
        assert_eq!(r.partition.blocks[0].indices, vec![0, 1]);
        assert_eq!(r.partition.blocks[1].indices, vec![2, 3]);
    }

    #[test]
    fn fractal_cycles_axes_by_depth() {
        let cloud = uniform_cube(2048, 5);
        let r = Fractal::with_threshold(128).build(&cloud).unwrap();
        for n in r.tree.nodes() {
            if let Some((axis, _)) = n.split {
                // On non-degenerate data the split axis follows depth % 3.
                assert_eq!(axis, axis_at(Axis::X, n.depth), "depth {}", n.depth);
            }
        }
    }

    #[test]
    fn fractal_handles_coplanar_clouds() {
        // All z identical: z never splits, but x/y cycling still works.
        let mut pts = Vec::new();
        for i in 0..64 {
            pts.push(Point3::new((i % 8) as f32, (i / 8) as f32, 1.0));
        }
        let r = Fractal::with_threshold(8).build(&PointCloud::from_points(pts)).unwrap();
        assert!(r.partition.is_exact_partition_of(64));
        assert!(r.partition.blocks.iter().all(|b| b.len() <= 8));
    }

    #[test]
    fn fractal_handles_duplicate_points() {
        let cloud = PointCloud::from_points(vec![Point3::splat(1.0); 100]);
        let r = Fractal::with_threshold(10).build(&cloud).unwrap();
        // Cannot split identical points: one oversized forced leaf.
        assert_eq!(r.partition.blocks.len(), 1);
        assert_eq!(r.partition.blocks[0].len(), 100);
        assert!(r.partition.is_exact_partition_of(100));
    }

    #[test]
    fn fractal_dft_layout_is_contiguous_and_spatial() {
        let cloud = scene_cloud(&SceneConfig::default(), 4096, 9);
        let r = Fractal::with_threshold(256).build(&cloud).unwrap();
        // Leaf ranges tile 0..n in DFT order.
        let mut cursor = 0;
        for &lid in r.tree.leaves() {
            let (s, e) = r.tree.node(lid).range;
            assert_eq!(s, cursor);
            cursor = e;
        }
        assert_eq!(cursor, 4096);
        // Sibling leaves are adjacent in memory AND in space: their AABBs
        // touch or overlap along the parent's split axis.
        for &lid in r.tree.leaves() {
            if let Some(sib) = r.tree.sibling(lid) {
                if r.tree.node(sib).is_leaf() {
                    let a = r.tree.node(lid).aabb;
                    let parent = r.tree.node(r.tree.node(lid).parent.unwrap());
                    assert!(parent.aabb.contains(a.center()));
                }
            }
        }
    }

    #[test]
    fn fractal_balance_beats_uniform_on_scenes() {
        use fractalcloud_pointcloud::partition::UniformPartitioner;
        let cloud = scene_cloud(&SceneConfig::default(), 16384, 11);
        let f = Fractal::with_threshold(256).build(&cloud).unwrap();
        let grid = UniformPartitioner::with_target_block_size(256);
        let u = grid.partition(&cloud).unwrap();
        assert!(
            f.partition.balance().imbalance() < u.balance().imbalance(),
            "fractal {} should beat uniform {}",
            f.partition.balance().imbalance(),
            u.balance().imbalance()
        );
    }

    #[test]
    fn fractal_max_block_bounded_by_threshold_even_with_outliers() {
        // §VI-D: even under extreme shapes the max block is bounded by th
        // (unlike uniform partitioning where it can reach n).
        let cfg = SceneConfig { outlier_fraction: 0.025, ..SceneConfig::default() };
        let cloud = scene_cloud(&cfg, 10000, 13);
        let r = Fractal::with_threshold(256).build(&cloud).unwrap();
        assert!(r.partition.blocks.iter().map(|b| b.len()).max().unwrap() <= 256);
    }

    #[test]
    fn empty_cloud_errors() {
        assert!(Fractal::with_threshold(8).build(&PointCloud::new()).is_err());
    }

    #[test]
    fn parallel_build_is_bit_identical_to_sequential() {
        // Large enough to exercise both frontier parallelism (late levels)
        // and intra-node chunked traversal (the root split).
        let cloud = scene_cloud(&SceneConfig::default(), 20_000, 11);
        let par = Fractal::new(FractalConfig::new(128)).build(&cloud).unwrap();
        let seq = Fractal::new(FractalConfig::new(128).sequential()).build(&cloud).unwrap();
        assert_eq!(par, seq, "tree, blocks, layout and cost must not depend on scheduling");
    }

    #[test]
    fn parallel_build_handles_duplicates_and_tiny_blocks() {
        let mut pts = vec![Point3::splat(3.0); 500];
        pts.extend((0..500).map(|i| Point3::new(i as f32, -(i as f32), 0.5)));
        let cloud = PointCloud::from_points(pts);
        let par = Fractal::new(FractalConfig::new(16)).build(&cloud).unwrap();
        let seq = Fractal::new(FractalConfig::new(16).sequential()).build(&cloud).unwrap();
        assert_eq!(par, seq);
        assert!(par.partition.is_exact_partition_of(1000));
    }

    #[test]
    fn paper_80_point_worked_example_shape() {
        // Reproduce the *structure* of Fig. 6: a cloud engineered to split
        // 80 → (43, 37) → (19, 24) and (17, 20) with th = 24.
        let mut pts = Vec::new();
        // Left x-half: y below mid gets 19, above gets 24.
        for i in 0..19 {
            pts.push(Point3::new(0.1 + (i as f32) * 0.01, 0.1 + (i as f32) * 0.01, 0.5));
        }
        for i in 0..24 {
            pts.push(Point3::new(0.1 + (i as f32) * 0.01, 0.9 - (i as f32) * 0.01, 0.5));
        }
        // Right x-half: 17 below, 20 above.
        for i in 0..17 {
            pts.push(Point3::new(0.9 - (i as f32) * 0.01, 0.1 + (i as f32) * 0.01, 0.5));
        }
        for i in 0..20 {
            pts.push(Point3::new(0.9 - (i as f32) * 0.01, 0.9 - (i as f32) * 0.01, 0.5));
        }
        assert_eq!(pts.len(), 80);
        let r = Fractal::with_threshold(24).build(&PointCloud::from_points(pts)).unwrap();
        let sizes: Vec<usize> = r.partition.blocks.iter().map(|b| b.len()).collect();
        assert_eq!(sizes, vec![19, 24, 17, 20], "Fig. 6 block populations");
        assert_eq!(r.iterations, 2, "Fig. 6 completes in two split iterations");
        assert_eq!(r.tree.max_depth(), 2);
    }
}

//! The RSPU window-check module (Fig. 11(c)).
//!
//! In standard FPS every iteration traverses all points, including points
//! that were already sampled and can never be selected again. The hardware
//! window-check filters the candidate stream with a sampling-status mask: a
//! lowest-one detector (LOD, a priority encoder) finds the next valid
//! candidate and skips the address generator past sampled entries.
//!
//! This module is a bit-exact functional model of that datapath, including
//! the windowed access pattern (the mask is consulted `window` bits at a
//! time, matching the hardware's mask-window register width).

use serde::{Deserialize, Serialize};

/// Functional model of the RSPU window-check unit.
///
/// Bit `i` is **1 while point `i` is still a valid candidate** (unsampled),
/// 0 once sampled — matching Fig. 11(c) where 1s participate and 0s are
/// skipped.
///
/// # Examples
///
/// ```
/// use fractalcloud_core::WindowCheck;
///
/// let mut wc = WindowCheck::new(8);
/// wc.mark_sampled(0);
/// wc.mark_sampled(1);
/// assert_eq!(wc.next_valid(0), Some(2)); // LOD skips two sampled points
/// assert_eq!(wc.skipped_total(), 0);     // skips are counted on traversal
/// let visited: Vec<usize> = wc.iter_valid().collect();
/// assert_eq!(visited, vec![2, 3, 4, 5, 6, 7]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowCheck {
    words: Vec<u64>,
    len: usize,
    valid: usize,
    skipped: u64,
}

impl WindowCheck {
    /// Hardware mask-window width in bits (one 64-bit mask word per fetch).
    pub const WINDOW_BITS: usize = 64;

    /// Creates a mask of `len` candidates, all valid.
    pub fn new(len: usize) -> WindowCheck {
        let words = vec![u64::MAX; len.div_ceil(64)];
        let mut wc = WindowCheck { words, len, valid: len, skipped: 0 };
        // Clear the tail bits beyond `len`.
        if !len.is_multiple_of(64) {
            let last = wc.words.len() - 1;
            wc.words[last] = (1u64 << (len % 64)) - 1;
        }
        wc
    }

    /// Number of candidates tracked.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no candidates are tracked.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of still-valid (unsampled) candidates.
    pub fn valid_count(&self) -> usize {
        self.valid
    }

    /// True if candidate `i` is still valid.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn is_valid(&self, i: usize) -> bool {
        assert!(i < self.len, "candidate {i} out of range {}", self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Marks candidate `i` as sampled (clears its bit). Idempotent.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn mark_sampled(&mut self, i: usize) {
        assert!(i < self.len, "candidate {i} out of range {}", self.len);
        let w = &mut self.words[i / 64];
        let bit = 1u64 << (i % 64);
        if *w & bit != 0 {
            *w &= !bit;
            self.valid -= 1;
        }
    }

    /// The lowest-one detector: index of the first valid candidate at or
    /// after `from`, or `None`. This is the priority-encoder operation the
    /// hardware performs on the mask window.
    pub fn next_valid(&self, from: usize) -> Option<usize> {
        if from >= self.len {
            return None;
        }
        let mut wi = from / 64;
        // Mask off bits below `from` in the first word.
        let mut word = self.words[wi] & (u64::MAX << (from % 64));
        loop {
            if word != 0 {
                let i = wi * 64 + word.trailing_zeros() as usize;
                return if i < self.len { Some(i) } else { None };
            }
            wi += 1;
            if wi >= self.words.len() {
                return None;
            }
            word = self.words[wi];
        }
    }

    /// Iterates over valid candidates in index order, counting skipped
    /// (sampled) entries into the skip counter — one full filtered traversal,
    /// exactly what one FPS iteration performs with window-check enabled.
    pub fn iter_valid(&mut self) -> IterValid<'_> {
        IterValid { wc: self, pos: 0 }
    }

    /// Total candidates skipped across all traversals so far (the redundant
    /// work eliminated versus no-window-check hardware).
    pub fn skipped_total(&self) -> u64 {
        self.skipped
    }
}

/// Iterator over valid candidates; see [`WindowCheck::iter_valid`].
#[derive(Debug)]
pub struct IterValid<'a> {
    wc: &'a mut WindowCheck,
    pos: usize,
}

impl Iterator for IterValid<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        let next = self.wc.next_valid(self.pos)?;
        // Entries jumped over were skipped candidates.
        self.wc.skipped += (next - self.pos) as u64;
        self.pos = next + 1;
        Some(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_valid_initially() {
        let wc = WindowCheck::new(100);
        assert_eq!(wc.valid_count(), 100);
        assert!(wc.is_valid(0));
        assert!(wc.is_valid(99));
    }

    #[test]
    fn tail_bits_are_clear() {
        let wc = WindowCheck::new(70);
        assert_eq!(wc.next_valid(69), Some(69));
        assert_eq!(wc.next_valid(70), None);
    }

    #[test]
    fn mark_sampled_is_idempotent() {
        let mut wc = WindowCheck::new(10);
        wc.mark_sampled(3);
        wc.mark_sampled(3);
        assert_eq!(wc.valid_count(), 9);
        assert!(!wc.is_valid(3));
    }

    #[test]
    fn lod_finds_first_one_across_words() {
        let mut wc = WindowCheck::new(200);
        for i in 0..130 {
            wc.mark_sampled(i);
        }
        assert_eq!(wc.next_valid(0), Some(130));
        assert_eq!(wc.next_valid(131), Some(131));
    }

    #[test]
    fn next_valid_none_when_exhausted() {
        let mut wc = WindowCheck::new(5);
        for i in 0..5 {
            wc.mark_sampled(i);
        }
        assert_eq!(wc.next_valid(0), None);
        assert_eq!(wc.valid_count(), 0);
    }

    #[test]
    fn traversal_skip_counting_matches_fps_pattern() {
        // 10 candidates, 4 sampled: a filtered traversal visits 6 and
        // skips 4 (if the tail is valid; trailing sampled entries are never
        // jumped over because iteration ends at the last valid index).
        let mut wc = WindowCheck::new(10);
        for i in [1, 2, 5, 7] {
            wc.mark_sampled(i);
        }
        let visited: Vec<usize> = wc.iter_valid().collect();
        assert_eq!(visited, vec![0, 3, 4, 6, 8, 9]);
        assert_eq!(wc.skipped_total(), 4);
    }

    #[test]
    fn skips_accumulate_over_traversals() {
        let mut wc = WindowCheck::new(8);
        wc.mark_sampled(0);
        let _ = wc.iter_valid().count();
        wc.mark_sampled(4);
        let _ = wc.iter_valid().count();
        assert_eq!(wc.skipped_total(), 1 + 2);
    }

    #[test]
    fn empty_mask() {
        let mut wc = WindowCheck::new(0);
        assert!(wc.is_empty());
        assert_eq!(wc.next_valid(0), None);
        assert_eq!(wc.iter_valid().count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn is_valid_bounds_checked() {
        let wc = WindowCheck::new(4);
        let _ = wc.is_valid(4);
    }
}

//! End-to-end accuracy-proxy evaluation: block-parallel vs global pipelines.
//!
//! Runs the three point operations both ways on the same cloud and reports
//! the [`AccuracyProxy`] metrics that stand in for retrained network
//! accuracy (see DESIGN.md §3 for the substitution rationale).

use crate::bppo::{
    block_ball_query, block_fps_with_counts, block_interpolate, block_sample_counts,
    equal_sample_counts, BppoConfig,
};
use fractalcloud_pointcloud::metrics::{mean_sample_distance, neighbor_recall, AccuracyProxy};
use fractalcloud_pointcloud::ops::{ball_query, farthest_point_sample, k_nearest_neighbors};
use fractalcloud_pointcloud::partition::Partition;
use fractalcloud_pointcloud::{Point3, PointCloud, Result};

/// Parameters of a quality evaluation; defaults match a PointNeXt-style
/// set-abstraction + propagation stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityConfig {
    /// Sampling rate of the abstraction stage (paper networks use 1/4).
    pub sampling_rate: f64,
    /// Ball-query radius, in cloud units.
    pub radius: f32,
    /// Neighbors per center in grouping.
    pub num_neighbors: usize,
    /// Neighbors in interpolation (PointNet++ uses 3).
    pub k_interp: usize,
    /// Use equal-per-block sample allocation instead of a fixed rate. This
    /// models space-uniform designs (PNNPU) whose hardware assigns fixed
    /// per-block workloads; combined with imbalanced blocks it reproduces
    /// their accuracy collapse (Fig. 14).
    pub equal_allocation: bool,
}

impl Default for QualityConfig {
    fn default() -> QualityConfig {
        QualityConfig {
            sampling_rate: 0.25,
            radius: 0.4,
            num_neighbors: 16,
            k_interp: 3,
            equal_allocation: false,
        }
    }
}

/// Full quality report: the proxy plus its raw ingredients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityReport {
    /// The summary proxy (feeds the Fig. 14/17 harnesses).
    pub proxy: AccuracyProxy,
    /// Mean nearest-sample distance, block-wise sampling.
    pub block_sample_distance: f64,
    /// Mean nearest-sample distance, global FPS with the same budget.
    pub global_sample_distance: f64,
}

/// Evaluates how faithfully the block-parallel operations reproduce the
/// global ones for a given `partition` of `cloud`.
///
/// The same sampled centers (from block-wise FPS) are used for both the
/// global and block-wise grouping, isolating the search-space restriction
/// as the only difference — exactly the numerical difference the paper
/// identifies as the accuracy-loss mechanism (§VI-B).
///
/// # Errors
///
/// Propagates errors from the underlying operations (empty cloud, invalid
/// parameters).
pub fn evaluate_quality(
    cloud: &PointCloud,
    partition: &Partition,
    config: &QualityConfig,
) -> Result<QualityReport> {
    let bppo = BppoConfig::sequential();

    // --- Sampling: block-wise vs global FPS at the same budget. ---
    let sizes: Vec<usize> = partition.blocks.iter().map(|b| b.len()).collect();
    let target = (cloud.len() as f64 * config.sampling_rate).round() as usize;
    let counts = if config.equal_allocation {
        equal_sample_counts(&sizes, target)
    } else {
        block_sample_counts(&sizes, config.sampling_rate)
    };
    let block = block_fps_with_counts(cloud, partition, &counts, &bppo)?;
    let m = block.indices.len().max(1);
    let global = farthest_point_sample(cloud, m, block.indices[0])?;
    let block_sample_distance = mean_sample_distance(cloud, &block.indices);
    let global_sample_distance = mean_sample_distance(cloud, &global.indices);
    let sampling_coverage_ratio = if global_sample_distance > 0.0 {
        block_sample_distance / global_sample_distance
    } else {
        1.0
    };

    // --- Grouping: same centers, global vs block-restricted search. ---
    let centers: Vec<Point3> = block.indices.iter().map(|&i| cloud.point(i)).collect();
    let global_bq = ball_query(cloud, &centers, config.radius, config.num_neighbors)?;
    let block_bq = block_ball_query(
        cloud,
        partition,
        &block.per_block,
        config.radius,
        config.num_neighbors,
        &bppo,
    )?;
    let grouping_recall =
        neighbor_recall(&global_bq.indices, &block_bq.indices, config.num_neighbors);

    // --- Interpolation: KNN of every point among the sampled set. ---
    let sampled_pts: Vec<Point3> = block.indices.iter().map(|&i| cloud.point(i)).collect();
    let feats: Vec<f32> = sampled_pts.iter().map(|p| p.x + p.y + p.z).collect();
    let sources = PointCloud::from_points_features(sampled_pts, feats, 1)?;
    let mut rows = Vec::with_capacity(block.per_block.len());
    let mut cursor = 0usize;
    for b in &block.per_block {
        rows.push((cursor..cursor + b.len()).collect::<Vec<usize>>());
        cursor += b.len();
    }
    let k = config.k_interp.min(sources.len());
    let block_interp = block_interpolate(cloud, partition, &sources, &rows, k, &bppo)?;
    let targets: Vec<Point3> =
        block_interp.target_indices.iter().map(|&i| cloud.point(i)).collect();
    let global_knn = k_nearest_neighbors(&sources, &targets, k)?;
    let interpolation_recall =
        neighbor_recall(&global_knn.indices, &block_interp.neighbor_indices, k);

    Ok(QualityReport {
        proxy: AccuracyProxy { grouping_recall, interpolation_recall, sampling_coverage_ratio },
        block_sample_distance,
        global_sample_distance,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fractal::Fractal;
    use fractalcloud_pointcloud::generate::{scene_cloud, SceneConfig};
    use fractalcloud_pointcloud::partition::{Partitioner, UniformPartitioner};

    #[test]
    fn fractal_quality_is_near_lossless_at_paper_threshold() {
        let cloud = scene_cloud(&SceneConfig::default(), 4096, 7);
        let part = Fractal::with_threshold(256).build(&cloud).unwrap().partition;
        let q = evaluate_quality(&cloud, &part, &QualityConfig::default()).unwrap();
        // 4K points is small for an 8×6×3 m room (sparse neighborhoods make
        // boundary effects relatively larger than at the paper's 33K–289K);
        // 0.8 recall at this density maps to ≪1pp after retraining.
        assert!(q.proxy.grouping_recall > 0.80, "grouping recall {}", q.proxy.grouping_recall);
        assert!(
            q.proxy.interpolation_recall > 0.85,
            "interp recall {}",
            q.proxy.interpolation_recall
        );
        assert!(
            q.proxy.sampling_coverage_ratio < 1.3,
            "coverage ratio {}",
            q.proxy.sampling_coverage_ratio
        );
        let loss = q.proxy.estimated_accuracy_loss_pp();
        assert!(loss < 4.0, "estimated loss {loss}pp too high for fractal@256");
    }

    #[test]
    fn fractal_beats_uniform_on_quality() {
        // Fig. 14's ordering: Fractal ≈ lossless, uniform partitioning
        // (PNNPU) loses significantly.
        let cloud = scene_cloud(&SceneConfig::default(), 4096, 2);
        let f_part = Fractal::with_threshold(256).build(&cloud).unwrap().partition;
        let u_part = UniformPartitioner::with_target_block_size(256).partition(&cloud).unwrap();
        let qf = evaluate_quality(&cloud, &f_part, &QualityConfig::default()).unwrap();
        // PNNPU allocates fixed per-block sample budgets in hardware.
        let qu = evaluate_quality(
            &cloud,
            &u_part,
            &QualityConfig { equal_allocation: true, ..QualityConfig::default() },
        )
        .unwrap();
        let lf = qf.proxy.estimated_accuracy_loss_pp();
        let lu = qu.proxy.estimated_accuracy_loss_pp();
        assert!(lf < lu, "fractal loss {lf} should beat uniform loss {lu}");
    }

    #[test]
    fn tiny_threshold_degrades_quality() {
        // Fig. 17: over-partitioning (th=8) disrupts geometry and hurts the
        // proxy versus th=256.
        let cloud = scene_cloud(&SceneConfig::default(), 4096, 3);
        let big = Fractal::with_threshold(256).build(&cloud).unwrap().partition;
        let tiny = Fractal::with_threshold(8).build(&cloud).unwrap().partition;
        let qb = evaluate_quality(&cloud, &big, &QualityConfig::default()).unwrap();
        let qt = evaluate_quality(&cloud, &tiny, &QualityConfig::default()).unwrap();
        assert!(
            qt.proxy.estimated_accuracy_loss_pp() > qb.proxy.estimated_accuracy_loss_pp(),
            "th=8 loss {} should exceed th=256 loss {}",
            qt.proxy.estimated_accuracy_loss_pp(),
            qb.proxy.estimated_accuracy_loss_pp()
        );
    }

    #[test]
    fn single_block_partition_is_lossless() {
        // th ≥ n: block ops ARE the global ops; every proxy is perfect.
        let cloud = scene_cloud(&SceneConfig::default(), 512, 4);
        let part = Fractal::with_threshold(1024).build(&cloud).unwrap().partition;
        let q = evaluate_quality(&cloud, &part, &QualityConfig::default()).unwrap();
        assert!((q.proxy.grouping_recall - 1.0).abs() < 1e-9);
        assert!((q.proxy.sampling_coverage_ratio - 1.0).abs() < 1e-6);
    }
}

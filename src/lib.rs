//! # FractalCloud
//!
//! A complete Rust reproduction of *"FractalCloud: A Fractal-Inspired
//! Architecture for Efficient Large-Scale Point Cloud Processing"*
//! (HPCA 2026): the Fractal shape-aware partitioner, block-parallel point
//! operations, a cycle-level model of the accelerator and its baselines
//! (PointAcc, Crescent, Mesorasi, PNNPU, GPU), and every substrate they
//! need — point-cloud geometry, synthetic datasets, a DDR4 model, on-chip
//! unit models, an RV32IM control core, and a PNN model zoo.
//!
//! This facade crate re-exports the whole workspace under one name:
//!
//! * [`pointcloud`] — geometry, datasets, reference ops, baseline
//!   partitioners ([`fractalcloud_pointcloud`]);
//! * [`core`] — Fractal + BPPO, the paper's contribution
//!   ([`fractalcloud_core`]);
//! * [`dram`] — the DDR4-2133 model ([`fractalcloud_dram`]);
//! * [`sim`] — on-chip unit models ([`fractalcloud_sim`]);
//! * [`riscv`] — the RV32IM control plane ([`fractalcloud_riscv`]);
//! * [`pnn`] — networks and traces ([`fractalcloud_pnn`]);
//! * [`accel`] — accelerator cost models ([`fractalcloud_accel`]);
//! * [`parallel`] — the scoped-thread worker pool
//!   ([`fractalcloud_parallel`]);
//! * [`serve`] — the batched request-serving engine and TCP front-end
//!   ([`fractalcloud_serve`]).
//!
//! # Quickstart
//!
//! ```
//! use fractalcloud::core::{block_fps, BppoConfig, Fractal};
//! use fractalcloud::pointcloud::generate::{scene_cloud, SceneConfig};
//!
//! // 1. A synthetic indoor scan.
//! let cloud = scene_cloud(&SceneConfig::default(), 8192, 7);
//!
//! // 2. Shape-aware partitioning (Alg. 1, th = 256).
//! let result = Fractal::with_threshold(256).build(&cloud)?;
//! assert!(result.partition.blocks.iter().all(|b| b.len() <= 256));
//!
//! // 3. Block-parallel sampling at a fixed 1/4 rate.
//! let sampled = block_fps(&cloud, &result.partition, 0.25, &BppoConfig::default())?;
//! assert_eq!(sampled.indices.len(), 2048);
//! # Ok::<(), fractalcloud::pointcloud::Error>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use fractalcloud_accel as accel;
pub use fractalcloud_core as core;
pub use fractalcloud_dram as dram;
pub use fractalcloud_parallel as parallel;
pub use fractalcloud_pnn as pnn;
pub use fractalcloud_pointcloud as pointcloud;
pub use fractalcloud_riscv as riscv;
pub use fractalcloud_serve as serve;
pub use fractalcloud_sim as sim;

//! Quickstart: partition a point cloud with Fractal, run block-parallel
//! point operations, and compare the work against global search.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fractalcloud::core::{block_ball_query, block_fps, BppoConfig, Fractal};
use fractalcloud::pointcloud::generate::{scene_cloud, SceneConfig};
use fractalcloud::pointcloud::kernels;
use fractalcloud::pointcloud::ops::{ball_query, farthest_point_sample};
use fractalcloud::pointcloud::{Error, Point3};

fn main() -> Result<(), Error> {
    // Name the dispatched kernel backend up front so the printed numbers
    // are attributable to a specific implementation.
    println!("kernel backend: {}", kernels::active_backend().name());

    // A synthetic indoor scan: coplanar walls/floor, dense furniture
    // clusters, a couple percent outliers — S3DIS-like statistics.
    let n = 16_384;
    let cloud = scene_cloud(&SceneConfig::default(), n, 42);
    println!("cloud: {n} points, bounds {:?}", cloud.bounds().unwrap().extents());

    // --- Fractal partitioning (Alg. 1) ---
    let fractal = Fractal::with_threshold(256);
    let result = fractal.build(&cloud)?;
    let balance = result.partition.balance();
    println!(
        "fractal: {} blocks in {} iterations, sizes {}..{} (imbalance {:.2}), \
         {} traversal elements, 0 sorts",
        result.partition.blocks.len(),
        result.iterations,
        balance.min,
        balance.max,
        balance.imbalance(),
        result.partition.cost.traversal_elements,
    );

    // --- Block-parallel point operations ---
    let cfg = BppoConfig::default();
    let sampled = block_fps(&cloud, &result.partition, 0.25, &cfg)?;
    let grouped = block_ball_query(&cloud, &result.partition, &sampled.per_block, 0.4, 16, &cfg)?;
    println!(
        "block FPS: {} samples, {} distance evals ({} skipped by window-check)",
        sampled.indices.len(),
        sampled.counters.distance_evals,
        sampled.counters.skipped,
    );
    println!(
        "block ball query: {} centers, {} evals, data reuse {:.1}×",
        grouped.center_indices.len(),
        grouped.counters.distance_evals,
        grouped.reuse.reduction_factor(),
    );

    // --- The same operations with global search (the O(n²) baseline) ---
    let global_fps = farthest_point_sample(&cloud, sampled.indices.len(), 0)?;
    let centers: Vec<Point3> = global_fps.indices.iter().map(|&i| cloud.point(i)).collect();
    let global_bq = ball_query(&cloud, &centers, 0.4, 16)?;
    let fps_ratio =
        global_fps.counters.distance_evals as f64 / sampled.counters.distance_evals as f64;
    let bq_ratio =
        global_bq.counters.distance_evals as f64 / grouped.counters.distance_evals as f64;
    println!("global FPS needs {fps_ratio:.1}× the distance evaluations");
    println!("global ball query needs {bq_ratio:.1}× the distance evaluations");
    Ok(())
}

//! A LiDAR-scale processing pipeline: sweep input sizes the way a modern
//! sensor does (30K–300K points per frame, §I), partition each frame with
//! Fractal, and track how the accelerator fleet scales — the Fig. 13
//! experiment in miniature.
//!
//! ```text
//! cargo run --release --example lidar_pipeline           # up to 131K
//! cargo run --release --example lidar_pipeline -- --full # adds 289K
//! ```

use fractalcloud::accel::{Accelerator, DesignModel, DesignParams, GpuModel, Workload};
use fractalcloud::core::Fractal;
use fractalcloud::pnn::ModelConfig;
use fractalcloud::pointcloud::generate::{scene_cloud, SceneConfig};
use fractalcloud::pointcloud::kernels;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let mut frames = vec![8_192usize, 33_000, 131_000];
    if full {
        frames.push(289_000);
    }
    let model = ModelConfig::pointnext_segmentation();
    println!(
        "LiDAR pipeline, {} frames, network {}, kernel backend {}",
        frames.len(),
        model.notation,
        kernels::active_backend().name()
    );
    println!(
        "{:>8} {:>8} {:>7} {:>12} {:>12} {:>12} {:>10}",
        "points", "blocks", "iters", "GPU (ms)", "FC (ms)", "speedup", "fps@FC"
    );

    for &n in &frames {
        let cloud = scene_cloud(&SceneConfig::default(), n, n as u64);
        let fr = Fractal::with_threshold(256).build(&cloud).expect("non-empty frame");
        let w = Workload::prepare_with_threshold(&model, &cloud, 256);
        let gpu = GpuModel::titan_rtx().execute(&w);
        let fc = DesignModel::new(DesignParams::fractalcloud()).execute(&w);
        println!(
            "{:>8} {:>8} {:>7} {:>12.2} {:>12.2} {:>11.1}x {:>10.1}",
            n,
            fr.partition.blocks.len(),
            fr.iterations,
            gpu.latency_ms(),
            fc.latency_ms(),
            fc.speedup_over(&gpu),
            1000.0 / fc.latency_ms(),
        );
    }
    println!("\nThe speedup should grow with frame size: global search scales");
    println!("quadratically while block-parallel processing stays near-linear.");
}

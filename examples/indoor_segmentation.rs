//! End-to-end semantic segmentation of an indoor scene: runs PointNeXt (s)
//! functionally (real arithmetic) in both global-search and block-parallel
//! modes, compares predictions, then costs the same workload on the
//! FractalCloud accelerator model versus the GPU.
//!
//! ```text
//! cargo run --release --example indoor_segmentation
//! ```

use fractalcloud::accel::{Accelerator, DesignModel, DesignParams, GpuModel, Workload};
use fractalcloud::pnn::{ExecMode, ModelConfig, ReferenceExecutor};
use fractalcloud::pointcloud::generate::{scene_cloud, SceneConfig};
use fractalcloud::pointcloud::Error;

fn main() -> Result<(), Error> {
    let model = ModelConfig::pointnext_segmentation();
    println!("network: {} ({} abstraction stages)", model.notation, model.stages.len());

    // --- Functional inference on a small scene (real matmuls) ---
    let cloud = scene_cloud(&SceneConfig::default(), 2048, 7);
    let exec = ReferenceExecutor::new(model.clone(), 1234);
    let global = exec.run(&cloud, ExecMode::Global)?;
    let block = exec.run(&cloud, ExecMode::Block { threshold: 256 })?;

    let mut global_pred = vec![0usize; cloud.len()];
    for (row, &oi) in global.row_index.iter().enumerate() {
        global_pred[oi] = global.predicted_class(row);
    }
    let mut agree = 0usize;
    for (row, &oi) in block.row_index.iter().enumerate() {
        if block.predicted_class(row) == global_pred[oi] {
            agree += 1;
        }
    }
    println!(
        "functional check @2K points: block-parallel predictions agree with \
         global search on {:.1}% of points (same untrained weights)",
        100.0 * agree as f64 / cloud.len() as f64
    );

    // --- Architectural cost at realistic scale ---
    let n = 33_000;
    let w = Workload::prepare(&model, n, 42);
    let gpu = GpuModel::titan_rtx().execute(&w);
    let fc = DesignModel::new(DesignParams::fractalcloud()).execute(&w);
    println!("\narchitectural cost @{n} points:");
    for r in [&gpu, &fc] {
        println!(
            "  {:<16} {:>9.2} ms  ({:>6.2} ms point ops, {:>6.2} ms MLPs)  {:>9.3} mJ",
            r.accelerator,
            r.latency_ms(),
            r.point_op_ms(),
            r.mlp_ms(),
            r.energy_mj()
        );
    }
    println!(
        "  FractalCloud speedup {:.1}×, energy saving {:.0}×",
        fc.speedup_over(&gpu),
        fc.energy_saving_over(&gpu)
    );
    Ok(())
}

//! The chip's control plane: assemble a RISC-V program that configures the
//! fractal engine and RSPU array through the memory-mapped configuration
//! module (§V-A), execute it on the RV32IM core, and inspect the packets
//! the computation modules would receive.
//!
//! ```text
//! cargo run --release --example control_plane
//! ```

use fractalcloud::riscv::program::{configure_fractal_engine, configure_rspu};
use fractalcloud::riscv::{assemble, Cpu, Halt, SystemBus};

fn main() {
    // A driver sequence: partition 33K points at th = 256 (mode 0 =
    // fractal), then launch a block-wise ball query (op 1) with 8250
    // centers and 16 neighbors at radius 0.4 (IEEE-754 bits).
    let radius_bits = 0.4f32.to_bits();
    let part1 = configure_fractal_engine(256, 0x1000, 33_000, 0).replace("ecall", "");
    let part2 = configure_rspu(1, 0x8000, 33_000, 8250, 16, radius_bits);
    let source = format!("{part1}\n{part2}");

    let program = assemble(&source).expect("control program assembles");
    println!("assembled {} bytes of RV32IM machine code", program.len());

    let mut bus = SystemBus::new(1 << 16);
    bus.load_program(0, &program);
    let mut cpu = Cpu::new(bus);
    let halt = cpu.run(100_000).expect("program executes");
    assert_eq!(halt, Halt::Ecall);
    println!(
        "core halted after {} instructions / {} cycles (CPI {:.2})",
        cpu.instret(),
        cpu.cycles(),
        cpu.cycles() as f64 / cpu.instret() as f64
    );

    println!("\nconfiguration packets dispatched:");
    while let Some(pkt) = cpu.bus_mut().config.pop_packet() {
        println!("  {:?} <- {:?}", pkt.target, pkt.words);
    }
    println!("\n(each packet is segmented and padded to its module's");
    println!("instruction length, exactly as the configuration module of");
    println!("§V-A packages control words for the computation units)");
}

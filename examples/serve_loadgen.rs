//! Load generator for the `fractalcloud-serve` TCP front-end: drives a
//! localhost server with concurrent clients at full tilt, then prints
//! sustained throughput, shed/latency statistics, and the server's own
//! per-stage metrics.
//!
//! ```text
//! cargo run --release --example serve_loadgen            # 256 frames, 4 clients
//! cargo run --release --example serve_loadgen -- --quick # CI smoke scale
//! ```
//!
//! The second phase deliberately overloads a deliberately small admission
//! queue to demonstrate the backpressure contract: under overload the
//! server sheds with counted rejections — the queue's high-water mark never
//! passes its bound, so memory stays flat no matter how hard the clients
//! push.

use fractalcloud::core::workspace::{workspace_mode, WorkspaceMode};
use fractalcloud::core::{Pipeline, PipelineConfig, PipelineOutput, Workspace};
use fractalcloud::pointcloud::generate::{scene_cloud, SceneConfig};
use fractalcloud::pointcloud::kernels;
use fractalcloud::pointcloud::PointCloud;
use fractalcloud::serve::{
    ClientError, Engine, FaultPlan, Priority, ServeClient, ServeConfig, TcpServer,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// With the `bench` feature (default), the loadgen installs the counting
/// allocator so the steady-state alloc telemetry below reports real
/// per-frame heap traffic.
#[cfg(feature = "bench")]
#[global_allocator]
static ALLOC: fractalcloud::pointcloud::count_alloc::CountingAllocator =
    fractalcloud::pointcloud::count_alloc::CountingAllocator;

/// Prints the serving counters a dashboard would scrape after this phase:
/// a filtered slice of the engine's Prometheus-style exposition (the full
/// text is one `METRICS` opcode away).
fn print_exposition(text: &str) {
    println!("  exposition     :");
    for line in text.lines() {
        if line.starts_with("fractalcloud_requests_total")
            || line.starts_with("fractalcloud_latency_us")
            || line.starts_with("fractalcloud_queue_wait_p99_us_all")
            || line.starts_with("fractalcloud_trace_enabled")
            || line.starts_with("fractalcloud_overload_level")
            || line.starts_with("fractalcloud_goaway_sent_total")
            || line.starts_with("fractalcloud_retries_total")
        {
            println!("    {line}");
        }
    }
}

fn percentile(sorted_us: &[u64], q: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((q * sorted_us.len() as f64).ceil() as usize).clamp(1, sorted_us.len());
    sorted_us[rank - 1]
}

/// Drives `frames` requests through `clients` connections as fast as they
/// will go (connection `c` submits at `priority_of(c)`); returns (wall
/// seconds, ok count, shed count, sorted latencies).
fn drive(
    addr: std::net::SocketAddr,
    clouds: &[PointCloud],
    cfg: PipelineConfig,
    frames: usize,
    clients: usize,
    priority_of: impl Fn(usize) -> Priority + Sync,
) -> (f64, u64, u64, Vec<u64>) {
    let t0 = Instant::now();
    let per_client = frames.div_ceil(clients);
    let results = fractalcloud_parallel::parallel_map_budget(
        (0..clients).collect::<Vec<_>>(),
        clients,
        |_, c| {
            let mut client = ServeClient::connect(addr).expect("connect loadgen client");
            let mut ok = 0u64;
            let mut shed = 0u64;
            let mut lat_us = Vec::with_capacity(per_client);
            for i in 0..per_client {
                let cloud = &clouds[(c * per_client + i) % clouds.len()];
                let t = Instant::now();
                match client.process_with_priority(cloud, &cfg, priority_of(c)) {
                    Ok(_) => {
                        ok += 1;
                        lat_us.push(t.elapsed().as_micros() as u64);
                    }
                    Err(e) if e.is_shed() => shed += 1,
                    Err(e) => panic!("loadgen hit a non-shed error: {e}"),
                }
            }
            (ok, shed, lat_us)
        },
    );
    let wall = t0.elapsed().as_secs_f64();
    let mut ok = 0;
    let mut shed = 0;
    let mut lat = Vec::new();
    for (o, s, l) in results {
        ok += o;
        shed += s;
        lat.extend(l);
    }
    lat.sort_unstable();
    (wall, ok, shed, lat)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (frames, points, clients) = if quick { (48, 1024, 3) } else { (256, 4096, 4) };
    println!(
        "serve_loadgen: {frames} frames × {points} points, {clients} clients, \
         kernel backend {}, {} lib worker threads",
        kernels::active_backend().name(),
        fractalcloud_parallel::workers(),
    );

    // A few distinct frames plus repeats, so the partition LRU sees hits.
    let clouds: Vec<PointCloud> =
        (0..8).map(|s| scene_cloud(&SceneConfig::default(), points, s)).collect();
    let cfg = PipelineConfig::default();

    // --- Phase 1: sustained throughput on a sanely sized queue ---
    let engine = Arc::new(Engine::start(ServeConfig::from_env()));
    let mut server = TcpServer::bind("127.0.0.1:0", Arc::clone(&engine)).expect("bind localhost");
    let (wall, ok, shed, lat) =
        drive(server.local_addr(), &clouds, cfg, frames, clients, |_| Priority::Normal);
    let m = engine.metrics();
    println!("\nphase 1 — sustained serving");
    println!(
        "  throughput     : {:.1} frames/s ({ok} ok, {shed} shed, {wall:.2} s)",
        ok as f64 / wall
    );
    println!(
        "  latency        : p50 {} µs, p99 {} µs (client-side)",
        percentile(&lat, 0.50),
        percentile(&lat, 0.99)
    );
    println!(
        "  server metrics : admitted {}, completed {}, mean batch {:.2}, cache {}/{} hits, peak queue {}",
        m.admitted, m.completed, m.mean_batch(), m.cache_hits, m.cache_hits + m.cache_misses,
        m.peak_queue_depth
    );
    print_exposition(&engine.metrics_text());
    server.shutdown();
    engine.shutdown();

    // --- Steady-state allocation telemetry (workspace reuse) ---
    // The warmed core hot path (cache-hit shape: partition prebuilt, BPPO
    // half re-run through one workspace + output staging) must allocate
    // nothing per frame in reuse mode; the serve path on cache hits adds
    // only the response buffers it hands to the client. Counted by the
    // measurement allocator when built with the `bench` feature (default).
    if cfg!(feature = "bench") {
        use fractalcloud::pointcloud::count_alloc::allocation_count;
        let cloud = &clouds[0];
        let pipe = Pipeline::new(cfg).expect("default config");
        let mut ws = Workspace::new();
        let built = pipe.partition_ws(cloud, false, &mut ws).expect("partition");
        let mut staging = PipelineOutput::default();
        pipe.run_with_partition_into(cloud, &built, false, &mut ws, &mut staging).expect("warm");
        let mut core_allocs = 0u64;
        for _ in 0..8 {
            let before = allocation_count();
            pipe.run_with_partition_into(cloud, &built, false, &mut ws, &mut staging)
                .expect("warm run");
            core_allocs = core_allocs.max(allocation_count() - before);
        }
        // The recycling serve loop: the cloud is shared (no per-submit
        // clone), the response's buffers go back to the engine's pool via
        // `recycle`, and slots/workspaces/staging come from their own
        // pools — so a warm cache-hit frame touches the heap zero times.
        let engine = Engine::start(ServeConfig::from_env().workers(1));
        let shared = Arc::new(cloud.clone());
        for _ in 0..4 {
            let r = engine.process_shared(Arc::clone(&shared), cfg).expect("serve warmup");
            engine.recycle(r);
        }
        let serve_frames = 16u64;
        let before = allocation_count();
        for _ in 0..serve_frames {
            let r = engine.process_shared(Arc::clone(&shared), cfg).expect("serve warm frame");
            engine.recycle(r);
        }
        let serve_allocs = (allocation_count() - before) / serve_frames;
        engine.shutdown();
        println!("\nsteady-state allocations ({} mode)", workspace_mode().name());
        println!(
            "  core hot path  : {core_allocs} allocs/frame (warmed workspace + output staging)"
        );
        println!(
            "  serve cache-hit: {serve_allocs} allocs/frame (shared cloud, recycled response buffers)"
        );
        if workspace_mode() == WorkspaceMode::Reuse {
            assert_eq!(
                core_allocs, 0,
                "the warmed core hot path must be allocation-free in reuse mode"
            );
            assert_eq!(
                serve_allocs, 0,
                "the recycling serve loop must be allocation-free on cache hits in reuse mode"
            );
            println!(
                "  steady state   : 0 allocs/frame end to end (core hot path AND the\n  recycling serve loop — response buffers circulate client → engine → client)"
            );
        }
    } else {
        println!("\nsteady-state allocations: not measured (build with --features bench)");
    }

    // --- Phase 2: overload a tiny queue to show counted load-shedding ---
    let capacity = 2;
    let engine = Arc::new(Engine::start(
        ServeConfig::from_env().workers(1).queue_capacity(capacity).thread_budget(1),
    ));
    let mut server = TcpServer::bind("127.0.0.1:0", Arc::clone(&engine)).expect("bind localhost");
    let burst_clients = clients * 2;
    let (wall, ok, shed, _) =
        drive(server.local_addr(), &clouds, cfg, frames, burst_clients, |_| Priority::Normal);
    let m = engine.metrics();
    println!("\nphase 2 — overload (1 worker, queue capacity {capacity}, {burst_clients} clients)");
    println!(
        "  throughput     : {:.1} frames/s ({ok} ok, {shed} shed, {wall:.2} s)",
        ok as f64 / wall
    );
    println!(
        "  backpressure   : {} shed as queue-full, peak queue depth {} (bound {capacity})",
        m.shed_queue_full, m.peak_queue_depth
    );
    assert_eq!(m.shed_queue_full, shed, "client-observed sheds must match server counters");
    assert!(
        m.peak_queue_depth <= capacity as u64,
        "queue exceeded its bound: {} > {capacity}",
        m.peak_queue_depth
    );
    assert!(shed > 0 || quick, "an overloaded tiny queue should shed");
    println!(
        "  the admission queue never grew past its bound: excess load was rejected\n  with counted reasons instead of buffered — memory stays flat under overload."
    );
    print_exposition(&engine.metrics_text());
    server.shutdown();
    engine.shutdown();

    // --- Phase 3: mixed-priority overload — weighted dequeue + per-class
    // shedding (Bulk displaced first at the bound, High completing first) ---
    let capacity = 4;
    let engine = Arc::new(Engine::start(
        ServeConfig::from_env().workers(1).queue_capacity(capacity).thread_budget(1),
    ));
    let mut server = TcpServer::bind("127.0.0.1:0", Arc::clone(&engine)).expect("bind localhost");
    let mix_clients = clients * 2;
    // Connection c submits at class c % 3 (High, Normal, Bulk round-robin).
    let (wall, ok, shed, _) =
        drive(server.local_addr(), &clouds, cfg, frames, mix_clients, |c| Priority::ALL[c % 3]);
    let m = engine.metrics();
    println!("\nphase 3 — mixed priorities (1 worker, queue capacity {capacity}, {mix_clients} clients across 3 classes)");
    println!(
        "  throughput     : {:.1} frames/s ({ok} ok, {shed} shed, {wall:.2} s)",
        ok as f64 / wall
    );
    println!(
        "  shed by class  : high={} normal={} bulk={}",
        m.shed_by_class[0], m.shed_by_class[1], m.shed_by_class[2]
    );
    println!(
        "  p99 by class   : high={} µs, normal={} µs, bulk={} µs",
        m.latency_p99_by_class_us[0], m.latency_p99_by_class_us[1], m.latency_p99_by_class_us[2]
    );
    assert_eq!(
        m.shed_by_class.iter().sum::<u64>(),
        m.shed_queue_full,
        "per-class queue-bound sheds must sum to the global counter"
    );
    assert_eq!(m.shed_queue_full, shed, "client-observed sheds must match server counters");
    assert!(
        m.peak_queue_depth <= capacity as u64,
        "queue exceeded its bound: {} > {capacity}",
        m.peak_queue_depth
    );
    println!(
        "  under a mixed-class flood the queue bound sheds the lowest class first\n  (displacement) while the weighted schedule keeps High latency ahead."
    );
    print_exposition(&engine.metrics_text());
    server.shutdown();
    engine.shutdown();

    // --- Phase 4: chaos soak — seeded fault injection over live TCP ---
    // A fixed-seed storm of worker panics, block errors, block delays and
    // net-write errors. The invariant under test: every request gets
    // exactly one outcome (response, counted error, or a visible
    // connection drop) — never a hung waiter — and the engine survives
    // every worker panic without restarting.
    let plan = FaultPlan::parse(
        "panic@worker:0.08,err@block:0.02,delay@block:200us:0.05,err@net_write:0.01;seed=4242",
    )
    .expect("chaos fault plan");
    let engine =
        Arc::new(Engine::start(ServeConfig::from_env().workers(2).queue_capacity(64).faults(plan)));
    let mut server = TcpServer::bind("127.0.0.1:0", Arc::clone(&engine)).expect("bind localhost");
    let addr = server.local_addr();
    let connect = |note: &str| {
        let mut c = ServeClient::connect(addr).unwrap_or_else(|e| panic!("{note}: {e}"));
        c.set_read_timeout(Some(Duration::from_secs(10))).expect("set chaos read timeout");
        c
    };
    let mut client = connect("connect chaos client");
    let target_panics = 10u64;
    let max_requests = frames as u64 * 40; // bounded cap so the soak always terminates
    let (mut sent, mut ok, mut internal, mut shed, mut conn_drops, mut hung) =
        (0u64, 0u64, 0u64, 0u64, 0u64, 0u64);
    let t0 = Instant::now();
    while engine.metrics().worker_panics < target_panics && sent < max_requests {
        let cloud = &clouds[sent as usize % clouds.len()];
        // Every 8th request carries a 1 ms deadline; under injected delays
        // it may shed retryably — either way it must resolve.
        let deadline_ms = if sent % 8 == 7 { 1 } else { 0 };
        sent += 1;
        match client.process_with_options(cloud, &cfg, Priority::Normal, deadline_ms) {
            Ok(_) => ok += 1,
            Err(e) if e.is_shed() => shed += 1,
            Err(ClientError::Server { code, .. })
                if code == fractalcloud::serve::protocol::status::INTERNAL_ERROR =>
            {
                internal += 1;
            }
            Err(ClientError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
                ) =>
            {
                // 10 s with no bytes at all: a genuinely hung request —
                // the one outcome the failure model forbids.
                hung += 1;
                client = connect("reconnect after hang");
            }
            Err(ClientError::Server { .. }) => {
                panic!("chaos soak hit an unexpected server status");
            }
            Err(_) => {
                // An injected net-write fault killed the connection; the
                // drop is visible (not silent), so the contract holds —
                // reconnect and keep pushing.
                conn_drops += 1;
                client = connect("reconnect after injected net fault");
            }
        }
    }
    let wall = t0.elapsed().as_secs_f64();
    let m = engine.metrics();
    let health = client.health().expect("health probe over TCP");
    println!("\nphase 4 — chaos soak (seeded faults: worker panics, block errors, delays, net-write errors)");
    println!(
        "  outcomes       : {ok} ok, {internal} internal, {shed} shed, {conn_drops} conn drops \
         of {sent} sent ({wall:.2} s)"
    );
    println!("  fault layer    : {} injections, seed 4242", m.faults_injected);
    println!("  chaos: {hung} hung requests");
    println!(
        "  engine survived {} worker panics ({} workers respawned)",
        m.worker_panics, m.workers_respawned
    );
    assert_eq!(hung, 0, "the failure model forbids hung requests");
    assert_eq!(
        sent,
        ok + internal + shed + conn_drops,
        "every request must have exactly one accounted outcome"
    );
    assert!(
        m.worker_panics >= target_panics,
        "the soak should have produced >= {target_panics} worker panics, got {}",
        m.worker_panics
    );
    assert!(health.live, "the engine must still be live after the storm: {health:?}");
    print_exposition(&engine.metrics_text());
    server.shutdown();
    engine.shutdown();

    // --- Phase 5: inference serving — eager vs Mesorasi delayed aggregation ---
    // The same frames now carry a full network forward pass (`INFER` on
    // the wire). Eager gathers neighbor features and runs the stage-1 MLP
    // on centers × nsample duplicated rows; delayed runs it once per
    // unique point and max-aggregates afterwards. Logits are bit-identical
    // — the schedules differ only in where the MACs land.
    use fractalcloud::serve::protocol::{WireInferRequest, AGG_DELAYED, AGG_EAGER};
    use fractalcloud::serve::ModelConfig;
    let (infer_points, infer_frames) = if quick { (512, 4) } else { (1024, 8) };
    let infer_clouds: Vec<PointCloud> =
        (0..2).map(|s| scene_cloud(&SceneConfig::default(), infer_points, 90 + s)).collect();
    let notation = ModelConfig::table1().remove(0).notation;
    let request = |agg: u8| WireInferRequest {
        threshold: cfg.threshold as u32,
        seed: 42,
        aggregation: agg,
        notation: notation.clone(),
    };
    let engine = Arc::new(Engine::start(ServeConfig::from_env().workers(1)));
    let mut server = TcpServer::bind("127.0.0.1:0", Arc::clone(&engine)).expect("bind localhost");
    let mut client = ServeClient::connect(server.local_addr()).expect("connect infer client");
    // Warm both schedules (partition LRU + cached executors) and check the
    // cross-schedule bit-identity while at it.
    let mut last = None;
    for c in &infer_clouds {
        let e = client.infer(c, &request(AGG_EAGER)).expect("eager warmup");
        let d = client.infer(c, &request(AGG_DELAYED)).expect("delayed warmup");
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(
            bits(&e.logits),
            bits(&d.logits),
            "eager and delayed must produce bit-identical logits"
        );
        last = Some(d);
    }
    let mut timed = |agg: u8| {
        let t0 = Instant::now();
        for i in 0..infer_frames {
            client
                .infer(&infer_clouds[i % infer_clouds.len()], &request(agg))
                .expect("infer frame");
        }
        t0.elapsed().as_secs_f64()
    };
    let eager_wall = timed(AGG_EAGER);
    let delayed_wall = timed(AGG_DELAYED);
    let last = last.expect("warmed at least one frame");
    let speedup = eager_wall / delayed_wall;
    println!(
        "\nphase 5 — inference serving ({notation}, {infer_points} pts, {infer_frames} warm frames per schedule)"
    );
    println!(
        "  eager          : {:.1} frames/s (gather-then-MLP)",
        infer_frames as f64 / eager_wall
    );
    println!(
        "  delayed        : {:.1} frames/s ({} MACs moved, {} MACs saved per frame)",
        infer_frames as f64 / delayed_wall,
        last.macs_moved,
        last.macs_saved
    );
    println!("  logits         : bit-identical across schedules (checked over TCP)");
    println!("  delayed-vs-eager speedup: {speedup:.2}x");
    assert!(last.macs_saved > 0, "delayed aggregation must report saved MACs");
    assert!(
        speedup > 1.0 || quick,
        "delayed aggregation should outrun eager at this scale (got {speedup:.2}x)"
    );
    // This phase scrapes over the wire — the `METRICS` opcode itself.
    print_exposition(&client.metrics_text().expect("METRICS over TCP"));
    server.shutdown();
    engine.shutdown();

    // --- Phase 6: progressive LOD streaming — coarse-to-fine over TCP ---
    // A STREAM request paints a small prefix of the frame's coarse-to-fine
    // FPS ordering immediately, then refines in credit-gated chunks. The
    // numbers that matter: time-to-first-byte (first chunk) vs the full
    // monolithic response, per-frame wire allocations on a warm connection
    // (the per-connection encode/decode scratch must be reused, not
    // reallocated), and — after a deliberate mid-stream cancel — the
    // engine's stream gauge returning to zero: no hung streams.
    use fractalcloud::serve::protocol::WireStreamOpen;
    use fractalcloud::serve::StreamEvent;
    let engine = Arc::new(Engine::start(ServeConfig::from_env().workers(2)));
    let mut server = TcpServer::bind("127.0.0.1:0", Arc::clone(&engine)).expect("bind localhost");
    let mut client = ServeClient::connect(server.local_addr()).expect("connect stream client");
    let stream_cloud = &clouds[0];
    let first_paint = 64u32;
    let open = WireStreamOpen { first_paint, chunk: 0, credits: 0 };
    // Warm both paths: the first stream computes (and caches) the frame's
    // full FPS ordering; the direct request warms the partition LRU.
    client.stream_frame(stream_cloud, &cfg, Priority::High, 0, &open).expect("stream warmup");
    client.process(stream_cloud, &cfg).expect("direct warmup");

    let stream_frames = if quick { 4 } else { 16 };
    let mut ttfb_us = Vec::with_capacity(stream_frames);
    let mut chunks_seen = 0u64;
    for _ in 0..stream_frames {
        let t = Instant::now();
        client.stream_open(stream_cloud, &cfg, Priority::High, 0, &open).expect("open stream");
        let first = match client.stream_next().expect("stream event") {
            StreamEvent::Chunk(c) => c,
            StreamEvent::End(e) => panic!("stream ended before first paint: {e:?}"),
        };
        ttfb_us.push(t.elapsed().as_micros() as u64);
        chunks_seen += 1;
        // Drain to full depth, replenishing one credit per refinement.
        let (mut depth, total) = (first.hi, first.total);
        loop {
            if depth < total {
                client.stream_credit().expect("stream credit");
            }
            match client.stream_next().expect("stream event") {
                StreamEvent::Chunk(c) => {
                    depth = c.hi;
                    chunks_seen += 1;
                }
                StreamEvent::End(_) => break,
            }
        }
    }
    ttfb_us.sort_unstable();
    let mut full_us = Vec::with_capacity(stream_frames);
    for _ in 0..stream_frames {
        let t = Instant::now();
        client.process(stream_cloud, &cfg).expect("warm full frame");
        full_us.push(t.elapsed().as_micros() as u64);
    }
    full_us.sort_unstable();
    let (ttfb_p50, full_p50) = (percentile(&ttfb_us, 0.50), percentile(&full_us, 0.50));

    // Warm-connection wire allocations: the per-connection scratch buffers
    // absorb request reads and response encodes, so the per-frame count
    // stays flat no matter how many frames the connection has served.
    if cfg!(feature = "bench") {
        use fractalcloud::pointcloud::count_alloc::allocation_count;
        for _ in 0..2 {
            client.process(stream_cloud, &cfg).expect("wire warmup");
        }
        let n = 8u64;
        let before = allocation_count();
        for _ in 0..n {
            client.process(stream_cloud, &cfg).expect("wire warm frame");
        }
        let wire_allocs = (allocation_count() - before) / n;
        println!("\nphase 6 — progressive LOD streaming ({stream_frames} streams, first paint {first_paint} samples)");
        println!(
            "  wire-allocs/frame: {wire_allocs} (warm connection, per-connection scratch reused)"
        );
    } else {
        println!("\nphase 6 — progressive LOD streaming ({stream_frames} streams, first paint {first_paint} samples)");
        println!("  wire-allocs/frame: not measured (build with --features bench)");
    }
    println!(
        "  ttfb           : p50 {ttfb_p50} µs first chunk vs p50 {full_p50} µs full response \
         ({chunks_seen} chunks streamed)"
    );
    assert!(
        ttfb_p50 <= full_p50 || quick,
        "warm first paint should land no later than the warm full response \
         ({ttfb_p50} µs vs {full_p50} µs)"
    );

    // A viewer losing interest: cancel after the first paint, and the
    // server provably stops refining (the engine-side chunk counter halts).
    client
        .stream_open(
            stream_cloud,
            &cfg,
            Priority::Normal,
            0,
            &WireStreamOpen { first_paint: 32, chunk: 32, credits: 1 },
        )
        .expect("open cancellable stream");
    match client.stream_next().expect("first paint") {
        StreamEvent::Chunk(c) => assert!(c.hi < c.total, "cancel demo needs refinements left"),
        StreamEvent::End(e) => panic!("stream ended before first paint: {e:?}"),
    }
    client.cancel().expect("send cancel");
    let end = loop {
        match client.stream_next().expect("stream event") {
            StreamEvent::Chunk(_) => {} // already in flight when the cancel landed
            StreamEvent::End(end) => break end,
        }
    };
    assert!(end.cancelled, "the server must acknowledge the mid-stream cancel");
    println!(
        "  cancel         : acknowledged after {} chunks / {} samples — refinement stopped early",
        end.chunks, end.delivered
    );

    let m = engine.metrics();
    let health = client.health().expect("health over TCP");
    assert_eq!(health.streams_open, 0, "every stream must be closed at phase end: {health:?}");
    println!(
        "  zero hung streams: streams_open=0 (opened {}, closed {}, cancelled {}, chunks sent {})",
        m.streams_opened, m.streams_closed, m.streams_cancelled, m.stream_chunks_sent
    );
    server.shutdown();
    engine.shutdown();

    // --- Phase 7: graceful degradation — adaptive brown-out, then a live
    // zero-downtime drain with a self-healing client ---
    // An aggressive controller tuning (any measurable queue wait counts as
    // pressure, relax-through-traffic effectively off) so the storm
    // demonstrably climbs the brown-out ladder; once the clients stop, idle
    // decay must walk the level back to Normal with no operator action.
    use fractalcloud::serve::{BrownoutConfig, RetryPolicy};
    let brownout = BrownoutConfig {
        enabled: true,
        forced: None,
        escalate_wait_us: 200,
        relax_wait_us: 100,
        escalate_after: 1,
        relax_after: 1_000_000,
        dwell_ms: 1,
    };
    let engine = Arc::new(Engine::start(
        ServeConfig::from_env().workers(1).thread_budget(1).queue_capacity(32).brownout(brownout),
    ));
    let mut server = TcpServer::bind("127.0.0.1:0", Arc::clone(&engine)).expect("bind localhost");
    let storm_clients = clients * 2;
    let (wall, ok, shed, _) =
        drive(server.local_addr(), &clouds, cfg, frames, storm_clients, |_| Priority::Normal);
    let m = engine.metrics();
    let by_level = |l: usize| m.requests_degraded.iter().map(|per_class| per_class[l]).sum::<u64>();
    println!(
        "\nphase 7 — graceful degradation (adaptive brown-out, {storm_clients} clients on 1 worker)"
    );
    println!(
        "  throughput     : {:.1} frames/s ({ok} ok, {shed} shed, {wall:.2} s)",
        ok as f64 / wall
    );
    println!(
        "  degraded by level: l1={} l2={} l3={} ({} of {ok} ok responses at reduced budget)",
        by_level(0),
        by_level(1),
        by_level(2),
        m.degraded_total()
    );
    assert!(m.degraded_total() > 0, "the storm should have pushed the controller into brown-out");
    // Degraded responses are still correct — just shallower: each is the
    // exact budget-k prefix of the full quality ordering, so a dashboard
    // shows quality fading under load instead of requests failing.
    println!(
        "  under pressure the server answered at a reduced LOD budget (exact\n  prefix of the full ordering) instead of shedding or queue-bloating."
    );
    let recover_deadline = Instant::now() + Duration::from_secs(10);
    while engine.overload_level().as_u8() != 0 {
        assert!(Instant::now() < recover_deadline, "controller never recovered after the storm");
        std::thread::sleep(Duration::from_millis(2));
    }
    println!("  recovered: overload_level=0");
    print_exposition(&engine.metrics_text());
    server.shutdown();
    engine.shutdown();

    // Zero-downtime drain: the draining server answers work with GOAWAY
    // (retryable) while probes stay inline; the self-healing client rides
    // the seeded backoff schedule, reconnects, and replays the request the
    // moment the engine resumes.
    let engine = Arc::new(Engine::start(ServeConfig::from_env().workers(1)));
    let mut server = TcpServer::bind("127.0.0.1:0", Arc::clone(&engine)).expect("bind localhost");
    let mut client = ServeClient::connect(server.local_addr()).expect("connect drain client");
    client.process(&clouds[0], &cfg).expect("pre-drain frame");
    engine.drain();
    match client.process(&clouds[0], &cfg) {
        Err(ClientError::Server { code, .. })
            if code == fractalcloud::serve::protocol::status::GOAWAY => {}
        other => panic!("a draining server must answer GOAWAY, got {other:?}"),
    }
    assert!(client.health().expect("health while draining").draining);
    let resumer = {
        let engine = Arc::clone(&engine);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(120));
            engine.resume();
        })
    };
    let mut policy = RetryPolicy::new(8, 0x10AD).base_delay(Duration::from_millis(25));
    client
        .process_retry(&clouds[0], &cfg, Priority::Normal, 0, &mut policy)
        .expect("the retry loop must outlast the drain window");
    resumer.join().expect("resume thread");
    engine.record_retries(client.retries());
    let m = engine.metrics();
    assert!(client.retries() >= 1, "healing through a drain takes at least one retry");
    assert!(m.goaway_sent >= 1, "GOAWAY must be counted: {m:?}");
    println!(
        "  drain round-trip: goaway observed, reconnected ok after {} retries (goaway_sent={})",
        client.retries(),
        m.goaway_sent
    );
    print_exposition(&engine.metrics_text());
    server.shutdown();
    engine.shutdown();
}

//! Tests pinning the paper's concrete worked examples and reported
//! structural numbers.

use fractalcloud::core::Fractal;
use fractalcloud::pointcloud::generate::{scene_cloud, SceneConfig};
use fractalcloud::pointcloud::partition::{KdTreePartitioner, Partitioner};
use fractalcloud::pointcloud::{Point3, PointCloud};
use fractalcloud::sim::Sorter;

/// Fig. 6's 80-point example: th = 24 must produce the 43/37 →
/// (19,24)/(17,20) split structure with two iterations.
#[test]
fn fig6_worked_example() {
    let mut pts = Vec::new();
    for i in 0..19 {
        pts.push(Point3::new(0.1 + i as f32 * 0.01, 0.1 + i as f32 * 0.01, 0.5));
    }
    for i in 0..24 {
        pts.push(Point3::new(0.1 + i as f32 * 0.01, 0.9 - i as f32 * 0.01, 0.5));
    }
    for i in 0..17 {
        pts.push(Point3::new(0.9 - i as f32 * 0.01, 0.1 + i as f32 * 0.01, 0.5));
    }
    for i in 0..20 {
        pts.push(Point3::new(0.9 - i as f32 * 0.01, 0.9 - i as f32 * 0.01, 0.5));
    }
    let r = Fractal::with_threshold(24).build(&PointCloud::from_points(pts)).unwrap();
    let sizes: Vec<usize> = r.partition.blocks.iter().map(|b| b.len()).collect();
    assert_eq!(sizes, vec![19, 24, 17, 20]);
    assert_eq!(r.iterations, 2);
    assert_eq!(r.tree.num_leaves(), 4);
    // DFT order: B3, B4, B5, B6 contiguous in memory.
    let perm = r.partition.layout_permutation();
    assert_eq!(perm.len(), 80);
}

/// Fig. 5's anchor counts: KD-tree sorts and fractal traversal bounds.
#[test]
fn fig5_sort_and_traversal_counts() {
    // 1K points, BS 64 → 15 sorts (measured on the real KD builder).
    let cloud = fractalcloud::pointcloud::generate::uniform_cube(1024, 1);
    let kd = KdTreePartitioner::new(64).partition(&cloud).unwrap();
    assert_eq!(kd.cost.sort_invocations, 15);
    // 289K points, BS 256 → 2047 sorts (analytic, matches the figure).
    assert_eq!(Sorter::kd_tree_sorts(289_000, 256), 2047);
    // Fractal bound: ceil(log2(n/BS)).
    assert_eq!(Fractal::expected_iterations(1024, 64), 4);
    assert_eq!(Fractal::expected_iterations(289_000, 256), 11);
}

/// §VI-D: outliers in S3DIS-like scenes are 0.5–2.5% of points and the
/// fractal threshold bounds the imbalance regardless.
#[test]
fn outlier_discussion_holds() {
    for frac in [0.005, 0.025] {
        let cfg = SceneConfig { outlier_fraction: frac, ..SceneConfig::default() };
        let cloud = scene_cloud(&cfg, 20_000, 3);
        let r = Fractal::with_threshold(256).build(&cloud).unwrap();
        let max = r.partition.blocks.iter().map(|b| b.len()).max().unwrap();
        assert!(max <= 256, "outlier fraction {frac}: max block {max}");
    }
}

/// §VI-D: the worst-case imbalance of fractal is bounded by th even for
/// "two distant dense regions", while uniform partitioning can reach the
/// full input size in one cell.
#[test]
fn two_distant_clusters_bound() {
    use fractalcloud::pointcloud::generate::uniform_cube;
    use fractalcloud::pointcloud::partition::UniformPartitioner;
    // Two dense unit cubes 100 m apart.
    let mut pts: Vec<Point3> = uniform_cube(5000, 1).iter().collect();
    pts.extend(uniform_cube(5000, 2).iter().map(|p| p + Point3::splat(100.0)));
    let cloud = PointCloud::from_points(pts);

    let fr = Fractal::with_threshold(256).build(&cloud).unwrap();
    let fr_max = fr.partition.blocks.iter().map(|b| b.len()).max().unwrap();
    assert!(fr_max <= 256);

    // A 4×4×4 uniform grid puts each whole cluster in one or two cells.
    let un = UniformPartitioner::new(4, 4, 4).partition(&cloud).unwrap();
    let un_max = un.blocks.iter().map(|b| b.len()).max().unwrap();
    assert!(un_max > 2000, "uniform worst cell {un_max} should be huge");
}

/// Table II consistency: peak GOPS derives from the PE array at 1 GHz.
#[test]
fn table2_peak_performance_consistency() {
    use fractalcloud::accel::AcceleratorConfig;
    use fractalcloud::sim::SystolicConfig;
    let pe = SystolicConfig::pe16x16();
    for c in AcceleratorConfig::table2() {
        assert_eq!(pe.peak_gops(c.freq_ghz), c.peak_gops, "{}", c.name);
    }
}

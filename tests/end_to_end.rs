//! Cross-crate integration tests: the full pipeline from synthetic cloud to
//! accelerator reports.

use fractalcloud::accel::{Accelerator, DesignModel, DesignParams, GpuModel, Segments, Workload};
use fractalcloud::core::{block_fps, BppoConfig, Fractal};
use fractalcloud::pnn::{ExecMode, ModelConfig, OpTrace, ReferenceExecutor};
use fractalcloud::pointcloud::generate::{scene_cloud, SceneConfig};

#[test]
fn full_stack_pipeline_produces_consistent_reports() {
    let model = ModelConfig::pointnext_segmentation();
    let w = Workload::prepare(&model, 8192, 3);

    let gpu = GpuModel::titan_rtx().execute(&w);
    let fc = DesignModel::new(DesignParams::fractalcloud()).execute(&w);
    let pa = DesignModel::new(DesignParams::pointacc()).execute(&w);
    let cr = DesignModel::new(DesignParams::crescent()).execute(&w);

    // Everything runs and produces positive latency/energy.
    for r in [&gpu, &fc, &pa, &cr] {
        assert!(r.latency_ms() > 0.0, "{}", r.accelerator);
        assert!(r.energy_mj() > 0.0, "{}", r.accelerator);
        assert!(r.avg_power_w() > 0.0, "{}", r.accelerator);
    }

    // The paper's ordering at this scale: FC fastest, Crescent between
    // FC and PointAcc.
    assert!(fc.latency_ms() < cr.latency_ms());
    assert!(cr.latency_ms() < pa.latency_ms());

    // The accelerators run at milliwatt-to-watt power; the GPU at tens of
    // watts or more.
    assert!(fc.avg_power_w() < 3.0, "FC power {}", fc.avg_power_w());
    assert!(gpu.avg_power_w() > 10.0, "GPU power {}", gpu.avg_power_w());
}

#[test]
fn trace_and_segments_agree_on_structure() {
    for model in ModelConfig::table1() {
        let trace = OpTrace::build(&model, 4096);
        let segs = Segments::parse(&trace);
        assert_eq!(segs.abstraction.len(), model.stages.len(), "{}", model.notation);
        assert_eq!(segs.propagation.len(), model.propagation.len(), "{}", model.notation);
        // The segmented MACs must equal the trace MACs (nothing lost).
        let seg_macs: u64 = segs
            .stem
            .iter()
            .chain(segs.head.iter())
            .chain(segs.abstraction.iter().flat_map(|sa| sa.blocks.iter()))
            .chain(segs.propagation.iter().flat_map(|fp| fp.mlp.iter()))
            .map(|s| (s.rows * s.cin * s.cout) as u64)
            .sum::<u64>()
            + segs
                .abstraction
                .iter()
                .map(|sa| {
                    let mut macs = 0u64;
                    let mut cin = sa.cin as u64;
                    for &cout in &sa.mlp {
                        macs += (sa.n_out * sa.nsample) as u64 * cin * cout as u64;
                        cin = cout as u64;
                    }
                    macs
                })
                .sum::<u64>();
        assert_eq!(seg_macs, trace.total_macs(), "{}", model.notation);
    }
}

#[test]
fn functional_and_architectural_paths_share_the_partition_structure() {
    // The block sizes the accelerator model costs must be the block sizes
    // the functional BPPO actually produces.
    let cloud = scene_cloud(&SceneConfig::default(), 4096, 9);
    let model = ModelConfig::pointnext_segmentation();
    let w = Workload::prepare_with_threshold(&model, &cloud, 256);
    let fr = Fractal::with_threshold(256).build(&cloud).unwrap();
    let sizes: Vec<usize> = fr.partition.blocks.iter().map(|b| b.len()).collect();
    assert_eq!(w.fractal_blocks, sizes);

    // And the functional sampler works on that exact partition.
    let fps = block_fps(&cloud, &fr.partition, 0.25, &BppoConfig::default()).unwrap();
    assert_eq!(fps.indices.len(), 1024);
}

#[test]
fn reference_executor_runs_all_models_both_modes() {
    let cloud = scene_cloud(&SceneConfig::default(), 512, 5);
    for model in [
        ModelConfig::pointnetpp_classification(),
        ModelConfig::pointnetpp_segmentation(),
        ModelConfig::pointnext_segmentation(),
    ] {
        let classes = model.classes;
        let has_prop = model.task.has_propagation();
        let exec = ReferenceExecutor::new(model, 77);
        for mode in [ExecMode::Global, ExecMode::Block { threshold: 128 }] {
            let out = exec.run(&cloud, mode).unwrap();
            let expected_rows = if has_prop { 512 } else { 1 };
            assert_eq!(out.logits.len(), expected_rows * classes);
            assert!(out.logits.iter().all(|v| v.is_finite()));
        }
    }
}

#[test]
fn speedup_grows_with_scale_end_to_end() {
    let model = ModelConfig::pointnext_segmentation();
    let mut last = 0.0;
    for n in [2048usize, 8192, 33_000] {
        let w = Workload::prepare(&model, n, 1);
        let fc = DesignModel::new(DesignParams::fractalcloud()).execute(&w);
        let pa = DesignModel::new(DesignParams::pointacc()).execute(&w);
        let gap = fc.speedup_over(&pa);
        assert!(gap > last * 0.9, "gap should not collapse: {last} → {gap} at {n}");
        last = gap;
    }
    assert!(last > 4.0, "FC vs PointAcc at 33K must exceed 4×, got {last}");
}

//! Cross-crate property-based tests (proptest) over the core invariants.

use fractalcloud::core::{block_fps, block_sample_counts, BppoConfig, Fractal, WindowCheck};
use fractalcloud::dram::{Controller, DramConfig, Request};
use fractalcloud::pointcloud::ops::{ball_query, farthest_point_sample, k_nearest_neighbors};
use fractalcloud::pointcloud::partition::{
    KdTreePartitioner, OctreePartitioner, Partitioner, UniformPartitioner,
};
use fractalcloud::pointcloud::{Point3, PointCloud};
use fractalcloud::riscv::{assemble, decode};
use proptest::prelude::*;

fn arb_cloud(max_n: usize) -> impl Strategy<Value = PointCloud> {
    proptest::collection::vec((-100.0f32..100.0, -100.0f32..100.0, -50.0f32..50.0), 1..max_n)
        .prop_map(|v| {
            PointCloud::from_points(v.into_iter().map(|(x, y, z)| Point3::new(x, y, z)).collect())
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every partitioner produces an exact partition of the input, and the
    /// tree-based ones respect their thresholds.
    #[test]
    fn partitioners_are_exact((cloud, th) in (arb_cloud(400), 2usize..64)) {
        let n = cloud.len();
        let fr = Fractal::with_threshold(th).build(&cloud).unwrap();
        prop_assert!(fr.partition.is_exact_partition_of(n));
        fr.tree.validate().map_err(TestCaseError::fail)?;

        let kd = KdTreePartitioner::new(th).partition(&cloud).unwrap();
        prop_assert!(kd.is_exact_partition_of(n));
        prop_assert!(kd.blocks.iter().all(|b| b.len() <= th));

        let oc = OctreePartitioner::new(th).partition(&cloud).unwrap();
        prop_assert!(oc.is_exact_partition_of(n));

        let un = UniformPartitioner::with_target_block_size(th).partition(&cloud).unwrap();
        prop_assert!(un.is_exact_partition_of(n));
    }

    /// Fractal leaves are spatially disjoint from their siblings along the
    /// parent's split axis.
    #[test]
    fn fractal_split_separates_children(cloud in arb_cloud(300)) {
        let fr = Fractal::with_threshold(16).build(&cloud).unwrap();
        for node in fr.tree.nodes() {
            if let (Some((l, r)), Some((axis, mid))) = (node.children, node.split) {
                let left = fr.tree.node(l);
                let right = fr.tree.node(r);
                prop_assert!(left.aabb.max().coord(axis) <= mid + 1e-4);
                prop_assert!(right.aabb.min().coord(axis) >= mid - 1e-4);
            }
        }
    }

    /// Block FPS with th ≥ n equals global FPS from the same start.
    #[test]
    fn single_block_fps_equals_global(cloud in arb_cloud(200), rate in 0.1f64..0.9) {
        let fr = Fractal::with_threshold(cloud.len().max(1)).build(&cloud).unwrap();
        prop_assume!(fr.partition.blocks.len() == 1);
        let block = block_fps(&cloud, &fr.partition, rate, &BppoConfig::sequential()).unwrap();
        if !block.indices.is_empty() {
            let start = fr.partition.blocks[0].indices[0];
            let global = farthest_point_sample(&cloud, block.indices.len(), start).unwrap();
            prop_assert_eq!(block.indices, global.indices);
        }
    }

    /// Fixed-rate sample allocation always sums to the rounded target and
    /// never exceeds any block.
    #[test]
    fn sample_counts_invariants(
        sizes in proptest::collection::vec(1usize..500, 1..40),
        rate in 0.0f64..1.0,
    ) {
        let counts = block_sample_counts(&sizes, rate);
        let total: usize = sizes.iter().sum();
        let target = ((total as f64) * rate).round() as usize;
        prop_assert_eq!(counts.iter().sum::<usize>(), target);
        for (c, s) in counts.iter().zip(&sizes) {
            prop_assert!(c <= s);
        }
    }

    /// Ball query neighbors are within the radius (before padding) and KNN
    /// rows are sorted by distance.
    #[test]
    fn neighbor_search_contracts(cloud in arb_cloud(200), radius in 1.0f32..50.0) {
        let centers: Vec<Point3> = cloud.iter().take(8).collect();
        let bq = ball_query(&cloud, &centers, radius, 8).unwrap();
        for (c, &center) in centers.iter().enumerate() {
            for (slot, &i) in bq.row(c).iter().enumerate() {
                if slot < bq.found[c] {
                    prop_assert!(cloud.point(i).distance(center) <= radius + 1e-4);
                }
            }
        }
        let k = 4.min(cloud.len());
        let knn = k_nearest_neighbors(&cloud, &centers, k).unwrap();
        for c in 0..centers.len() {
            let d = knn.distance_row(c);
            for w in d.windows(2) {
                prop_assert!(w[0] <= w[1]);
            }
        }
    }

    /// The window check never reports more valid candidates than exist and
    /// the LOD always lands on a valid candidate.
    #[test]
    fn window_check_invariants(
        n in 1usize..300,
        marks in proptest::collection::vec(0usize..300, 0..64),
    ) {
        let mut wc = WindowCheck::new(n);
        for m in marks {
            if m < n {
                wc.mark_sampled(m);
            }
        }
        let mut count = 0;
        let mut pos = 0;
        while let Some(i) = wc.next_valid(pos) {
            prop_assert!(wc.is_valid(i));
            pos = i + 1;
            count += 1;
        }
        prop_assert_eq!(count, wc.valid_count());
    }

    /// The DRAM controller serves any in-range request trace to completion
    /// without protocol violations (Bank::issue panics on violations).
    #[test]
    fn dram_controller_protocol_holds(
        addrs in proptest::collection::vec(0u64..(1 << 28), 1..64),
        writes in proptest::collection::vec(any::<bool>(), 64),
    ) {
        let mut ctrl = Controller::new(DramConfig::ddr4_2133());
        let reqs: Vec<Request> = addrs
            .iter()
            .zip(&writes)
            .map(|(&a, &w)| Request { addr: a & !63, is_write: w, arrival: 0 })
            .collect();
        let r = ctrl.run_trace(&reqs);
        prop_assert_eq!(r.requests, reqs.len() as u64);
        prop_assert!(r.cycles > 0);
        let classified = r.row_hits + r.row_misses + r.row_conflicts;
        prop_assert_eq!(classified, reqs.len() as u64);
    }

    /// Round trip: assembling an `addi/add/mul` program and decoding it
    /// recovers the operands.
    #[test]
    fn riscv_assemble_decode_round_trip(
        rd in 1u8..32, rs1 in 0u8..32, rs2 in 0u8..32, imm in -2048i64..2048,
    ) {
        let src = format!(
            "addi x{rd}, x{rs1}, {imm}\nadd x{rd}, x{rs1}, x{rs2}\nmul x{rd}, x{rs1}, x{rs2}"
        );
        let code = assemble(&src).unwrap();
        let words: Vec<u32> = code
            .chunks(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        use fractalcloud::riscv::Instr;
        prop_assert_eq!(
            decode(words[0]).unwrap(),
            Instr::Addi { rd, rs1, imm: imm as i32 }
        );
        prop_assert_eq!(decode(words[1]).unwrap(), Instr::Add { rd, rs1, rs2 });
        prop_assert_eq!(decode(words[2]).unwrap(), Instr::Mul { rd, rs1, rs2 });
    }
}
